//! Set-top-box crash-log scenario (the paper's SCD): a large, shallow
//! hierarchy with daily seasonality and a firmware-rollout crash wave
//! under one central office. Also prints the runtime/memory accounting
//! that distinguishes ADA from the strawman.
//!
//! Run with `cargo run --release --example stb_crashes`.

use tiresias::core::{Algorithm, TiresiasBuilder};
use tiresias::datagen::{scd_location_spec, InjectedAnomaly, Workload, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = scd_location_spec(0.01).build()?;
    println!("SCD hierarchy: {} nodes ({} STBs)", tree.len(), tree.leaf_count());

    // Crash wave: a bad firmware build hits every STB under one CO.
    let co = tree.find(&["CO-7"]).expect("exists at this scale");
    let mut workload = Workload::new(tree.clone(), WorkloadConfig::scd(400.0), 7);
    workload.inject(InjectedAnomaly::new(co, 3 * 96 + 20, 12, 900.0));

    let mut detector = TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(192)
        .threshold(10.0)
        .season_length(96)
        .sensitivity(2.8, 8.0)
        .warmup_units(96)
        .algorithm(Algorithm::Ada)
        .ref_levels(1)
        .root_label("National")
        .build()?;
    detector.adopt_tree(tree.clone())?;

    for unit in 0..4 * 96u64 {
        let counts = workload.generate_unit(unit);
        let events = detector.ingest_unit(&counts)?;
        for e in events {
            println!("unit {:>4}: {}", e.unit, e);
        }
    }

    let co_path = tree.path_of(co);
    let hits = detector.store().under(&co_path).count();
    println!("\n{} anomalies localised under the crash wave at {}", hits, co_path);
    assert!(hits > 0, "the crash wave should be detected");

    let mem = detector.memory_report();
    let t = detector.timings();
    println!(
        "memory: {} series cells + {} reference cells over {} tree nodes (no raw history kept)",
        mem.series_cells, mem.reference_cells, mem.tree_nodes
    );
    println!(
        "time: hierarchy+series updates {:.3}s, detection {:.3}s",
        t.updating_hierarchies.as_secs_f64(),
        t.detecting_anomalies.as_secs_f64()
    );
    Ok(())
}
