//! Seasonality analysis (the paper's §VI / Fig. 11): run FFT and à-trous
//! wavelet analysis on a synthetic arrival series, then let the detector
//! pick its seasonal factors automatically.
//!
//! Run with `cargo run --release --example seasonality_analysis`.

use tiresias::core::{ModelSpec, TiresiasBuilder};
use tiresias::datagen::{ccd_trouble_tree_with_mix, Workload, WorkloadConfig};
use tiresias::spectral::{AtrousTransform, Periodogram, SeasonalityAnalysis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four weeks of 15-minute CCD-style arrivals.
    let (tree, mix) = ccd_trouble_tree_with_mix(0.5);
    let workload = Workload::with_popularity(tree, WorkloadConfig::ccd(300.0), &mix, 99);
    let series: Vec<f64> =
        (0..4 * 672u64).map(|u| workload.generate_unit(u).iter().sum()).collect();

    // FFT periodogram (Fig. 11).
    let p = Periodogram::compute(&series);
    println!("dominant spectral peaks:");
    for peak in p.dominant_periods(3) {
        println!(
            "  period {:6.1} hours, normalized magnitude {:.3}",
            peak.period_units * 0.25,
            peak.magnitude
        );
    }

    // Wavelet detail energies (the cross-check of §VI).
    let energies = AtrousTransform::new(12).decompose(&series).detail_energies();
    println!("\nwavelet detail energy by scale (scale j ≈ 2^j · 15 min):");
    let total: f64 = energies.iter().sum();
    for (j, e) in energies.iter().enumerate() {
        let bar = "#".repeat((e / total * 60.0).round() as usize);
        println!("  scale {j:>2} ({:>6.1} h): {bar}", (1u64 << (j + 1)) as f64 * 0.25);
    }

    // Combined analysis with ξ weighting.
    let analysis = SeasonalityAnalysis::analyze(&series, 2);
    for s in analysis.seasons() {
        println!(
            "\ndetected season: {:.1} h, weight {:.2}, wavelet confirmed: {}",
            s.period_units * 0.25,
            s.weight,
            s.wavelet_confirmed
        );
    }
    if let Some(xi) = analysis.xi() {
        println!("xi (daily vs weekly blend) = {xi:.2}  (the paper derives 0.76 for CCD)");
    }

    // The detector resolves the same thing automatically during warm-up.
    let mut detector = TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(2688)
        .threshold(10.0)
        .auto_seasonality(2)
        .warmup_units(1344)
        .build()?;
    detector.adopt_tree(workload.tree().clone())?;
    for unit in 0..1344u64 {
        detector.ingest_unit(&workload.generate_unit(unit))?;
    }
    match detector.model_spec() {
        ModelSpec::HoltWinters { season, .. } => {
            println!(
                "\ndetector auto-selected a single season of {} units ({} h)",
                season,
                *season as f64 * 0.25
            );
        }
        ModelSpec::MultiSeasonal { factors, .. } => {
            println!("\ndetector auto-selected {} seasonal factors:", factors.len());
            for f in factors {
                println!(
                    "  period {} units ({:.1} h), weight {:.2}",
                    f.period,
                    f.period as f64 * 0.25,
                    f.weight
                );
            }
        }
        other => println!("\ndetector model: {other:?}"),
    }
    Ok(())
}
