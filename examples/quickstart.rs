//! Quickstart: stream a handful of customer-care records through
//! Tiresias and print the anomalies it locates.
//!
//! Run with `cargo run --example quickstart`.

use tiresias::core::{Record, TiresiasBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small detector: 1-hour timeunits, an 8-unit daily season, heavy
    // hitter threshold 5 and the paper's sensitivity thresholds.
    let mut detector = TiresiasBuilder::new()
        .timeunit_secs(3600)
        .window_len(96)
        .threshold(5.0)
        .season_length(8)
        .sensitivity(2.8, 8.0)
        .warmup_units(16)
        .build()?;

    // Two days of steady traffic on two trouble categories...
    for hour in 0..47u64 {
        let base = hour * 3600;
        for i in 0..8 {
            detector.push(Record::new("TV/No Service", base + i))?;
        }
        for i in 0..6 {
            detector.push(Record::new("Internet/Slow", base + 100 + i))?;
        }
        detector.advance_to((hour + 1) * 3600)?;
    }

    // ...then a burst of TV outage calls in hour 47.
    let base = 47 * 3600;
    for i in 0..120 {
        detector.push(Record::new("TV/No Service", base + i))?;
    }
    detector.advance_to(48 * 3600)?;

    println!("processed {} timeunits", detector.units_processed());
    println!("tracking {} heavy hitters", detector.heavy_hitters().len());
    println!("anomalies:");
    for event in detector.anomalies() {
        println!(
            "  {} — observed {:.0} calls vs forecast {:.1} ({}x)",
            event,
            event.actual,
            event.forecast,
            event.ratio().round()
        );
    }
    assert!(
        detector.anomalies().iter().any(|a| a.path.to_string() == "TV/No Service"),
        "the TV burst should be flagged"
    );
    Ok(())
}
