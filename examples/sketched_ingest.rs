//! Sketch-assisted ingestion for very large leaf spaces: Space-Saving
//! proposes the heavy leaves of each timeunit, only those exact counts
//! feed the heavy hitter tracker, and the tail is dropped. The example
//! sweeps the monitoring budget and quantifies what the approximation
//! costs against exact ingestion — the trade the streaming literature
//! behind the paper's §VIII makes.
//!
//! Run with `cargo run --release --example sketched_ingest`.

use tiresias::datagen::{scd_location_spec, Workload, WorkloadConfig};
use tiresias::hhh::{Ada, HhhConfig, ModelSpec};
use tiresias::sketch::SpaceSaving;

fn run_budget(
    tree: &tiresias::Tree,
    workload: &Workload,
    budget: usize,
    units: u64,
) -> Result<(usize, usize, usize), Box<dyn std::error::Error>> {
    let config =
        HhhConfig::new(10.0, 96).with_model(ModelSpec::Ewma { alpha: 0.5 }).with_ref_levels(1);
    let mut exact = Ada::new(config.clone())?;
    let mut sketched = Ada::new(config)?;
    let mut identical = 0usize;
    let mut missed = 0usize;
    for unit in 0..units {
        let counts = workload.generate_unit(unit);
        exact.push_timeunit(tree, &counts);
        let mut top = SpaceSaving::new(budget);
        for n in tree.iter() {
            let c = counts[n.index()];
            if c > 0.0 {
                top.add(n.index() as u64, c as u64);
            }
        }
        let mut sparse = vec![0.0; tree.len()];
        for entry in top.top(budget) {
            // Guaranteed lower bounds only — never invent mass.
            sparse[entry.key as usize] = entry.lower_bound() as f64;
        }
        sketched.push_timeunit(tree, &sparse);
        let mut e: Vec<_> = exact.heavy_hitters().to_vec();
        let mut s: Vec<_> = sketched.heavy_hitters().to_vec();
        e.sort();
        s.sort();
        if e == s {
            identical += 1;
        }
        missed += e.iter().filter(|n| !s.contains(n)).count();
    }
    Ok((identical, missed, exact.heavy_hitters().len()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = scd_location_spec(0.02).build()?;
    let workload = Workload::new(tree.clone(), WorkloadConfig::scd(800.0), 77);
    println!(
        "SCD hierarchy: {} nodes, {} STB leaves; ~800 crash records per unit\n",
        tree.len(),
        tree.leaf_count()
    );
    println!("budget  identical sets  exact-only members missed (sum over 96 units)");
    let units = 96;
    for budget in [128usize, 512, 1024, 4096] {
        let (identical, missed, live) = run_budget(&tree, &workload, budget, units)?;
        println!(
            "{budget:>6}  {identical:>3}/{units} ({:>3.0}%)  {missed:>6}   (exact tracker holds {live} members at the end)",
            identical as f64 / units as f64 * 100.0
        );
    }
    println!();
    println!("The dial: heavy *leaves* always survive (Space-Saving keeps every key");
    println!("above N/k), but interior hitters assembled from many light leaves need");
    println!("the budget to approach the number of distinct active leaves. Crash");
    println!("records spread across ~800 distinct STBs per unit, so a ~1k budget");
    println!("recovers the exact sets while a 128-leaf budget visibly diverges —");
    println!("which is why Tiresias keeps exact counts whenever the leaf space fits.");
    Ok(())
}
