//! Customer-care call scenario (the paper's CCD): a week of seasonal
//! call volume over the Table-II network hierarchy, with a regional
//! outage injected at an intermediate office. Tiresias localises the
//! outage below the level the current-practice control charts watch.
//!
//! Run with `cargo run --release --example customer_care`.

use tiresias::core::{ControlChartConfig, ControlChartDetector, TiresiasBuilder};
use tiresias::datagen::{ccd_location_spec, InjectedAnomaly, Workload, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The CCD network-path hierarchy (SHO → VHO → IO → CO → DSLAM),
    // scaled down for a quick run.
    let tree = ccd_location_spec(0.1).build()?;
    println!("hierarchy: {} nodes, depth {}", tree.len(), tree.max_depth());

    // Seasonal call arrivals plus an injected outage at one IO,
    // starting at 10:00 on day 4 and lasting 2 hours.
    let io = tree.find(&["VHO-2", "IO-1"]).expect("exists at this scale");
    let outage_start = 4 * 96 + 40;
    let mut workload = Workload::new(tree.clone(), WorkloadConfig::ccd(300.0), 2024);
    workload.inject(InjectedAnomaly::new(io, outage_start, 8, 400.0));

    // Tiresias with a daily Holt-Winters season over 15-minute units.
    let mut detector = TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(288)
        .threshold(10.0)
        .season_length(96)
        .sensitivity(2.8, 8.0)
        .warmup_units(192)
        .root_label("SHO")
        .build()?;
    detector.adopt_tree(tree.clone())?;

    // The reference method: control charts at the VHO level only.
    let mut chart = ControlChartDetector::new(ControlChartConfig {
        level: 1,
        window: 96,
        k: 3.0,
        min_samples: 48,
    });
    let mut chart_alarms = Vec::new();

    for unit in 0..6 * 96u64 {
        let counts = workload.generate_unit(unit);
        detector.ingest_unit(&counts)?;
        for n in chart.push_unit(&tree, &counts) {
            chart_alarms.push((tree.path_of(n), unit));
        }
    }

    println!("\nTiresias anomalies:");
    for e in detector.anomalies() {
        println!("  unit {:>4} level {}: {}", e.unit, e.level, e.path);
    }
    println!("\nreference-method (VHO control chart) alarms: {}", chart_alarms.len());
    for (path, unit) in &chart_alarms {
        println!("  unit {unit:>4}: {path}");
    }

    // Drill down: which anomalies sit under the outaged IO?
    let io_path = tree.path_of(io);
    let localized: Vec<_> = detector.store().under(&io_path).collect();
    println!(
        "\n{} of Tiresias' anomalies localise under the injected outage at {}",
        localized.len(),
        io_path
    );
    assert!(!localized.is_empty(), "the injected IO outage should be detected under {io_path}");
    Ok(())
}
