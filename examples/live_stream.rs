//! Record-level streaming: feed individual timestamped records (as an
//! operational log tailer would), handle out-of-order input, and query
//! the anomaly store like the paper's web front-end.
//!
//! Run with `cargo run --release --example live_stream`.

use tiresias::core::{CoreError, Record, TiresiasBuilder};
use tiresias::datagen::{ccd_trouble_tree_with_mix, InjectedAnomaly, Workload, WorkloadConfig};
use tiresias::hierarchy::CategoryPath;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (tree, mix) = ccd_trouble_tree_with_mix(0.3);
    let hot = tree.children(tree.root()).first().copied().expect("tree has categories");
    let mut workload = Workload::with_popularity(tree.clone(), WorkloadConfig::ccd(80.0), &mix, 5);
    workload.inject(InjectedAnomaly::new(hot, 60, 3, 300.0));

    let mut detector = TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(96)
        .threshold(8.0)
        .season_length(24)
        .sensitivity(2.8, 8.0)
        .warmup_units(48)
        .root_label("Trouble")
        .build()?;

    let mut pushed = 0u64;
    let mut dropped = 0u64;
    for unit in 0..72u64 {
        for (node, t) in workload.generate_records(unit) {
            let path = tree.path_of(node);
            // A real log stream occasionally delivers stale records;
            // Tiresias rejects anything before the open timeunit.
            match detector.push(Record::from_path(path, t)) {
                Ok(()) => pushed += 1,
                Err(CoreError::OutOfOrder { .. }) => dropped += 1,
                Err(e) => return Err(e.into()),
            }
        }
        detector.advance_to((unit + 1) * 900)?;
    }
    println!("streamed {pushed} records ({dropped} stale ones dropped)");
    println!("hierarchy grew to {} nodes", detector.tree().len());

    // Query the store like the paper's front-end.
    println!("\nall anomalies: {}", detector.store().len());
    let burst_window = detector.store().in_time_range(58, 66).count();
    println!("anomalies in units [58, 66): {burst_window}");
    let hot_path = tree.path_of(hot);
    let under_hot: Vec<_> = detector.store().under(&hot_path).cloned().collect();
    println!("anomalies under {}: {}", hot_path, under_hot.len());
    for e in &under_hot {
        println!("  {e}");
    }
    let removed = detector.store_mut().dedup_ancestors();
    println!("after ancestor dedup ({removed} removed): {}", detector.store().len());

    let root = CategoryPath::root();
    assert_eq!(
        detector.store().under(&root).count(),
        detector.store().len(),
        "root prefix covers everything"
    );
    assert!(!under_hot.is_empty(), "the injected burst under {hot_path} should be detected");
    Ok(())
}
