//! Integration tests of the detector facade: builder validation,
//! warm-up semantics, auto-seasonality, store queries and the public
//! re-export surface.

use tiresias::core::{Algorithm, CoreError, ModelSpec, Record, TiresiasBuilder};
use tiresias::hierarchy::CategoryPath;

#[test]
fn facade_reexports_compose() {
    // The facade exposes everything needed without importing the
    // sub-crates directly.
    let _path: CategoryPath = "a/b".parse().unwrap();
    let spec = tiresias::HierarchySpec::new("All").level("X", 2);
    let tree: tiresias::Tree = spec.build().unwrap();
    assert_eq!(tree.len(), 3);
    let _builder: tiresias::TiresiasBuilder = TiresiasBuilder::new();
}

#[test]
fn warmup_boundary_is_exact() {
    let mut d = TiresiasBuilder::new()
        .timeunit_secs(60)
        .window_len(32)
        .threshold(3.0)
        .season_length(4)
        .warmup_units(5)
        .build()
        .unwrap();
    for unit in 0..4u64 {
        for i in 0..5 {
            d.push(Record::new("x", unit * 60 + i)).unwrap();
        }
        d.advance_to((unit + 1) * 60).unwrap();
        assert!(!d.is_warmed_up(), "unit {unit} is still warm-up");
    }
    for i in 0..5 {
        d.push(Record::new("x", 4 * 60 + i)).unwrap();
    }
    d.advance_to(5 * 60).unwrap();
    assert!(d.is_warmed_up());
    assert!(!d.heavy_hitters().is_empty());
}

#[test]
fn zero_warmup_starts_cold() {
    let mut d = TiresiasBuilder::new()
        .timeunit_secs(60)
        .window_len(16)
        .threshold(3.0)
        .season_length(2)
        .warmup_units(0)
        .build()
        .unwrap();
    for i in 0..5 {
        d.push(Record::new("x", i)).unwrap();
    }
    d.advance_to(60).unwrap();
    assert!(d.is_warmed_up());
}

#[test]
fn sensitivity_thresholds_gate_detection() {
    // With an extreme DT nothing is ever anomalous.
    let mut strict = TiresiasBuilder::new()
        .timeunit_secs(60)
        .window_len(32)
        .threshold(3.0)
        .season_length(4)
        .warmup_units(8)
        .sensitivity(2.0, 1e12)
        .build()
        .unwrap();
    for unit in 0..12u64 {
        let n = if unit == 11 { 500 } else { 5 };
        for i in 0..n {
            strict.push(Record::new("x", unit * 60 + i % 60)).unwrap();
        }
        strict.advance_to((unit + 1) * 60).unwrap();
    }
    assert!(strict.anomalies().is_empty());
}

#[test]
fn multiseasonal_model_spec_is_accepted() {
    use tiresias::core::SeasonalFactor;
    let d = TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(64)
        .threshold(5.0)
        .model(ModelSpec::MultiSeasonal {
            alpha: 0.5,
            beta: 0.05,
            gamma: 0.3,
            factors: vec![SeasonalFactor::new(8, 0.76), SeasonalFactor::new(16, 0.24)],
        })
        .warmup_units(32)
        .build()
        .unwrap();
    assert!(matches!(d.model_spec(), ModelSpec::MultiSeasonal { .. }));
}

#[test]
fn out_of_order_is_error_not_corruption() {
    let mut d = TiresiasBuilder::new()
        .timeunit_secs(60)
        .window_len(8)
        .threshold(2.0)
        .season_length(2)
        .warmup_units(1)
        .build()
        .unwrap();
    d.push(Record::new("a", 120)).unwrap();
    d.advance_to(180).unwrap();
    let err = d.push(Record::new("a", 10)).unwrap_err();
    assert!(matches!(err, CoreError::OutOfOrder { .. }));
    // The detector keeps working afterwards.
    d.push(Record::new("a", 200)).unwrap();
    d.advance_to(240).unwrap();
    assert_eq!(d.units_processed(), 2);
}

#[test]
fn store_queries_compose_with_detection() {
    let mut d = TiresiasBuilder::new()
        .timeunit_secs(60)
        .window_len(32)
        .threshold(3.0)
        .season_length(4)
        .warmup_units(6)
        .sensitivity(2.0, 5.0)
        .build()
        .unwrap();
    for unit in 0..10u64 {
        let bursts = [("tv/a", 6u64), ("tv/b", 5), ("net/c", 4)];
        for (path, base) in bursts {
            let n = if unit == 9 { base * 20 } else { base };
            for i in 0..n {
                d.push(Record::new(path, unit * 60 + i % 60)).unwrap();
            }
        }
        d.advance_to((unit + 1) * 60).unwrap();
    }
    assert!(!d.anomalies().is_empty());
    let tv: CategoryPath = "tv".parse().unwrap();
    let tv_events = d.store().under(&tv).count();
    let all = d.store().len();
    assert!(tv_events <= all);
    assert!(d.store().in_time_range(9, 10).count() > 0);
    // Every event is within the processed horizon.
    for e in d.store().events() {
        assert!(e.unit < 10);
        assert_eq!(e.time_secs, e.unit * 60);
    }
}

#[test]
fn drop_detection_is_opt_in() {
    use tiresias::core::AnomalyKind;
    for drops in [false, true] {
        let mut d = TiresiasBuilder::new()
            .timeunit_secs(60)
            .window_len(32)
            .threshold(3.0)
            .season_length(4)
            .warmup_units(8)
            .sensitivity(2.5, 5.0)
            .detect_drops(drops)
            .build()
            .unwrap();
        for unit in 0..16u64 {
            // Steady 30/unit, then a collapse to 4 at unit 15. (The
            // count must stay ≥ θ: a node that falls below the heavy
            // hitter threshold leaves the tracked set altogether, which
            // is the structural reason the paper scopes drops out.)
            let n = if unit == 15 { 4 } else { 30 };
            for i in 0..n {
                d.push(Record::new("x", unit * 60 + i)).unwrap();
            }
            d.advance_to((unit + 1) * 60).unwrap();
        }
        let drop_events = d.anomalies().iter().filter(|e| e.kind == AnomalyKind::Drop).count();
        if drops {
            assert!(drop_events > 0, "the collapse must be reported as a drop");
        } else {
            assert_eq!(drop_events, 0, "drops are off by default (paper semantics)");
        }
    }
}

#[test]
fn sta_and_ada_agree_via_facade_on_stable_load() {
    let mut results = Vec::new();
    for algo in [Algorithm::Ada, Algorithm::Sta] {
        let mut d = TiresiasBuilder::new()
            .timeunit_secs(60)
            .window_len(16)
            .threshold(3.0)
            .season_length(4)
            .warmup_units(8)
            .algorithm(algo)
            .build()
            .unwrap();
        for unit in 0..14u64 {
            let n = if unit == 13 { 200 } else { 6 };
            for i in 0..n {
                d.push(Record::new("x/y", unit * 60 + i % 60)).unwrap();
            }
            d.advance_to((unit + 1) * 60).unwrap();
        }
        results
            .push(d.anomalies().iter().map(|e| (e.path.to_string(), e.unit)).collect::<Vec<_>>());
    }
    assert_eq!(results[0], results[1], "ADA and STA agree on a stable stream");
}
