//! Equivalence of the two record-level ingest APIs: streaming a datagen
//! workload through the borrowed `&str` fast path (`push_str`) must
//! yield **byte-identical observable results** to streaming the same
//! records as parsed `Record`s (`push`) — same tree, same heavy hitter
//! set, same serialised event store — and a checkpoint taken from
//! either API must resume into the same continued behaviour. (Whole
//! checkpoints are not byte-compared across APIs: `push` accumulates
//! wall-clock stage timings that `push_str` deliberately skips.)

use proptest::prelude::*;

use tiresias::core::{Record, Tiresias, TiresiasBuilder};
use tiresias::datagen::{ccd_location_spec, InjectedAnomaly, Workload, WorkloadConfig};

fn detector(warmup: usize) -> Tiresias {
    TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(64)
        .threshold(8.0)
        .season_length(8)
        .sensitivity(2.0, 5.0)
        .warmup_units(warmup)
        .ref_levels(2)
        .build()
        .expect("valid config")
}

/// Renders a workload's record stream for `units` timeunits as
/// `(path, timestamp)` pairs, exactly as an operational feed would
/// deliver them.
fn rendered_stream(workload: &Workload, units: u64) -> Vec<(String, u64)> {
    let tree = workload.tree();
    let mut out = Vec::new();
    for unit in 0..units {
        for (node, t) in workload.generate_records(unit) {
            out.push((tree.path_of(node).to_string(), t));
        }
    }
    out
}

fn assert_byte_identical(a: &Tiresias, b: &Tiresias) {
    assert_eq!(a.units_processed(), b.units_processed());
    assert_eq!(a.heavy_hitters(), b.heavy_hitters(), "heavy hitter sets diverged");
    assert_eq!(a.anomalies(), b.anomalies(), "event streams diverged");
    let tree_a = serde_json::to_string(a.tree()).expect("serialises");
    let tree_b = serde_json::to_string(b.tree()).expect("serialises");
    assert_eq!(tree_a, tree_b, "trees diverged");
    let store_a = serde_json::to_string(a.store()).expect("serialises");
    let store_b = serde_json::to_string(b.store()).expect("serialises");
    assert_eq!(store_a, store_b, "stores diverged");
}

#[test]
fn datagen_workload_is_equivalent_across_ingest_apis() {
    let tree = ccd_location_spec(0.05).build().expect("static spec");
    let mut workload = Workload::new(tree, WorkloadConfig::ccd(60.0), 23);
    let target = workload.tree().nodes_at_depth(1)[0];
    workload.inject(InjectedAnomaly::new(target, 20, 2, 400.0));
    let stream = rendered_stream(&workload, 24);

    let mut via_record = detector(8);
    let mut via_str = detector(8);
    for (path, t) in &stream {
        via_record.push(Record::new(path, *t)).expect("in order");
        via_str.push_str(path, *t).expect("in order");
    }
    via_record.advance_to(24 * 900).expect("close");
    via_str.advance_to(24 * 900).expect("close");

    assert!(via_str.is_warmed_up());
    assert!(!via_str.anomalies().is_empty(), "injected burst must be detected");
    assert_byte_identical(&via_record, &via_str);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random workloads (seed, rate, span) keep the two APIs
    /// byte-identical, including mid-stream checkpoint bytes.
    #[test]
    fn random_workloads_are_equivalent(
        seed in 0u64..1000,
        rate in 20.0f64..120.0,
        units in 6u64..20,
    ) {
        let tree = ccd_location_spec(0.05).build().expect("static spec");
        let workload = Workload::new(tree, WorkloadConfig::ccd(rate), seed);
        let stream = rendered_stream(&workload, units);

        let mut via_record = detector(4);
        let mut via_str = detector(4);
        for (path, t) in &stream {
            via_record.push(Record::new(path, *t)).expect("in order");
            via_str.push_str(path, *t).expect("in order");
        }
        via_record.advance_to(units * 900).expect("close");
        via_str.advance_to(units * 900).expect("close");

        assert_byte_identical(&via_record, &via_str);
        // Checkpoints agree too: the serialised detectors round-trip to
        // the same continued behaviour.
        let ck_record = serde_json::to_string(&via_record).expect("serialises");
        let mut resumed: Tiresias = serde_json::from_str(&ck_record).expect("deserialises");
        let mut live = via_str;
        for (path, t) in rendered_stream(&workload, units + 4)
            .iter()
            .filter(|(_, t)| *t >= units * 900)
        {
            resumed.push_str(path, *t).expect("in order");
            live.push_str(path, *t).expect("in order");
        }
        resumed.advance_to((units + 4) * 900).expect("close");
        live.advance_to((units + 4) * 900).expect("close");
        assert_byte_identical(&resumed, &live);
    }
}
