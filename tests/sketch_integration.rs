//! Integration of the sketch substrate with the heavy hitter machinery:
//! Space-Saving candidate generation feeding exact SHHH computation, and
//! count-min scoring of hierarchy leaves.

use proptest::prelude::*;

use tiresias::hhh::compute_shhh;
use tiresias::hierarchy::HierarchySpec;
use tiresias::sketch::{CountMinSketch, SpaceSaving};

#[test]
fn space_saving_preserves_theta_heavy_leaves() {
    // Any leaf with true count ≥ θ must be monitored when the budget
    // exceeds N/θ — the standard guarantee, applied to SHHH candidates.
    let tree = HierarchySpec::new("All").level("A", 10).level("B", 20).build().unwrap();
    let leaves: Vec<_> = tree.iter().filter(|&n| tree.is_leaf(n)).collect();
    let theta = 50u64;
    let mut counts = vec![0u64; tree.len()];
    // Three genuinely heavy leaves + diffuse tail.
    for (i, &l) in leaves.iter().enumerate() {
        counts[l.index()] = match i {
            3 => 120,
            77 => 90,
            150 => 60,
            _ => (i % 4) as u64,
        };
    }
    let total: u64 = counts.iter().sum();
    let budget = (total / theta + 1) as usize;
    let mut ss = SpaceSaving::new(budget);
    for &l in &leaves {
        let c = counts[l.index()];
        if c > 0 {
            ss.add(l.index() as u64, c);
        }
    }
    for &l in &leaves {
        if counts[l.index()] >= theta {
            assert!(
                ss.top(budget).iter().any(|e| e.key == l.index() as u64),
                "heavy leaf {} must be monitored",
                tree.path_of(l)
            );
        }
    }
}

#[test]
fn cms_scored_candidates_recover_leaf_heavy_hitters() {
    // Score Space-Saving candidates with a count-min sketch and feed
    // the (upper-bound) counts to SHHH: every exact leaf heavy hitter
    // must reappear (CMS never under-estimates).
    let tree = HierarchySpec::new("All").level("X", 8).level("Y", 8).build().unwrap();
    let leaves: Vec<_> = tree.iter().filter(|&n| tree.is_leaf(n)).collect();
    let theta = 25.0;
    let mut direct = vec![0.0; tree.len()];
    for (i, &l) in leaves.iter().enumerate() {
        direct[l.index()] = if i % 9 == 0 { 40.0 } else { 2.0 };
    }
    let exact = compute_shhh(&tree, &direct, theta);

    let mut cms = CountMinSketch::for_error(0.005, 0.01, 99);
    let mut ss = SpaceSaving::new(64);
    for &l in &leaves {
        let c = direct[l.index()] as u64;
        if c > 0 {
            cms.add(l.index() as u64, c);
            ss.add(l.index() as u64, c);
        }
    }
    let mut approx = vec![0.0; tree.len()];
    for e in ss.top(64) {
        approx[e.key as usize] = cms.estimate(e.key) as f64;
    }
    let sketched = compute_shhh(&tree, &approx, theta);
    for &m in &exact.members {
        if tree.is_leaf(m) {
            assert!(
                sketched.is_member[m.index()],
                "leaf heavy hitter {} lost by sketching",
                tree.path_of(m)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CMS estimates dominate true counts for arbitrary streams.
    #[test]
    fn cms_never_underestimates(pairs in prop::collection::vec((0u64..500, 1u64..20), 1..200)) {
        let mut cms = CountMinSketch::with_dimensions(4, 128, 5);
        let mut truth = std::collections::HashMap::new();
        for &(k, c) in &pairs {
            cms.add(k, c);
            *truth.entry(k).or_insert(0u64) += c;
        }
        for (k, t) in truth {
            prop_assert!(cms.estimate(k) >= t);
        }
    }

    /// Space-Saving estimates dominate true counts and the summary never
    /// exceeds its budget.
    #[test]
    fn space_saving_invariants(pairs in prop::collection::vec((0u64..100, 1u64..10), 1..300), cap in 1usize..32) {
        let mut ss = SpaceSaving::new(cap);
        let mut truth = std::collections::HashMap::new();
        for &(k, c) in &pairs {
            ss.add(k, c);
            *truth.entry(k).or_insert(0u64) += c;
            prop_assert!(ss.len() <= cap);
        }
        for e in ss.top(cap) {
            let t = truth.get(&e.key).copied().unwrap_or(0);
            prop_assert!(e.count >= t, "estimate below truth");
            prop_assert!(e.lower_bound() <= t, "lower bound above truth");
        }
        prop_assert_eq!(ss.total(), pairs.iter().map(|&(_, c)| c).sum::<u64>());
    }

    /// Merged CMS shards equal the single-stream sketch exactly.
    #[test]
    fn cms_shards_merge_exactly(
        xs in prop::collection::vec((0u64..200, 1u64..5), 0..100),
        ys in prop::collection::vec((0u64..200, 1u64..5), 0..100),
    ) {
        let mut a = CountMinSketch::with_dimensions(3, 64, 11);
        let mut b = CountMinSketch::with_dimensions(3, 64, 11);
        let mut whole = CountMinSketch::with_dimensions(3, 64, 11);
        for &(k, c) in &xs { a.add(k, c); whole.add(k, c); }
        for &(k, c) in &ys { b.add(k, c); whole.add(k, c); }
        a.merge(&b).expect("same shape");
        for k in 0..200u64 {
            prop_assert_eq!(a.estimate(k), whole.estimate(k));
        }
    }
}
