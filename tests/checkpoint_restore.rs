//! Checkpoint/restore: the trackers and the whole detector serialise
//! with serde, and a restored instance continues the stream exactly
//! where the original would have — warm-up buffers, forecaster state,
//! heavy hitter series and the anomaly store all round-trip.

use tiresias::core::{Record, TiresiasBuilder};
use tiresias::datagen::{ccd_location_spec, InjectedAnomaly, Workload, WorkloadConfig};
use tiresias::hhh::{Ada, HhhConfig, ModelSpec};
use tiresias::hierarchy::Tree;

fn small_tree() -> (Tree, tiresias::hierarchy::NodeId) {
    let mut t = Tree::new("root");
    let leaf = t.insert_path(&["a", "x"]);
    t.insert_path(&["a", "y"]);
    t.insert_path(&["b"]);
    (t, leaf)
}

#[test]
fn ada_round_trips_and_continues_identically() {
    let (tree, leaf) = small_tree();
    let cfg = HhhConfig::new(5.0, 16).with_model(ModelSpec::HoltWinters {
        alpha: 0.5,
        beta: 0.05,
        gamma: 0.3,
        season: 4,
    });
    let mut original = Ada::new(cfg).expect("valid config");
    for i in 0..10u64 {
        let mut d = vec![0.0; tree.len()];
        d[leaf.index()] = 8.0 + (i % 4) as f64;
        original.push_timeunit(&tree, &d);
    }

    // Checkpoint mid-stream.
    let json = serde_json::to_string(&original).expect("serialises");
    let mut restored: Ada = serde_json::from_str(&json).expect("deserialises");

    // Both continue with the same data and must stay identical.
    for i in 10..20u64 {
        let mut d = vec![0.0; tree.len()];
        d[leaf.index()] = 8.0 + (i % 4) as f64;
        original.push_timeunit(&tree, &d);
        restored.push_timeunit(&tree, &d);
        let (vo, vr) = (original.view(leaf).unwrap(), restored.view(leaf).unwrap());
        assert_eq!(vo.latest_actual, vr.latest_actual, "unit {i}");
        assert!(
            (vo.latest_forecast - vr.latest_forecast).abs() < 1e-12,
            "forecast diverged at unit {i}"
        );
    }
    let vo: Vec<f64> = original.view(leaf).unwrap().actual.iter().collect();
    let vr: Vec<f64> = restored.view(leaf).unwrap().actual.iter().collect();
    assert_eq!(vo, vr);
}

#[test]
fn detector_round_trips_mid_stream() {
    let tree = ccd_location_spec(0.03).build().expect("valid spec");
    let target = tree.find(&["VHO-0", "IO-1"]).expect("exists");
    let mut workload = Workload::new(tree.clone(), WorkloadConfig::ccd(120.0), 42);
    workload.inject(InjectedAnomaly::new(target, 70, 3, 300.0));

    let build = || {
        let mut d = TiresiasBuilder::new()
            .timeunit_secs(900)
            .window_len(96)
            .threshold(8.0)
            .season_length(24)
            .warmup_units(48)
            .root_label("SHO")
            .build()
            .expect("valid configuration");
        d.adopt_tree(tree.clone()).expect("fresh detector");
        d
    };

    // Uninterrupted reference run.
    let mut reference = build();
    for unit in 0..90u64 {
        reference.ingest_unit(&workload.generate_unit(unit)).expect("bulk ingest");
    }

    // Interrupted run: checkpoint at unit 60 (after warm-up, before the
    // injected anomaly), restore, continue.
    let mut first_half = build();
    for unit in 0..60u64 {
        first_half.ingest_unit(&workload.generate_unit(unit)).expect("bulk ingest");
    }
    let checkpoint = serde_json::to_string(&first_half).expect("serialises");
    drop(first_half);
    let mut resumed: tiresias::Tiresias = serde_json::from_str(&checkpoint).expect("deserialises");
    for unit in 60..90u64 {
        resumed.ingest_unit(&workload.generate_unit(unit)).expect("bulk ingest");
    }

    // Identical anomaly history, including the injected event.
    let key = |d: &tiresias::Tiresias| -> Vec<(String, u64)> {
        d.anomalies().iter().map(|e| (e.path.to_string(), e.unit)).collect()
    };
    assert_eq!(key(&reference), key(&resumed));
    assert!(
        resumed.store().under(&tree.path_of(target)).any(|e| (70..73).contains(&e.unit)),
        "the injected anomaly survives the restart"
    );
}

#[test]
fn checkpoint_during_warmup_preserves_buffer() {
    let mut original = TiresiasBuilder::new()
        .timeunit_secs(60)
        .window_len(32)
        .threshold(3.0)
        .season_length(4)
        .warmup_units(8)
        .build()
        .expect("valid configuration");
    for unit in 0..5u64 {
        for i in 0..6 {
            original.push(Record::new("x", unit * 60 + i)).expect("in order");
        }
        original.advance_to((unit + 1) * 60).expect("advance");
    }
    assert!(!original.is_warmed_up());
    let json = serde_json::to_string(&original).expect("serialises");
    let mut restored: tiresias::Tiresias = serde_json::from_str(&json).expect("deserialises");
    assert!(!restored.is_warmed_up());
    assert_eq!(restored.units_processed(), 5);
    // Finish the warm-up after restore; detection works.
    for unit in 5..9u64 {
        let n = if unit == 8 { 100 } else { 6 };
        for i in 0..n {
            restored.push(Record::new("x", unit * 60 + i % 60)).expect("in order");
        }
        restored.advance_to((unit + 1) * 60).expect("advance");
    }
    assert!(restored.is_warmed_up());
    assert!(!restored.anomalies().is_empty());
}

#[test]
fn anomaly_events_serialise_to_json() {
    let mut d = TiresiasBuilder::new()
        .timeunit_secs(60)
        .window_len(16)
        .threshold(3.0)
        .season_length(4)
        .warmup_units(4)
        .sensitivity(2.0, 5.0)
        .build()
        .expect("valid configuration");
    for unit in 0..8u64 {
        let n = if unit == 7 { 120 } else { 6 };
        for i in 0..n {
            d.push(Record::new("tv/a", unit * 60 + i % 60)).expect("in order");
        }
        d.advance_to((unit + 1) * 60).expect("advance");
    }
    assert!(!d.anomalies().is_empty());
    let json = serde_json::to_string_pretty(d.store()).expect("serialises");
    assert!(json.contains("\"path\""));
    let restored: tiresias::core::ReportStore = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(&restored, d.store());
}
