//! Shard-count invariance of the sharded ingest engine: for any shard
//! count, the same record stream must produce a byte-identical union of
//! shard trees, heavy hitter path set, and merged `AnomalyEvent` stream
//! (ids, order and all) — and a sharded checkpoint taken mid-stream
//! must resume into exactly the behaviour of an uninterrupted run.

use proptest::prelude::*;

use tiresias::core::{
    load_checkpoint, save_checkpoint, CheckpointEngine, ShardedTiresias, TiresiasBuilder,
};
use tiresias::datagen::{ccd_location_spec, InjectedAnomaly, Workload, WorkloadConfig};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(64)
        .threshold(8.0)
        .season_length(8)
        .sensitivity(2.0, 5.0)
        .warmup_units(4)
        .ref_levels(2)
}

/// Renders a workload's record stream for `units` timeunits as
/// `(path, timestamp)` pairs, exactly as an operational feed would
/// deliver them.
fn rendered_stream(workload: &Workload, units: u64) -> Vec<(String, u64)> {
    let tree = workload.tree();
    let mut out = Vec::new();
    for unit in 0..units {
        for (node, t) in workload.generate_records(unit) {
            out.push((tree.path_of(node).to_string(), t));
        }
    }
    out
}

/// Streams `records` through a fresh engine with the given shard count,
/// in batches, and closes everything up to `end_secs`.
fn run_sharded(shards: usize, records: &[(String, u64)], end_secs: u64) -> ShardedTiresias {
    let mut engine = builder().shards(shards).build_sharded().expect("valid config");
    // Sequential processing: byte-identical to threaded (asserted by
    // the engine's own tests) and much faster on the CI box.
    engine.set_threaded(false);
    for batch in records.chunks(4096) {
        engine.push_batch(batch).expect("in-order stream");
    }
    engine.advance_to(end_secs).expect("close");
    engine
}

fn assert_invariant(reference: &ShardedTiresias, other: &ShardedTiresias, label: &str) {
    assert_eq!(reference.tree_paths(), other.tree_paths(), "{label}: shard tree unions diverged");
    assert_eq!(
        reference.heavy_hitter_paths(),
        other.heavy_hitter_paths(),
        "{label}: heavy hitter sets diverged"
    );
    assert_eq!(reference.anomalies(), other.anomalies(), "{label}: event streams diverged");
    assert_eq!(reference.units_processed(), other.units_processed(), "{label}: units diverged");
    // Byte-identical serialised stores (events re-homed onto the report
    // tree, so node ids must agree too).
    let store_a = serde_json::to_string(reference.store()).expect("serialises");
    let store_b = serde_json::to_string(other.store()).expect("serialises");
    assert_eq!(store_a, store_b, "{label}: serialised stores diverged");
}

#[test]
fn shard_counts_produce_identical_output_on_ccd_workload() {
    let tree = ccd_location_spec(0.12).build().expect("static spec");
    let mut workload = Workload::new(tree, WorkloadConfig::ccd(150.0), 11);
    let target = workload.tree().nodes_at_depth(1)[2];
    workload.inject(InjectedAnomaly::new(target, 16, 3, 600.0));
    let stream = rendered_stream(&workload, 24);
    let end = 24 * 900;

    let reference = run_sharded(SHARD_COUNTS[0], &stream, end);
    assert!(reference.is_warmed_up());
    assert!(!reference.anomalies().is_empty(), "the injected burst must be detected");
    for &n in &SHARD_COUNTS[1..] {
        let engine = run_sharded(n, &stream, end);
        assert_invariant(&reference, &engine, &format!("{n} shards"));
    }
}

#[test]
fn root_split_onto_first_level_node_stays_invariant() {
    // The adversarial case for grouping independence: diffuse traffic
    // keeps every synthetic root a heavy hitter (holding a series
    // summed over whichever top-level labels share the shard); then one
    // first-level node's *residual* turns heavy — spread over sub-θ
    // leaves so the node itself joins SHHH through a split *from the
    // root*. With `ref_levels(0)` there is no reference series to
    // repair the split, so without root isolation the node would
    // inherit a scaled copy of its shard root's series — a
    // grouping-dependent value that surfaces in the forecast of the
    // later burst's anomaly event.
    let mut stream: Vec<(String, u64)> = Vec::new();
    for u in 0..12u64 {
        for label in 0..8 {
            // 3 per label per unit: diffuse (below θ = 8) but every
            // possible shard root aggregate is heavy.
            for i in 0..3 {
                stream.push((format!("top-{label}/leaf-{i}"), u * 900 + label * 90 + i));
            }
        }
        if u >= 6 {
            // top-3's residual ramps to 20 (≥ θ) spread over 4 leaves
            // of 5 (each < θ): the node joins SHHH via a root split.
            for leaf in 0..4 {
                for i in 0..5 {
                    stream.push((format!("top-3/ramp-{leaf}"), u * 900 + 700 + leaf * 10 + i));
                }
            }
        }
        if u == 11 {
            // Burst: the anomaly's recorded forecast exposes whatever
            // series top-3 inherited at the split.
            for i in 0..200 {
                stream.push((format!("top-3/ramp-{}", i % 4), u * 900 + 800 + i % 90));
            }
        }
    }
    stream.sort_by_key(|&(_, t)| t);
    let end = 12 * 900;

    let run = |shards: usize| {
        let mut engine =
            builder().ref_levels(0).shards(shards).build_sharded().expect("valid config");
        engine.set_threaded(false);
        engine.push_batch(&stream).expect("in-order stream");
        engine.advance_to(end).expect("close");
        engine
    };
    let reference = run(SHARD_COUNTS[0]);
    assert!(
        reference.anomalies().iter().any(|e| e.path.to_string() == "top-3"),
        "the ramp+burst must surface a first-level anomaly: {:?}",
        reference.anomalies()
    );
    for &n in &SHARD_COUNTS[1..] {
        let engine = run(n);
        assert_invariant(&reference, &engine, &format!("root-split case, {n} shards"));
    }
}

#[test]
fn sharded_checkpoint_resumes_identically_mid_stream() {
    let tree = ccd_location_spec(0.1).build().expect("static spec");
    let mut workload = Workload::new(tree, WorkloadConfig::ccd(120.0), 7);
    let target = workload.tree().nodes_at_depth(1)[1];
    workload.inject(InjectedAnomaly::new(target, 14, 2, 500.0));
    let stream = rendered_stream(&workload, 20);
    let split_at = stream.iter().position(|&(_, t)| t >= 10 * 900).expect("second half exists");

    let reference = run_sharded(4, &stream, 20 * 900);

    let mut first_half = builder().shards(4).build_sharded().expect("valid config");
    first_half.set_threaded(false);
    first_half.push_batch(&stream[..split_at]).expect("in-order stream");
    let checkpoint = serde_json::to_string(&first_half).expect("serialises");
    drop(first_half);
    let mut resumed: ShardedTiresias = serde_json::from_str(&checkpoint).expect("deserialises");
    resumed.push_batch(&stream[split_at..]).expect("in-order stream");
    resumed.advance_to(20 * 900).expect("close");

    assert_invariant(&reference, &resumed, "checkpoint resume");
    assert!(!reference.anomalies().is_empty(), "the injected burst survives the restart");
    // The restored engine also keeps the configuration: another
    // checkpoint still deserialises into a working engine.
    let again = serde_json::to_string(&resumed).expect("serialises");
    let engine: ShardedTiresias = serde_json::from_str(&again).expect("deserialises");
    assert_eq!(engine.shard_count(), 4);
    assert_eq!(engine.anomalies(), resumed.anomalies());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomised workloads (seed, rate, span, injection site) keep
    /// every shard count byte-identical to the single-shard engine.
    #[test]
    fn random_workloads_are_shard_count_invariant(
        seed in 0u64..500,
        rate in 40.0f64..160.0,
        units in 8u64..18,
        inject_at in 0usize..6,
    ) {
        let tree = ccd_location_spec(0.08).build().expect("static spec");
        let mut workload = Workload::new(tree, WorkloadConfig::ccd(rate), seed);
        let site = workload.tree().nodes_at_depth(1)[inject_at % 5];
        workload.inject(InjectedAnomaly::new(site, units / 2, 2, rate * 4.0));
        let stream = rendered_stream(&workload, units);
        let end = units * 900;

        let reference = run_sharded(1, &stream, end);
        for &n in &SHARD_COUNTS[1..] {
            let engine = run_sharded(n, &stream, end);
            assert_invariant(&reference, &engine, &format!("seed {seed}, {n} shards"));
        }
    }

    /// Forced label reassignments at random epoch boundaries leave the
    /// output byte-identical to static routing and to the unsharded
    /// replay — and a checkpoint of the repinned engine (a non-trivial
    /// override table, envelope v4) round-trips into the same engine.
    #[test]
    fn random_reassignments_at_epoch_boundaries_stay_invariant(
        seed in 0u64..500,
        rate in 40.0f64..120.0,
        units in 8u64..16,
        moves in proptest::collection::vec((0u64..16, 0usize..8, 0usize..4), 1..6),
    ) {
        let tree = ccd_location_spec(0.08).build().expect("static spec");
        // Zipfian top-level mass: reassignments actually move load.
        let workload = Workload::new(
            tree,
            WorkloadConfig::ccd(rate).with_top_level_skew(1.0),
            seed,
        );
        let labels: Vec<String> = workload
            .tree()
            .nodes_at_depth(1)
            .iter()
            .map(|&n| workload.tree().path_of(n).to_string())
            .collect();
        let stream = rendered_stream(&workload, units);
        let end = units * 900;

        let reference = run_sharded(4, &stream, end);

        // Replay unit by unit, pinning at the drawn epoch boundaries.
        let mut engine = builder().shards(4).build_sharded().expect("valid config");
        engine.set_threaded(false);
        for u in 0..units {
            let batch: Vec<(String, u64)> = stream
                .iter()
                .filter(|&&(_, t)| t / 900 == u)
                .cloned()
                .collect();
            engine.push_batch(&batch).expect("in-order stream");
            for &(at, label, shard) in &moves {
                if at % units == u {
                    engine.pin_label(&labels[label % labels.len()], shard);
                }
            }
            engine.advance_to((u + 1) * 900).expect("close epoch");
        }
        prop_assert!(engine.router().pinned_count() > 0, "at least one pin applied");
        assert_invariant(&reference, &engine, &format!("seed {seed}, repinned"));

        // Against the unsharded detector (level ≥ 1; the engines differ
        // at the root by design).
        let mut plain = builder().build().expect("valid config");
        for batch in stream.chunks(4096) {
            plain.push_batch(batch).expect("in-order stream");
        }
        plain.advance_to(end).expect("close");
        let mut plain_level1: Vec<(String, u64)> = plain
            .anomalies()
            .iter()
            .filter(|e| e.level >= 1)
            .map(|e| (e.path.to_string(), e.unit))
            .collect();
        plain_level1.sort();
        let mut sharded_events: Vec<(String, u64)> =
            engine.anomalies().iter().map(|e| (e.path.to_string(), e.unit)).collect();
        sharded_events.sort();
        prop_assert_eq!(plain_level1, sharded_events, "unsharded replay diverged");

        // Checkpoint round-trip carrying the learned override table.
        let json = save_checkpoint(&CheckpointEngine::from(engine.clone()));
        prop_assert!(json.contains("\"version\":4"));
        prop_assert!(json.contains("\"overrides\""));
        let CheckpointEngine::Sharded(restored) = load_checkpoint(&json).expect("loads") else {
            panic!("expected a sharded engine");
        };
        prop_assert_eq!(restored.router(), engine.router(), "override table survives");
        assert_invariant(&engine, &restored, &format!("seed {seed}, restored"));
    }
}
