//! Failover equivalence for the routing tier against the real binary:
//! two `tiresias serve --data-dir` nodes behind a `tiresias route`
//! daemon, `kill -9` one node mid-acked-stream, and the system must
//! keep the routed contract honest end to end — acked records survive
//! (each node's WAL), queries during the outage answer with an explicit
//! `degraded=` tag, records routed at the dead node park in the outage
//! buffer with their acks withheld, and after the node restarts the
//! parked records replay in admission order so a routed `QUERY` equals
//! an offline single-engine replay of exactly the acked records.
//!
//! Also here: property tests pinning the consistent-hash routing
//! contract (total, deterministic across router restarts, never
//! interleaving one label across nodes), and the serve-side idle-session
//! reaper satellite.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use tiresias::core::{ShardRouter, TiresiasBuilder};
use tiresias::server::protocol::format_event;

const TIMEUNIT: u64 = 60;

/// Detector flags every node shares; the offline replay mirrors them.
/// Equivalence is only meaningful on identical configuration.
const DETECTOR_FLAGS: &[&str] = &[
    "--timeunit",
    "60",
    "--window",
    "16",
    "--theta",
    "5",
    "--season",
    "4",
    "--rt",
    "2",
    "--dt",
    "5",
    "--warmup",
    "4",
    "--shards",
    "2",
];

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(16)
        .threshold(5.0)
        .season_length(4)
        .sensitivity(2.0, 5.0)
        .warmup_units(4)
        .shards(2)
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tiresias-route-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

/// Reserves an address for a node that must come back on the same port
/// after a kill (the router's routing table is fixed at startup).
fn reserve_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

/// A spawned daemon (serve or route), killed on drop so a failing
/// assertion never leaks a listener.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_tiresias"))
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines.next().expect("daemon prints LISTENING").expect("stdout reads");
        let addr = banner
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        Daemon { child, addr }
    }

    /// Spawns `tiresias serve` on `addr` with the shared detector flags
    /// and a WAL under `data_dir`.
    fn spawn_serve(data_dir: &Path, addr: &str) -> Daemon {
        let dir = data_dir.to_str().expect("utf-8 temp path");
        let mut args = vec!["serve"];
        args.extend_from_slice(DETECTOR_FLAGS);
        args.extend_from_slice(&[
            "--addr",
            addr,
            "--grace-ms",
            "400",
            "--tick-ms",
            "20",
            "--wal-sync",
            "every",
            "--data-dir",
            dir,
        ]);
        Daemon::spawn(&args)
    }

    /// Spawns `tiresias route` over `nodes` (order = routing table)
    /// with fast probe/backoff so outages are detected in test time.
    fn spawn_route(nodes: &[&str]) -> Daemon {
        let mut args = vec!["route", "--addr", "127.0.0.1:0"];
        for node in nodes {
            args.extend_from_slice(&["--node", node]);
        }
        args.extend_from_slice(&[
            "--probe-ms",
            "100",
            "--node-timeout-ms",
            "1000",
            "--backoff-max-ms",
            "300",
        ]);
        Daemon::spawn(&args)
    }

    fn kill9(&mut self) {
        let _ = self.child.kill(); // SIGKILL on unix
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        if let Ok(mut stream) = TcpStream::connect(&self.addr) {
            let _ = stream.write_all(b"SHUTDOWN\n");
        }
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout set");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("writes");
        self.stream.write_all(b"\n").expect("writes");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reads a reply line");
        line.trim_end().to_string()
    }

    /// Runs a `QUERY`, returning the event frames and the terminal
    /// `OK n=…` line (which may carry a `degraded=` tag).
    fn query(&mut self, request: &str) -> (Vec<String>, String) {
        self.send(request);
        let mut frames = Vec::new();
        loop {
            let line = self.recv();
            if line.starts_with("OK n=") {
                return (frames, line);
            }
            assert!(line.starts_with("EVENT "), "unexpected QUERY reply: {line}");
            frames.push(line);
        }
    }

    fn stats(&mut self) -> String {
        self.send("STATS");
        loop {
            let line = self.recv();
            if line.starts_with("STATS ") || line.starts_with("ERR ") {
                return line;
            }
        }
    }
}

/// Polls `STATS` on `addr` until the predicate matches (30 s deadline).
fn wait_for_stats(addr: &str, predicate: impl Fn(&str) -> bool) -> String {
    let mut client = Client::connect(addr);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats();
        if predicate(&stats) {
            client.send("QUIT");
            return stats;
        }
        assert!(Instant::now() < deadline, "STATS never converged: {stats}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn stat_field(stats: &str, key: &str) -> u64 {
    stats
        .split_whitespace()
        .find_map(|field| field.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
        .unwrap_or_else(|| panic!("{key}= missing from {stats}"))
        .parse()
        .unwrap_or_else(|_| panic!("{key}= not a number in {stats}"))
}

/// Picks two labels per node from the real routing hash, so the
/// workload provably exercises both downstreams and the kill provably
/// strands exactly the victim's labels.
fn labels_per_node() -> [Vec<String>; 2] {
    let shards = ShardRouter::new(2);
    let mut per_node: [Vec<String>; 2] = [Vec::new(), Vec::new()];
    for k in 0.. {
        let label = format!("cat{k}/leaf");
        let node = shards.route(&label);
        if per_node[node].len() < 2 {
            per_node[node].push(label);
        }
        if per_node[0].len() == 2 && per_node[1].len() == 2 {
            return per_node;
        }
    }
    unreachable!("the routing hash is not degenerate over all labels");
}

/// Steady traffic with a burst: `units` timeunits over 4 labels (2 per
/// node), the first label of each node bursting at unit 6.
fn workload(labels: &[&str; 4], units: std::ops::Range<u64>) -> Vec<(String, u64)> {
    let mut records = Vec::new();
    for u in units {
        for (k, label) in labels.iter().enumerate() {
            let count = if u == 6 && k < 2 { 40 } else { 8 };
            for i in 0..count {
                records.push((label.to_string(), u * TIMEUNIT + (i % TIMEUNIT)));
            }
        }
    }
    records
}

/// Pushes records one roundtrip at a time and returns the acked ones —
/// the exact set the routed durability contract covers.
fn push_acked(client: &mut Client, records: &[(String, u64)]) -> Vec<(String, u64)> {
    let mut acked = Vec::new();
    for (path, t) in records {
        client.send(&format!("PUSH {path} {t}"));
        if client.recv() == "OK" {
            acked.push((path.clone(), *t));
        }
    }
    acked
}

/// The offline ground truth: a single sharded engine over the acked
/// records plus one sentinel per node one unit past the data (each node
/// closes its open units independently, so each needs its own nudge).
/// Label-to-shard grouping is detection-invariant (see
/// `tests/sharded_invariance.rs`), which is what makes a single engine
/// over the union comparable to the two-node merge.
fn offline_frames_with_sentinels(
    acked: &[(String, u64)],
    sentinel_labels: &[&str],
) -> (Vec<String>, u64) {
    let last_unit = acked.iter().map(|&(_, t)| t / TIMEUNIT).max().unwrap_or(0);
    let sentinel = (last_unit + 1) * TIMEUNIT;
    let mut records = acked.to_vec();
    for label in sentinel_labels {
        records.push((label.to_string(), sentinel));
    }
    let mut engine = builder().build_sharded().expect("valid test config");
    engine.push_batch(&records).expect("replay ingests");
    (engine.anomalies().iter().map(format_event).collect(), sentinel)
}

/// The headline contract: kill -9 a downstream mid-acked-stream, serve
/// degraded answers during the outage, park new records for the dead
/// node with acks withheld, replay them on restart, and end up with a
/// routed QUERY equal to the offline replay of exactly the acked
/// records.
#[test]
fn kill9_failover_replays_parked_records_and_preserves_acked_history() {
    let [labels_a, labels_b] = labels_per_node();
    let labels: [&str; 4] = [&labels_a[0], &labels_b[0], &labels_a[1], &labels_b[1]];
    let dir_a = tempdir("node-a");
    let dir_b = tempdir("node-b");
    let addr_b = reserve_addr();

    let node_a = Daemon::spawn_serve(&dir_a, "127.0.0.1:0");
    let mut node_b = Daemon::spawn_serve(&dir_b, &addr_b);
    let router = Daemon::spawn_route(&[&node_a.addr, &node_b.addr]);
    let up =
        |s: &str| s.contains(&format!("{}:up", node_a.addr)) && s.contains(&format!("{addr_b}:up"));
    wait_for_stats(&router.addr, up);

    // Phase 1: both nodes up; every record acks through the router.
    let mut client = Client::connect(&router.addr);
    let phase1 = workload(&labels, 0..8);
    let acked = push_acked(&mut client, &phase1);
    assert_eq!(acked.len(), phase1.len(), "all phase-1 records acked");

    // Kill node B mid-stream. Its acked records are on its WAL.
    node_b.kill9();
    wait_for_stats(&router.addr, |s| s.contains(&format!("{addr_b}:down")));

    // Queries during the outage answer from the surviving node and say
    // so explicitly.
    let (_, ok) = client.query("QUERY 0 9999");
    assert!(ok.contains(&format!("degraded={addr_b}")), "outage answers are tagged: {ok}");

    // Phase 2: keep pushing. The survivor's records ack immediately on
    // their own connection; the victim's park with acks withheld, so
    // the parked client sees no replies yet.
    let phase2 = workload(&labels, 8..10);
    let to_a: Vec<(String, u64)> =
        phase2.iter().filter(|(p, _)| labels_a.contains(p)).cloned().collect();
    let to_b: Vec<(String, u64)> =
        phase2.iter().filter(|(p, _)| labels_b.contains(p)).cloned().collect();
    let mut parked_client = Client::connect(&router.addr);
    for (path, t) in &to_b {
        parked_client.send(&format!("PUSH {path} {t}"));
    }
    let survivor_acked = push_acked(&mut client, &to_a);
    assert_eq!(survivor_acked.len(), to_a.len(), "the survivor kept acking during the outage");
    let stats = wait_for_stats(&router.addr, |s| stat_field(s, "buffered") > 0);
    assert_eq!(stat_field(&stats, "buffered"), to_b.len() as u64, "all victim records parked");

    // Restart the victim from its data dir on the same address. The
    // supervisor replays the parked records in admission order and only
    // then releases the withheld acks.
    node_b = Daemon::spawn_serve(&dir_b, &addr_b);
    let stats = wait_for_stats(&router.addr, |s| {
        s.contains(&format!("{addr_b}:up")) && stat_field(s, "buffered") == 0
    });
    assert!(stat_field(&stats, "replayed") > 0, "replay was counted: {stats}");
    for (path, t) in &to_b {
        assert_eq!(parked_client.recv(), "OK", "withheld ack released for {path} {t}");
    }
    let recovered = wait_for_stats(&node_b.addr, |s| s.starts_with("STATS "));
    assert!(
        stat_field(&recovered, "recovered_batches") > 0,
        "the restarted node replayed its WAL: {recovered}"
    );

    // Every record in both phases is now acked, so the ground truth is
    // the full stream in its original (unit-nondecreasing) order —
    // exactly what each node admitted, unioned. Drive both nodes' open
    // units closed with one sentinel each, then the routed QUERY must
    // equal the offline single-engine replay of the acked records.
    let mut acked = phase1;
    acked.extend(phase2.iter().cloned());
    let (expected, sentinel) = offline_frames_with_sentinels(&acked, &[labels[0], labels[1]]);
    for label in &labels[..2] {
        client.send(&format!("PUSH {label} {sentinel}"));
        let reply = client.recv();
        assert!(reply == "OK" || reply == "LATE", "sentinel admits: {reply}");
    }
    let closed = format!("last_closed={}", sentinel / TIMEUNIT - 1);
    wait_for_stats(&node_a.addr, |s| s.contains(&closed));
    wait_for_stats(&node_b.addr, |s| s.contains(&closed));
    let (frames, ok) = client.query("QUERY 0 9999");
    assert!(!ok.contains("degraded"), "full answer after recovery: {ok}");
    assert_eq!(frames, expected, "routed QUERY equals the acked-records replay");
    assert!(!frames.is_empty(), "the bursts produced anomalies");

    client.send("QUIT");
    router.shutdown();
    node_b.shutdown();
    node_a.shutdown();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Satellite: idle sessions are reaped after `--idle-timeout-ms`, while
/// subscribers (legitimately silent) are exempt.
#[test]
fn idle_sessions_are_reaped_but_subscribers_are_exempt() {
    let dir = tempdir("idle");
    let node = {
        let dir = dir.to_str().expect("utf-8 temp path");
        let mut args = vec!["serve"];
        args.extend_from_slice(DETECTOR_FLAGS);
        args.extend_from_slice(&[
            "--addr",
            "127.0.0.1:0",
            "--grace-ms",
            "400",
            "--tick-ms",
            "20",
            "--idle-timeout-ms",
            "300",
            "--data-dir",
            dir,
        ]);
        Daemon::spawn(&args)
    };

    let mut subscriber = Client::connect(&node.addr);
    subscriber.send("SUBSCRIBE");
    assert!(subscriber.recv().starts_with("OK subscribed"), "subscription opens");
    let idle = Client::connect(&node.addr);

    let stats = wait_for_stats(&node.addr, |s| stat_field(s, "reaped_sessions") >= 1);
    assert_eq!(stat_field(&stats, "reaped_sessions"), 1, "only the idle session: {stats}");
    assert_eq!(stat_field(&stats, "subscribers"), 1, "the subscriber survived: {stats}");

    // The reaped connection is actually closed: reads see EOF.
    let mut reader = BufReader::new(idle.stream.try_clone().expect("clones"));
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read returns");
    assert_eq!(n, 0, "reaped session's socket is closed, got: {line}");

    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Slash-joined category paths over a small alphabet, so distinct
/// top-level labels collide onto the same node often enough to
/// exercise grouping.
fn category_path() -> impl Strategy<Value = String> {
    prop::collection::vec((0u32..5, 0u32..26, 0usize..7), 1..4).prop_map(|segments| {
        segments
            .into_iter()
            .map(|(head, start, len)| {
                let mut segment = String::new();
                segment.push((b'a' + head as u8) as char);
                for i in 0..len {
                    segment.push((b'a' + ((start as usize + i) % 26) as u8) as char);
                }
                segment
            })
            .collect::<Vec<_>>()
            .join("/")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The routing function is total and deterministic across router
    /// restarts: any path routes to a valid node, and a freshly built
    /// router (a restart — the table is rebuilt from the same `--node`
    /// list) agrees with the original on every path.
    #[test]
    fn routing_is_total_and_stable_across_restarts(
        paths in prop::collection::vec(category_path(), 1..64),
        nodes in 1usize..8,
    ) {
        let before = ShardRouter::new(nodes);
        let after = ShardRouter::new(nodes); // the restarted router's table
        for path in &paths {
            let node = before.route(path);
            prop_assert!(node < nodes, "{path} routed out of range: {node}");
            prop_assert_eq!(node, after.route(path), "restart moved {}", path);
        }
    }

    /// One label never interleaves across nodes: every record of a
    /// top-level label lands on the same node regardless of the rest of
    /// the path or where in the stream it appears, so each node sees a
    /// gap-free substream and per-node admission order is global
    /// admission order restricted to that node.
    #[test]
    fn a_label_never_interleaves_across_nodes(
        records in prop::collection::vec((category_path(), 0u64..10_000), 1..256),
        nodes in 1usize..8,
    ) {
        let router = ShardRouter::new(nodes);
        let mut owner: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for (path, _) in &records {
            let label = path.split('/').next().expect("split yields a first segment");
            let node = router.route(path);
            let claimed = *owner.entry(label).or_insert(node);
            prop_assert_eq!(claimed, node, "label {} split across nodes", label);
        }
    }
}
