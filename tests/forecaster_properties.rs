//! Property-based tests of the forecasting substrate: Holt-Winters
//! linearity (the paper's Lemma 2), EWMA bias decay, and split/merge
//! round trips on series.

use proptest::prelude::*;

use tiresias::timeseries::{
    Ewma, Forecaster, HoltWinters, LinearForecaster, Series, TimeSeriesError,
};

fn arb_series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lemma 2 (additivity): HW(X) + HW(Y) == HW(X + Y) stepwise, and
    /// merging the models reproduces the summed model.
    #[test]
    fn holt_winters_is_additive(
        xs in arb_series(8..40),
        ys in arb_series(8..40),
        alpha in 0.05f64..0.95,
        gamma in 0.05f64..0.95,
    ) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let sum: Vec<f64> = xs.iter().zip(ys).map(|(a, b)| a + b).collect();
        let season = 4;
        let mut fx = HoltWinters::from_history(alpha, 0.1, gamma, season, &xs[..2 * season]).expect("enough history");
        let mut fy = HoltWinters::from_history(alpha, 0.1, gamma, season, &ys[..2 * season]).expect("enough history");
        let mut fs = HoltWinters::from_history(alpha, 0.1, gamma, season, &sum[..2 * season]).expect("enough history");
        for i in 2 * season..n {
            prop_assert!((fx.forecast() + fy.forecast() - fs.forecast()).abs() < 1e-6);
            fx.observe(xs[i]);
            fy.observe(ys[i]);
            fs.observe(sum[i]);
        }
        fx.merge(&fy).expect("compatible models");
        prop_assert!((fx.forecast() - fs.forecast()).abs() < 1e-6);
    }

    /// Homogeneity: scaling the model equals modelling the scaled series.
    #[test]
    fn holt_winters_is_homogeneous(
        xs in arb_series(8..40),
        c in 0.01f64..10.0,
        alpha in 0.05f64..0.95,
    ) {
        let season = 4;
        let scaled: Vec<f64> = xs.iter().map(|x| x * c).collect();
        let mut fx = HoltWinters::from_history(alpha, 0.1, 0.3, season, &xs).expect("enough history");
        let fs = HoltWinters::from_history(alpha, 0.1, 0.3, season, &scaled).expect("enough history");
        fx.scale(c);
        prop_assert!((fx.forecast() - fs.forecast()).abs() < 1e-6 * (1.0 + c * 100.0));
        prop_assert!((fx.level() - fs.level()).abs() < 1e-6 * (1.0 + c * 100.0));
    }

    /// EWMA bias decays monotonically and geometrically.
    #[test]
    fn ewma_bias_decays(xi in 0.1f64..5.0, alpha in 0.1f64..0.9) {
        let mut biased = Ewma::with_initial(alpha, 1.0 + xi).expect("valid alpha");
        let mut clean = Ewma::with_initial(alpha, 1.0).expect("valid alpha");
        let mut prev = f64::INFINITY;
        for _ in 0..12 {
            biased.observe(1.0);
            clean.observe(1.0);
            let err = (biased.forecast() - clean.forecast()).abs();
            prop_assert!(err <= prev + 1e-12, "error must not grow");
            prev = err;
        }
        prop_assert!(prev < xi * (1.0 - alpha).powi(11) + 1e-9);
    }

    /// Splitting a series by ratios that sum to 1 and merging the parts
    /// reproduces the original exactly.
    #[test]
    fn series_split_merge_round_trip(values in arb_series(1..64), r in 0.0f64..1.0) {
        let orig = Series::from_values(64, &values);
        let mut part1 = orig.scaled(r);
        let part2 = orig.scaled(1.0 - r);
        part1.add_assign_series(&part2).expect("same length");
        for (a, b) in part1.iter().zip(orig.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Series ring-buffer semantics: after pushing any stream, the
    /// retained window is exactly the newest `capacity` samples.
    #[test]
    fn series_keeps_newest_window(values in arb_series(1..100), cap in 1usize..16) {
        let mut s = Series::with_capacity(cap);
        for &v in &values {
            s.push(v);
        }
        let expect: Vec<f64> = values
            .iter()
            .copied()
            .skip(values.len().saturating_sub(cap))
            .collect();
        prop_assert_eq!(s.to_vec(), expect);
    }

    /// Merging forecasters with mismatched configuration is always an
    /// error, never a silent wrong answer.
    #[test]
    fn incompatible_merges_fail(alpha1 in 0.1f64..0.9, alpha2 in 0.1f64..0.9) {
        prop_assume!((alpha1 - alpha2).abs() > 1e-6);
        let mut a = Ewma::with_initial(alpha1, 1.0).expect("valid");
        let b = Ewma::with_initial(alpha2, 1.0).expect("valid");
        prop_assert!(matches!(a.merge(&b), Err(TimeSeriesError::IncompatibleForecasters(_))));
    }
}
