//! Crash-recovery equivalence against the real binary: `kill -9` a
//! `tiresias serve --data-dir` daemon at randomized points in the
//! acked stream, restart it from the same directory, and the restarted
//! daemon's `QUERY` must equal an offline `ShardedTiresias` replay of
//! exactly the records that were acknowledged — the WAL's durability
//! contract, end to end through the process boundary. A torn WAL tail
//! (FaultFs truncation after the kill) must degrade to the surviving
//! frame prefix, never to a refusal to start; and the `query`
//! subcommand's reconnect backoff must exit 1 naming the address once
//! its retries are spent.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use tiresias::core::{read_wal, FaultFs, TiresiasBuilder, WalEntry};
use tiresias::server::protocol::format_event;

const TIMEUNIT: u64 = 60;

/// The detector flags every spawned daemon and every offline replay
/// share — equivalence is only meaningful on identical configuration.
const DETECTOR_FLAGS: &[&str] = &[
    "--timeunit",
    "60",
    "--window",
    "16",
    "--theta",
    "5",
    "--season",
    "4",
    "--rt",
    "2",
    "--dt",
    "5",
    "--warmup",
    "4",
    "--shards",
    "2",
];

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(16)
        .threshold(5.0)
        .season_length(4)
        .sensitivity(2.0, 5.0)
        .warmup_units(4)
        .shards(2)
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tiresias-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

/// A spawned daemon, killed on drop so a failing assertion never
/// leaks a listener.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `tiresias serve --data-dir <dir> --wal-sync every` on an
    /// ephemeral port and waits for its `LISTENING` line.
    fn spawn(data_dir: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_tiresias"))
            .arg("serve")
            .args(DETECTOR_FLAGS)
            .args(["--addr", "127.0.0.1:0", "--grace-ms", "400", "--tick-ms", "20"])
            .args(["--wal-sync", "every"])
            .arg("--data-dir")
            .arg(data_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines.next().expect("daemon prints LISTENING").expect("stdout reads");
        let addr = banner
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        Daemon { child, addr }
    }

    fn kill9(&mut self) {
        let _ = self.child.kill(); // SIGKILL on unix
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        if let Ok(stream) = TcpStream::connect(&self.addr) {
            let mut stream = stream;
            let _ = stream.write_all(b"SHUTDOWN\n");
        }
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout set");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("writes");
        self.stream.write_all(b"\n").expect("writes");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reads a reply line");
        line.trim_end().to_string()
    }

    fn query(&mut self, request: &str) -> Vec<String> {
        self.send(request);
        let mut frames = Vec::new();
        loop {
            let line = self.recv();
            if line.starts_with("OK n=") {
                return frames;
            }
            assert!(line.starts_with("EVENT "), "unexpected QUERY reply: {line}");
            frames.push(line);
        }
    }

    fn stats(&mut self) -> String {
        self.send("STATS");
        loop {
            let line = self.recv();
            if line.starts_with("STATS ") || line.starts_with("ERR ") {
                return line;
            }
        }
    }
}

/// Polls `STATS` until the predicate matches (30 s deadline).
fn wait_for_stats(addr: &str, predicate: impl Fn(&str) -> bool) -> String {
    let mut client = Client::connect(addr);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats();
        if predicate(&stats) {
            client.send("QUIT");
            return stats;
        }
        assert!(Instant::now() < deadline, "STATS never converged: {stats}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Steady traffic with a burst: 12 units × 4 categories, categories 0
/// and 2 bursting at unit 6.
fn workload() -> Vec<(String, u64)> {
    let mut records = Vec::new();
    for u in 0..12u64 {
        for k in 0..4u64 {
            let count = if u == 6 && (k == 0 || k == 2) { 40 } else { 8 };
            for i in 0..count {
                records.push((format!("cat{k}/leaf"), u * TIMEUNIT + (i % TIMEUNIT)));
            }
        }
    }
    records
}

/// Pushes records one roundtrip at a time, stopping after `limit`
/// replies. Returns the records the daemon acknowledged `OK` — the
/// exact set the WAL guarantees will survive a `kill -9`.
fn push_acked(addr: &str, records: &[(String, u64)], limit: usize) -> Vec<(String, u64)> {
    let mut client = Client::connect(addr);
    let mut acked = Vec::new();
    for (path, t) in records.iter().take(limit) {
        client.send(&format!("PUSH {path} {t}"));
        if client.recv() == "OK" {
            acked.push((path.clone(), *t));
        }
    }
    acked
}

/// The offline ground truth: the acked records plus a sentinel one
/// unit past them, through a fresh sharded engine.
fn offline_frames_with_sentinel(acked: &[(String, u64)]) -> (Vec<String>, u64) {
    let last_unit = acked.iter().map(|&(_, t)| t / TIMEUNIT).max().unwrap_or(0);
    let sentinel = (last_unit + 1) * TIMEUNIT;
    let mut records = acked.to_vec();
    records.push(("cat0/leaf".to_string(), sentinel));
    let mut engine = builder().build_sharded().expect("valid test config");
    engine.push_batch(&records).expect("replay ingests");
    (engine.anomalies().iter().map(format_event).collect(), sentinel)
}

/// Restarts from `data_dir`, drives the recovered stream closed with
/// the same sentinel the offline replay used, and returns the full
/// `QUERY` result.
fn recover_and_query(data_dir: &Path, sentinel: u64, expect_recovery: bool) -> Vec<String> {
    let revived = Daemon::spawn(data_dir);
    if expect_recovery {
        let stats = wait_for_stats(&revived.addr, |s| s.starts_with("STATS "));
        let recovered: u64 = stats
            .split_whitespace()
            .find_map(|p| p.strip_prefix("recovered_batches="))
            .expect("recovered_batches present")
            .parse()
            .expect("number");
        assert!(recovered > 0, "the restart replayed WAL batches: {stats}");
    }
    let mut client = Client::connect(&revived.addr);
    client.send(&format!("PUSH cat0/leaf {sentinel}"));
    let reply = client.recv();
    assert!(reply == "OK" || reply == "LATE", "sentinel admits: {reply}");
    let closed = format!("last_closed={}", sentinel / TIMEUNIT - 1);
    wait_for_stats(&revived.addr, |s| s.contains(&closed));
    let frames = client.query("QUERY 0 9999");
    client.send("QUIT");
    revived.shutdown();
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline contract: at ANY kill point, restarting from the
    /// data dir reproduces exactly the anomalies of the acked prefix.
    #[test]
    fn kill9_recovery_equals_offline_replay_of_acked_records(kill_after in 40usize..440) {
        let dir = tempdir(&format!("kill{kill_after}"));
        let records = workload();
        let mut daemon = Daemon::spawn(&dir);
        let acked = push_acked(&daemon.addr, &records, kill_after);
        prop_assert!(!acked.is_empty(), "some records were acked");
        daemon.kill9();

        let (expected, sentinel) = offline_frames_with_sentinel(&acked);
        let frames = recover_and_query(&dir, sentinel, true);
        prop_assert_eq!(frames, expected, "recovered QUERY equals the acked-prefix replay");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A torn WAL tail after the kill: recovery truncates at the first
/// bad frame and serves the surviving prefix — it never refuses to
/// start, and the result equals the offline replay of exactly the
/// records in the surviving frames.
#[test]
fn torn_wal_tail_recovers_the_surviving_prefix() {
    let dir = tempdir("torn");
    let records = workload();
    let mut daemon = Daemon::spawn(&dir);
    let acked = push_acked(&daemon.addr, &records, 300);
    assert_eq!(acked.len(), 300, "all pushes acked");
    daemon.kill9();

    // Tear the newest WAL segment mid-frame: drop the last intact
    // frame's second half.
    let wal_dir = dir.join("wal");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&wal_dir)
        .expect("wal dir lists")
        .map(|e| e.expect("entry").path())
        .collect();
    files.sort();
    let last = files.last().expect("a WAL segment exists");
    let frames = FaultFs::frame_offsets(last).expect("frames walk");
    let (offset, len) = *frames.last().expect("frames exist");
    FaultFs::truncate_at(last, offset + len / 2).expect("tear applies");

    // What survives on disk is the ground truth now.
    let surviving: Vec<(String, u64)> = read_wal(&wal_dir)
        .expect("torn log still reads")
        .entries
        .into_iter()
        .filter_map(|e| match e {
            WalEntry::Batch { records, .. } => Some(records),
            WalEntry::Close { .. } => None,
        })
        .flatten()
        .collect();
    assert!(!surviving.is_empty() && surviving.len() < acked.len(), "the tear dropped a tail");

    let (expected, sentinel) = offline_frames_with_sentinel(&surviving);
    let frames = recover_and_query(&dir, sentinel, true);
    assert_eq!(frames, expected, "recovery serves exactly the surviving frame prefix");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `tiresias query` retries with backoff and, once its retries are
/// spent, exits 1 with an error naming the unreachable address.
#[test]
fn query_backoff_exits_one_naming_the_address() {
    let started = Instant::now();
    let output = Command::new(env!("CARGO_BIN_EXE_tiresias"))
        .args(["query", "127.0.0.1:9", "0", "10", "--retries", "2", "--retry-max-ms", "50"])
        .output()
        .expect("query subcommand runs");
    assert_eq!(output.status.code(), Some(1), "runtime failure exits 1");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("127.0.0.1:9"), "the error names the address: {stderr}");
    assert!(stderr.contains("retry 1/2") && stderr.contains("retry 2/2"), "retries ran: {stderr}");
    assert!(started.elapsed() >= Duration::from_millis(100), "backoff actually waited");
}
