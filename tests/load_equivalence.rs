//! Ingestion-path equivalence against the real binary: the same
//! workload admitted over the text protocol, over wire-protocol-v2
//! frames, and replayed from a CSV file via `tiresias load` must leave
//! three daemons in byte-identical states — the same `QUERY` anomaly
//! stream, the same record count, and the same heavy-hitter gauge.
//! The encoding never changes what the detector sees.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tiresias::server::protocol::v2;

const TIMEUNIT: u64 = 60;

const DETECTOR_FLAGS: &[&str] = &[
    "--timeunit",
    "60",
    "--window",
    "16",
    "--theta",
    "5",
    "--season",
    "4",
    "--rt",
    "2",
    "--dt",
    "5",
    "--warmup",
    "4",
    "--shards",
    "2",
];

/// A spawned daemon, killed on drop so a failing assertion never
/// leaks a listener.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn() -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_tiresias"))
            .arg("serve")
            .args(DETECTOR_FLAGS)
            .args(["--addr", "127.0.0.1:0", "--grace-ms", "400", "--tick-ms", "20"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines.next().expect("daemon prints LISTENING").expect("stdout reads");
        let addr = banner
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        Daemon { child, addr }
    }

    fn shutdown(mut self) {
        if let Ok(mut stream) = TcpStream::connect(&self.addr) {
            let _ = stream.write_all(b"SHUTDOWN\n");
        }
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout set");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("writes");
        self.stream.write_all(b"\n").expect("writes");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reads a reply line");
        line.trim_end().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    fn query(&mut self, request: &str) -> Vec<String> {
        self.send(request);
        let mut frames = Vec::new();
        loop {
            let line = self.recv();
            if line.starts_with("OK n=") {
                return frames;
            }
            assert!(line.starts_with("EVENT "), "unexpected QUERY reply: {line}");
            frames.push(line);
        }
    }
}

fn wait_for_stats(addr: &str, predicate: impl Fn(&str) -> bool) -> String {
    let mut client = Client::connect(addr);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.roundtrip("STATS");
        if predicate(&stats) {
            client.send("QUIT");
            return stats;
        }
        assert!(Instant::now() < deadline, "STATS never converged: {stats}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Steady traffic with a burst: 12 units × 4 categories, categories 0
/// and 2 bursting at unit 6.
fn workload() -> Vec<(String, u64)> {
    let mut records = Vec::new();
    for u in 0..12u64 {
        for k in 0..4u64 {
            let count = if u == 6 && (k == 0 || k == 2) { 40 } else { 8 };
            for i in 0..count {
                records.push((format!("cat{k}/leaf"), u * TIMEUNIT + (i % TIMEUNIT)));
            }
        }
    }
    records
}

/// Drives the daemon's stream closed and snapshots the observable
/// state: the full anomaly stream plus the record count and
/// heavy-hitter gauge out of `STATS`.
fn snapshot(daemon: &Daemon, records: usize) -> (Vec<String>, String, String) {
    // Units close up to one behind the stream head — the newest unit
    // stays open awaiting more records.
    let closed = "last_closed=10".to_string();
    let stats = wait_for_stats(&daemon.addr, |s| s.contains(&closed));
    let field = |key: &str| {
        stats
            .split_whitespace()
            .find_map(|f| f.strip_prefix(key))
            .unwrap_or_else(|| panic!("{key} missing from {stats}"))
            .to_string()
    };
    assert_eq!(field("records="), records.to_string(), "every record admitted: {stats}");
    assert_eq!(field("late="), "0", "{stats}");
    let mut client = Client::connect(&daemon.addr);
    let frames = client.query("QUERY 0 9999");
    client.send("QUIT");
    (frames, field("records="), field("top_paths="))
}

fn ingest_text(addr: &str, records: &[(String, u64)]) {
    let mut client = Client::connect(addr);
    assert_eq!(client.roundtrip("NOACK"), "OK");
    let mut payload = String::new();
    for (path, t) in records {
        payload.push_str(&format!("PUSH {path} {t}\n"));
    }
    client.stream.write_all(payload.as_bytes()).expect("writes");
    assert_eq!(client.roundtrip("QUIT"), "BYE");
}

fn ingest_v2(addr: &str, records: &[(String, u64)]) {
    let mut client = Client::connect(addr);
    assert_eq!(client.roundtrip("NOACK"), "OK");
    assert_eq!(client.roundtrip("HELLO v2"), "OK v2");
    assert_eq!(client.roundtrip("UPGRADE"), "OK upgraded");
    let mut enc = v2::FrameEncoder::new();
    for (seq, batch) in records.chunks(113).enumerate() {
        let mut frame = Vec::new();
        enc.encode_data(seq as u32, batch, &mut frame);
        client.stream.write_all(&frame).expect("writes frame");
    }
    // PING fences behind every prior frame, even under NOACK.
    let fence = v2::control_frame(v2::FrameKind::Ping, u32::MAX);
    client.stream.write_all(&fence).expect("writes fence");
    assert_eq!(client.recv(), format!("PONG frame={}", u32::MAX));
    client.stream.write_all(&v2::control_frame(v2::FrameKind::End, 0)).expect("writes END");
    assert_eq!(client.recv(), "OK text");
    assert_eq!(client.roundtrip("QUIT"), "BYE");
}

/// Writes the workload as the CSV/TSV file `tiresias load` reads —
/// alternating delimiters per line, with a header, a comment, and
/// blank lines the loader must skip.
fn write_csv(records: &[(String, u64)]) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "tiresias-load-eq-{}-{:?}.csv",
        std::process::id(),
        std::thread::current().id(),
    ));
    let mut text = String::from("timestamp,category\n# synthetic workload\n\n");
    for (i, (path, t)) in records.iter().enumerate() {
        let delim = if i % 2 == 0 { ',' } else { '\t' };
        text.push_str(&format!("{t}{delim}{path}\n"));
    }
    std::fs::write(&path, text).expect("csv writes");
    path
}

fn ingest_load(addr: &str, csv: &PathBuf, records: usize) {
    let output = Command::new(env!("CARGO_BIN_EXE_tiresias"))
        .arg("load")
        .arg(csv)
        .args(["--addr", addr, "--batch", "157", "--ack"])
        .output()
        .expect("load subcommand runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "load exits 0: {stderr}");
    assert!(stderr.contains(&format!("accepted={records}")), "every record accepted: {stderr}");
    assert!(stderr.contains("late=0"), "{stderr}");
}

/// The headline contract: text, v2, and `tiresias load` replay of one
/// workload are indistinguishable to the detector.
#[test]
fn text_v2_and_load_ingestion_are_byte_identical() {
    let records = workload();
    let csv = write_csv(&records);

    let text_daemon = Daemon::spawn();
    ingest_text(&text_daemon.addr, &records);
    let v2_daemon = Daemon::spawn();
    ingest_v2(&v2_daemon.addr, &records);
    let load_daemon = Daemon::spawn();
    ingest_load(&load_daemon.addr, &csv, records.len());

    let text_state = snapshot(&text_daemon, records.len());
    let v2_state = snapshot(&v2_daemon, records.len());
    let load_state = snapshot(&load_daemon, records.len());

    assert!(!text_state.0.is_empty(), "the workload produces anomalies");
    assert_eq!(text_state, v2_state, "v2 framing changes nothing the detector sees");
    assert_eq!(text_state, load_state, "CSV replay changes nothing the detector sees");

    text_daemon.shutdown();
    v2_daemon.shutdown();
    load_daemon.shutdown();
    let _ = std::fs::remove_file(&csv);
}

/// `tiresias load` on a file that does not exist exits 1 and names
/// the path; a daemon that never learned v2 is reported as such.
#[test]
fn load_failures_exit_one_with_the_reason() {
    let output = Command::new(env!("CARGO_BIN_EXE_tiresias"))
        .args(["load", "/nonexistent/tiresias.csv", "--addr", "127.0.0.1:9"])
        .output()
        .expect("load subcommand runs");
    assert_eq!(output.status.code(), Some(1), "runtime failure exits 1");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("/nonexistent/tiresias.csv"), "the error names the file: {stderr}");
}
