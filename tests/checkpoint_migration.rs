//! The versioned checkpoint envelope: round-trips for both engines,
//! and the v1 → v2 migration path — a pre-sharding checkpoint (no
//! envelope, no `shards`/`root_isolation` builder fields) loads and
//! continues the stream identically instead of erroring.

use tiresias::core::{
    load_checkpoint, save_checkpoint, CheckpointEngine, CoreError, TiresiasBuilder,
    CHECKPOINT_VERSION,
};

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(32)
        .threshold(5.0)
        .season_length(4)
        .sensitivity(2.0, 5.0)
        .warmup_units(4)
}

/// Reconstructs a v1 (pre-PR-3) checkpoint: the bare serde state with
/// the PR 2 builder fields stripped, exactly what a pre-sharding
/// deployment wrote to disk.
fn as_v1(detector_json: &str) -> String {
    let stripped = detector_json.replace(",\"shards\":1,\"root_isolation\":false", "");
    assert_ne!(stripped, detector_json, "the modern fields were present and stripped");
    assert!(!stripped.contains("version"), "v1 checkpoints had no envelope");
    stripped
}

#[test]
fn v1_checkpoint_loads_and_continues_identically() {
    // A detector checkpointed mid-stream, pre-PR-3 style.
    let mut original = builder().build().unwrap();
    for u in 0..6u64 {
        for i in 0..12 {
            original.push_str("TV/NoService", u * 900 + i).unwrap();
            original.push_str("Net/Slow", u * 900 + i).unwrap();
        }
    }
    let v1 = as_v1(&serde_json::to_string(&original).unwrap());

    let CheckpointEngine::Single(mut restored) = load_checkpoint(&v1).expect("v1 migrates") else {
        panic!("expected a single detector");
    };

    // Both continue with the same burst and must agree byte for byte.
    for u in 6..10u64 {
        let count = if u == 8 { 120 } else { 12 };
        for i in 0..count {
            original.push_str("TV/NoService", u * 900 + i).unwrap();
            restored.push_str("TV/NoService", u * 900 + i).unwrap();
        }
    }
    original.advance_to(10 * 900).unwrap();
    restored.advance_to(10 * 900).unwrap();
    assert_eq!(original.anomalies(), restored.anomalies());
    assert!(!original.anomalies().is_empty(), "the burst is detected");

    // Re-saving writes the current envelope with the migrated fields.
    let resaved = save_checkpoint(&CheckpointEngine::Single(restored));
    assert!(resaved.starts_with(&format!("{{\"version\":{CHECKPOINT_VERSION},")));
    assert!(resaved.contains("\"shards\":1"));
    assert!(resaved.contains("\"root_isolation\":false"));
}

#[test]
fn sharded_envelope_round_trips_mid_stream() {
    let records: Vec<(String, u64)> = (0..8u64)
        .flat_map(|u| {
            (0..10u64).flat_map(move |i| {
                [("TV/NoService".to_string(), u * 900 + i), ("Net/Slow".to_string(), u * 900 + i)]
            })
        })
        .collect();
    let split = records.len() / 2;

    let mut reference = builder().shards(4).build_sharded().unwrap();
    reference.push_batch(&records).unwrap();

    let mut engine = builder().shards(4).build_sharded().unwrap();
    engine.push_batch(&records[..split]).unwrap();
    let json = save_checkpoint(&CheckpointEngine::from(engine));
    assert!(json.contains("\"kind\":\"sharded\""));
    let CheckpointEngine::Sharded(mut resumed) = load_checkpoint(&json).unwrap() else {
        panic!("expected a sharded engine");
    };
    resumed.push_batch(&records[split..]).unwrap();

    assert_eq!(reference.anomalies(), resumed.anomalies());
    assert_eq!(reference.heavy_hitter_paths(), resumed.heavy_hitter_paths());
    assert_eq!(reference.units_processed(), resumed.units_processed());
}

#[test]
fn unsupported_and_malformed_checkpoints_fail_clearly() {
    let err = load_checkpoint("{\"version\":3,\"kind\":\"single\",\"engine\":{}}").unwrap_err();
    assert!(matches!(err, CoreError::Checkpoint(_)));
    assert!(err.to_string().contains("version 3"));
    assert!(matches!(load_checkpoint("{nope"), Err(CoreError::Checkpoint(_))));
}
