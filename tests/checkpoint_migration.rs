//! The versioned checkpoint envelope: round-trips for both engines,
//! and the legacy migration paths — a v1 pre-sharding checkpoint (no
//! envelope, no `shards`/`root_isolation` builder fields) and a v2
//! event-list report store both load and continue the stream
//! identically instead of erroring.

use tiresias::core::{
    load_checkpoint, save_checkpoint, CheckpointEngine, CoreError, TiresiasBuilder,
    CHECKPOINT_VERSION,
};

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(32)
        .threshold(5.0)
        .season_length(4)
        .sensitivity(2.0, 5.0)
        .warmup_units(4)
}

/// Reconstructs a v1 (pre-PR-3) checkpoint: the bare serde state with
/// the PR 2 builder fields stripped, exactly what a pre-sharding
/// deployment wrote to disk.
fn as_v1(detector_json: &str) -> String {
    let stripped = detector_json.replace(",\"shards\":1,\"root_isolation\":false", "");
    assert_ne!(stripped, detector_json, "the modern fields were present and stripped");
    assert!(!stripped.contains("version"), "v1 checkpoints had no envelope");
    stripped
}

#[test]
fn v1_checkpoint_loads_and_continues_identically() {
    // A detector checkpointed mid-stream, pre-PR-3 style.
    let mut original = builder().build().unwrap();
    for u in 0..6u64 {
        for i in 0..12 {
            original.push_str("TV/NoService", u * 900 + i).unwrap();
            original.push_str("Net/Slow", u * 900 + i).unwrap();
        }
    }
    let v1 = as_v1(&serde_json::to_string(&original).unwrap());

    let CheckpointEngine::Single(mut restored) = load_checkpoint(&v1).expect("v1 migrates") else {
        panic!("expected a single detector");
    };

    // Both continue with the same burst and must agree byte for byte.
    for u in 6..10u64 {
        let count = if u == 8 { 120 } else { 12 };
        for i in 0..count {
            original.push_str("TV/NoService", u * 900 + i).unwrap();
            restored.push_str("TV/NoService", u * 900 + i).unwrap();
        }
    }
    original.advance_to(10 * 900).unwrap();
    restored.advance_to(10 * 900).unwrap();
    assert_eq!(original.anomalies(), restored.anomalies());
    assert!(!original.anomalies().is_empty(), "the burst is detected");

    // Re-saving writes the current envelope with the migrated fields.
    let resaved = save_checkpoint(&CheckpointEngine::Single(restored));
    assert!(resaved.starts_with(&format!("{{\"version\":{CHECKPOINT_VERSION},")));
    assert!(resaved.contains("\"shards\":1"));
    assert!(resaved.contains("\"root_isolation\":false"));
}

#[test]
fn sharded_envelope_round_trips_mid_stream() {
    let records: Vec<(String, u64)> = (0..8u64)
        .flat_map(|u| {
            (0..10u64).flat_map(move |i| {
                [("TV/NoService".to_string(), u * 900 + i), ("Net/Slow".to_string(), u * 900 + i)]
            })
        })
        .collect();
    let split = records.len() / 2;

    let mut reference = builder().shards(4).build_sharded().unwrap();
    reference.push_batch(&records).unwrap();

    let mut engine = builder().shards(4).build_sharded().unwrap();
    engine.push_batch(&records[..split]).unwrap();
    let json = save_checkpoint(&CheckpointEngine::from(engine));
    assert!(json.contains("\"kind\":\"sharded\""));
    let CheckpointEngine::Sharded(mut resumed) = load_checkpoint(&json).unwrap() else {
        panic!("expected a sharded engine");
    };
    resumed.push_batch(&records[split..]).unwrap();

    assert_eq!(reference.anomalies(), resumed.anomalies());
    assert_eq!(reference.heavy_hitter_paths(), resumed.heavy_hitter_paths());
    assert_eq!(reference.units_processed(), resumed.units_processed());
}

/// Rewrites a current engine checkpoint into its v2 shape: the merged
/// report store becomes the old bare `{"events": [...]}` list, the
/// report tree moves back out to the engine-level `report_tree` field
/// (which v3 loaders must ignore), and every shard-internal store
/// collapses to its event list too.
fn as_v2_sharded(engine: &tiresias::core::ShardedTiresias) -> String {
    let mut json = serde_json::to_string(engine).unwrap();
    let store_json = serde_json::to_string(engine.store()).unwrap();
    let events_json = serde_json::to_string(&engine.store().events().to_vec()).unwrap();
    let tree_json = serde_json::to_string(engine.tree()).unwrap();
    let legacy = format!("\"report_tree\":{tree_json},\"store\":{{\"events\":{events_json}}}");
    let modern = format!("\"store\":{store_json}");
    assert!(json.contains(&modern), "merged store serialises in place");
    json = json.replace(&modern, &legacy);
    for shard in engine.shards() {
        let shard_store = serde_json::to_string(shard.store()).unwrap();
        let shard_events = serde_json::to_string(&shard.store().events().to_vec()).unwrap();
        json = json.replace(
            &format!("\"store\":{shard_store}"),
            &format!("\"store\":{{\"events\":{shard_events}}}"),
        );
    }
    format!("{{\"version\":2,\"kind\":\"sharded\",\"engine\":{json}}}")
}

#[test]
fn v2_sharded_checkpoint_loads_and_continues_identically() {
    let records: Vec<(String, u64)> = (0..10u64)
        .flat_map(|u| {
            let burst = if u == 8 { 120 } else { 12 };
            (0..burst).flat_map(move |i| {
                [("TV/NoService".to_string(), u * 900 + i), ("Net/Slow".to_string(), u * 900 + i)]
            })
        })
        .collect();
    let split = records.iter().position(|&(_, t)| t >= 6 * 900).unwrap();

    let mut reference = builder().shards(3).build_sharded().unwrap();
    reference.push_batch(&records).unwrap();
    reference.advance_to(10 * 900).unwrap();

    let mut engine = builder().shards(3).build_sharded().unwrap();
    engine.push_batch(&records[..split]).unwrap();
    let v2 = as_v2_sharded(&engine);
    let CheckpointEngine::Sharded(mut resumed) = load_checkpoint(&v2).expect("v2 loads") else {
        panic!("expected a sharded engine");
    };
    resumed.push_batch(&records[split..]).unwrap();
    resumed.advance_to(10 * 900).unwrap();

    // The migrated store answers the indexed queries, and the stream
    // continues exactly as an uninterrupted engine.
    assert_eq!(reference.anomalies(), resumed.anomalies());
    assert!(!reference.anomalies().is_empty(), "the burst is detected");
    assert_eq!(reference.heavy_hitter_paths(), resumed.heavy_hitter_paths());
    let prefix: tiresias::hierarchy::CategoryPath = "TV".parse().unwrap();
    assert_eq!(
        reference.store().under(&prefix).count(),
        resumed.store().under(&prefix).count(),
        "the rebuilt prefix index answers like the native one"
    );
    // Re-saving writes the current envelope.
    let resaved = save_checkpoint(&CheckpointEngine::Sharded(resumed));
    assert!(resaved.starts_with(&format!("{{\"version\":{CHECKPOINT_VERSION},")));
}

#[test]
fn unsupported_and_malformed_checkpoints_fail_clearly() {
    let err = load_checkpoint("{\"version\":5,\"kind\":\"single\",\"engine\":{}}").unwrap_err();
    assert!(matches!(err, CoreError::Checkpoint(_)));
    assert!(err.to_string().contains("version 5"));
    assert!(matches!(load_checkpoint("{nope"), Err(CoreError::Checkpoint(_))));
}
