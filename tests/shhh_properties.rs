//! Property-based tests of the succinct hierarchical heavy hitter
//! computation (Definition 2) on randomly generated hierarchies and
//! weights.

use proptest::prelude::*;

use tiresias::hhh::{aggregate_weights, compute_shhh, series_values};
use tiresias::hierarchy::Tree;

/// Builds a random tree from a list of path specs (bounded fan-out and
/// depth) and random leaf counts.
fn arb_tree_and_counts() -> impl Strategy<Value = (Tree, Vec<f64>)> {
    // Paths of 1..=4 components, each component one of 4 labels.
    let path = prop::collection::vec(0u8..4, 1..=4);
    prop::collection::vec((path, 0u32..40), 1..24).prop_map(|specs| {
        let mut tree = Tree::new("root");
        let mut counts: Vec<(usize, f64)> = Vec::new();
        for (labels, c) in specs {
            let path: Vec<String> = labels.iter().map(|l| format!("n{l}")).collect();
            let id = tree.insert_path(&path);
            counts.push((id.index(), c as f64));
        }
        let mut direct = vec![0.0; tree.len()];
        for (idx, c) in counts {
            direct[idx] += c;
        }
        (tree, direct)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Membership ⇔ modified weight ≥ θ, for every node.
    #[test]
    fn membership_matches_threshold((tree, direct) in arb_tree_and_counts(), theta in 1.0f64..50.0) {
        let r = compute_shhh(&tree, &direct, theta);
        for n in tree.iter() {
            prop_assert_eq!(r.is_member[n.index()], r.modified[n.index()] >= theta);
        }
    }

    /// Conservation: every count is claimed by exactly one member (its
    /// nearest member ancestor), or escapes through a non-member root.
    #[test]
    fn mass_is_conserved((tree, direct) in arb_tree_and_counts(), theta in 1.0f64..50.0) {
        let r = compute_shhh(&tree, &direct, theta);
        let total: f64 = direct.iter().sum();
        let claimed: f64 = r.members.iter().map(|m| r.modified[m.index()]).sum();
        let escaped = if r.is_member[tree.root().index()] {
            0.0
        } else {
            r.modified[tree.root().index()]
        };
        prop_assert!((claimed + escaped - total).abs() < 1e-6,
            "claimed {claimed} + escaped {escaped} != total {total}");
    }

    /// The fixed point is self-consistent: re-evaluating weights under
    /// the final membership reproduces them (uniqueness, Definition 2).
    #[test]
    fn fixed_point_is_self_consistent((tree, direct) in arb_tree_and_counts(), theta in 1.0f64..50.0) {
        let r = compute_shhh(&tree, &direct, theta);
        let v = series_values(&tree, &direct, &r.is_member);
        for n in tree.iter() {
            prop_assert!((v[n.index()] - r.modified[n.index()]).abs() < 1e-9);
        }
    }

    /// Modified weights never exceed aggregates, and the aggregate of the
    /// root is the total mass.
    #[test]
    fn modified_bounded_by_aggregate((tree, direct) in arb_tree_and_counts(), theta in 1.0f64..50.0) {
        let r = compute_shhh(&tree, &direct, theta);
        let agg = aggregate_weights(&tree, &direct);
        for n in tree.iter() {
            prop_assert!(r.modified[n.index()] <= agg[n.index()] + 1e-9);
            prop_assert!(r.modified[n.index()] >= -1e-9);
        }
        let total: f64 = direct.iter().sum();
        prop_assert!((agg[tree.root().index()] - total).abs() < 1e-9);
    }

    /// Monotonicity in θ: raising the threshold never grows the set.
    #[test]
    fn membership_shrinks_with_theta((tree, direct) in arb_tree_and_counts(), theta in 1.0f64..25.0) {
        let small = compute_shhh(&tree, &direct, theta);
        let large = compute_shhh(&tree, &direct, theta * 2.0);
        // Not subset in general for SHHH (discounting shifts mass), but
        // the *count* of members cannot grow and total claimed mass
        // cannot grow either.
        prop_assert!(large.members.len() <= small.members.len());
    }

    /// A member's ancestors are members iff their residual (after
    /// discounting member descendants) still reaches θ — so no member's
    /// weight double-counts a descendant member's weight.
    #[test]
    fn no_double_counting((tree, direct) in arb_tree_and_counts(), theta in 1.0f64..50.0) {
        let r = compute_shhh(&tree, &direct, theta);
        let agg = aggregate_weights(&tree, &direct);
        for &m in &r.members {
            // Sum of modified weights of members in m's subtree ≤ aggregate of m.
            let sub: f64 = tree
                .subtree(m)
                .filter(|d| r.is_member[d.index()])
                .map(|d| r.modified[d.index()])
                .sum();
            prop_assert!(sub <= agg[m.index()] + 1e-6);
        }
    }
}
