//! Property-based equivalence of ADA and STA: on arbitrary streams the
//! heavy hitter membership is identical (the paper's Lemma 1), and on
//! streams whose membership never changes the series agree exactly.

use proptest::prelude::*;

use tiresias::hhh::{Ada, HhhConfig, ModelSpec, Sta};
use tiresias::hierarchy::{NodeId, Tree};

/// A fixed 3-level tree with 2×3 leaves.
fn tree() -> (Tree, Vec<NodeId>) {
    let mut t = Tree::new("root");
    let mut leaves = Vec::new();
    for a in 0..2 {
        for b in 0..3 {
            leaves.push(t.insert_path(&[format!("a{a}"), format!("b{b}")]));
        }
    }
    (t, leaves)
}

fn config(theta: f64) -> HhhConfig {
    HhhConfig::new(theta, 24).with_model(ModelSpec::Ewma { alpha: 0.5 }).with_ref_levels(1)
}

/// Random per-unit leaf counts: a stream of 6-leaf count vectors.
fn arb_stream() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..30, 6), 4..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 1: ADA's maintained membership equals Definition 2
    /// (= STA's freshly computed membership) at every instance, on
    /// arbitrary membership-churning streams.
    #[test]
    fn membership_is_always_exact(stream in arb_stream(), theta in 5.0f64..40.0) {
        let (t, leaves) = tree();
        let mut ada = Ada::new(config(theta)).expect("valid");
        let mut sta = Sta::new(config(theta)).expect("valid");
        for unit in &stream {
            let mut direct = vec![0.0; t.len()];
            for (leaf, &c) in leaves.iter().zip(unit.iter()) {
                direct[leaf.index()] = c as f64;
            }
            ada.push_timeunit(&t, &direct);
            sta.push_timeunit(&t, &direct);
            let mut a: Vec<NodeId> = ada.heavy_hitters().to_vec();
            let mut s: Vec<NodeId> = sta.heavy_hitters().to_vec();
            a.sort();
            s.sort();
            prop_assert_eq!(a, s, "membership diverged");
        }
    }

    /// Modified weights agree exactly between the trackers (both compute
    /// Definition 2 fresh each unit).
    #[test]
    fn modified_weights_agree(stream in arb_stream(), theta in 5.0f64..40.0) {
        let (t, leaves) = tree();
        let mut ada = Ada::new(config(theta)).expect("valid");
        let mut sta = Sta::new(config(theta)).expect("valid");
        for unit in &stream {
            let mut direct = vec![0.0; t.len()];
            for (leaf, &c) in leaves.iter().zip(unit.iter()) {
                direct[leaf.index()] = c as f64;
            }
            ada.push_timeunit(&t, &direct);
            sta.push_timeunit(&t, &direct);
            for n in t.iter() {
                prop_assert!((ada.modified_weight(n) - sta.modified_weight(n)).abs() < 1e-9);
            }
        }
    }

    /// On a stream where one leaf is always the only heavy hitter, ADA's
    /// incrementally maintained series equals STA's reconstruction bit
    /// for bit — no splits ever fire, so no approximation is introduced.
    /// (Within one window of ℓ = 24 units: past the window STA forgets
    /// pre-window history while ADA's recorded forecasts remember it,
    /// an inherent asymmetry of the strawman.)
    #[test]
    fn stable_membership_series_exact(values in prop::collection::vec(20u8..60, 4..=24)) {
        let (t, leaves) = tree();
        let hot = leaves[0];
        let mut ada = Ada::new(config(15.0)).expect("valid");
        let mut sta = Sta::new(config(15.0)).expect("valid");
        for &v in &values {
            let mut direct = vec![0.0; t.len()];
            direct[hot.index()] = v as f64;
            ada.push_timeunit(&t, &direct);
            sta.push_timeunit(&t, &direct);
        }
        let view = ada.view(hot).expect("hot leaf is a member");
        let ada_actual: Vec<f64> = view.actual.iter().collect();
        let sta_actual = sta.actual_series(hot).expect("member");
        prop_assert_eq!(ada_actual.as_slice(), sta_actual);
        let ada_forecast: Vec<f64> = view.forecast.iter().collect();
        let sta_forecast = sta.forecast_series(hot).expect("member");
        for (a, s) in ada_forecast.iter().zip(sta_forecast.iter()) {
            prop_assert!((a - s).abs() < 1e-9, "forecast diverged: {a} vs {s}");
        }
    }

    /// Live heavy hitters always carry a series whose length matches the
    /// number of processed units (capped at ℓ) — adaptation never leaves
    /// a ragged series behind.
    #[test]
    fn series_lengths_always_aligned(stream in arb_stream(), theta in 5.0f64..40.0) {
        let (t, leaves) = tree();
        let mut ada = Ada::new(config(theta)).expect("valid");
        for (i, unit) in stream.iter().enumerate() {
            let mut direct = vec![0.0; t.len()];
            for (leaf, &c) in leaves.iter().zip(unit.iter()) {
                direct[leaf.index()] = c as f64;
            }
            ada.push_timeunit(&t, &direct);
            let expected = (i + 1).min(24);
            for &m in ada.heavy_hitters() {
                let view = ada.view(m).expect("member has view");
                prop_assert_eq!(view.actual.len(), expected);
                prop_assert_eq!(view.forecast.len(), expected);
            }
        }
    }
}
