//! End-to-end integration: synthetic operational workloads with injected
//! ground truth flow through the full detector and the anomalies come
//! out where they were injected.

use tiresias::core::{Algorithm, Record, TiresiasBuilder};
use tiresias::datagen::{ccd_location_spec, InjectedAnomaly, Workload, WorkloadConfig};

fn build_detector(algorithm: Algorithm, warmup: usize) -> tiresias::Tiresias {
    TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(192)
        .threshold(10.0)
        .season_length(96)
        .sensitivity(2.8, 8.0)
        .warmup_units(warmup)
        .algorithm(algorithm)
        .root_label("SHO")
        .build()
        .expect("valid configuration")
}

fn register_leaves(detector: &mut tiresias::Tiresias, tree: &tiresias::Tree) {
    // Adopt the workload's tree wholesale so `ingest_unit` vectors,
    // which are indexed by that tree's node ids, line up exactly.
    detector.adopt_tree(tree.clone()).expect("fresh detector");
}

#[test]
fn injected_outage_is_detected_and_localised() {
    let tree = ccd_location_spec(0.08).build().expect("valid spec");
    let target = tree.find(&["VHO-1", "IO-2"]).expect("exists");
    let mut workload = Workload::new(tree.clone(), WorkloadConfig::ccd(250.0), 1001);
    workload.inject(InjectedAnomaly::new(target, 140, 6, 500.0));

    let mut detector = build_detector(Algorithm::Ada, 96);
    register_leaves(&mut detector, &tree);
    for unit in 0..192u64 {
        detector.ingest_unit(&workload.generate_unit(unit)).expect("bulk ingest");
    }

    let target_path = tree.path_of(target);
    let localized: Vec<_> =
        detector.store().under(&target_path).filter(|e| (140..146).contains(&e.unit)).collect();
    assert!(
        !localized.is_empty(),
        "the injected outage at {target_path} must be detected in its span"
    );
}

#[test]
fn quiet_stream_raises_no_alarms() {
    let tree = ccd_location_spec(0.05).build().expect("valid spec");
    let workload = Workload::new(
        tree.clone(),
        WorkloadConfig { noise_sigma: 0.05, ..WorkloadConfig::ccd(150.0) },
        1002,
    );
    // Two full daily cycles of warm-up so the seasonal components are
    // well initialised, and reference series down to the CO level:
    // marginal heavy hitters that flap around θ re-enter the set with
    // split-approximated forecasts, and the reference-series add-on
    // (§V-B5) is the paper's designed fix for exactly that (our h sweep
    // measures 49/43/21/6 alarms for h = 0/1/2/3 on this stream).
    let mut detector = TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(192)
        .threshold(10.0)
        .season_length(96)
        .sensitivity(2.8, 8.0)
        .warmup_units(192)
        .ref_levels(3)
        .root_label("SHO")
        .build()
        .expect("valid configuration");
    register_leaves(&mut detector, &tree);
    for unit in 0..288u64 {
        detector.ingest_unit(&workload.generate_unit(unit)).expect("bulk ingest");
    }
    let alarms = detector.anomalies().len();
    assert!(alarms <= 8, "expected a near-quiet run, got {alarms} alarms");
}

#[test]
fn ada_and_sta_detect_the_same_injection() {
    let tree = ccd_location_spec(0.05).build().expect("valid spec");
    let target = tree.find(&["VHO-0", "IO-1"]).expect("exists");
    let mut workload = Workload::new(tree.clone(), WorkloadConfig::ccd(200.0), 1003);
    workload.inject(InjectedAnomaly::new(target, 120, 4, 400.0));

    let mut events_by_algo = Vec::new();
    for algorithm in [Algorithm::Ada, Algorithm::Sta] {
        let mut detector = build_detector(algorithm, 96);
        register_leaves(&mut detector, &tree);
        for unit in 0..160u64 {
            detector.ingest_unit(&workload.generate_unit(unit)).expect("bulk ingest");
        }
        let hits: Vec<(String, u64)> = detector
            .store()
            .under(&tree.path_of(target))
            .filter(|e| (120..124).contains(&e.unit))
            .map(|e| (e.path.to_string(), e.unit))
            .collect();
        assert!(!hits.is_empty(), "{algorithm:?} must catch the injection");
        events_by_algo.push(hits);
    }
    // Both algorithms localise the same event window.
    let units_ada: Vec<u64> = events_by_algo[0].iter().map(|(_, u)| *u).collect();
    let units_sta: Vec<u64> = events_by_algo[1].iter().map(|(_, u)| *u).collect();
    assert!(units_ada.iter().any(|u| units_sta.contains(u)));
}

#[test]
fn record_level_and_bulk_ingestion_agree() {
    // The same stream fed as individual records and as unit vectors
    // yields identical anomaly sets.
    let tree = ccd_location_spec(0.03).build().expect("valid spec");
    let target = tree.find(&["VHO-0"]).expect("exists");
    let mut workload = Workload::new(tree.clone(), WorkloadConfig::ccd(80.0), 1004);
    workload.inject(InjectedAnomaly::new(target, 60, 3, 300.0));

    let mut bulk = build_detector(Algorithm::Ada, 48);
    register_leaves(&mut bulk, &tree);
    for unit in 0..80u64 {
        bulk.ingest_unit(&workload.generate_unit(unit)).expect("bulk ingest");
    }

    let mut streamed = build_detector(Algorithm::Ada, 48);
    register_leaves(&mut streamed, &tree);
    for unit in 0..80u64 {
        for (node, t) in workload.generate_records(unit) {
            streamed.push(Record::from_path(tree.path_of(node), t)).expect("in-order records");
        }
        streamed.advance_to((unit + 1) * 900).expect("advance");
    }

    let key = |d: &tiresias::Tiresias| -> Vec<(String, u64)> {
        d.anomalies().iter().map(|e| (e.path.to_string(), e.unit)).collect()
    };
    assert_eq!(key(&bulk), key(&streamed));
}

#[test]
fn detector_survives_long_gaps_and_category_growth() {
    let mut detector = TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(64)
        .threshold(5.0)
        .season_length(8)
        .warmup_units(8)
        .build()
        .expect("valid configuration");
    for unit in 0..10u64 {
        for i in 0..8 {
            detector.push(Record::new("TV/NoService", unit * 900 + i)).expect("in order");
        }
        detector.advance_to((unit + 1) * 900).expect("advance");
    }
    // A 50-unit silence, then a brand-new category bursts.
    for i in 0..60 {
        detector.push(Record::new("Phone/Dead Line/Total", 60 * 900 + i)).expect("in order");
    }
    detector.advance_to(61 * 900).expect("advance");
    assert_eq!(detector.units_processed(), 61);
    assert!(
        detector.anomalies().iter().any(|e| e.path.to_string().starts_with("Phone")),
        "burst on a freshly grown branch must be caught"
    );
}
