//! Offline vendored mini-rand.
//!
//! Implements the subset of the `rand` 0.8 API this workspace uses:
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait with
//! `gen_range` over half-open and inclusive integer/float ranges, and
//! [`rngs::StdRng`] backed by xoshiro256++ (seeded via SplitMix64).
//! Deterministic for a given seed, as the workload generators require —
//! though the streams differ from upstream rand's, which is fine
//! because all expectations in this workspace are distributional.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Uniform f64 in `[0, 1)` from the top 53 bits of a word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// Extension methods over any [`RngCore`] (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let stream: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1_000_000)).collect();
        let again: Vec<u64> =
            (0..16).map(|_| StdRng::seed_from_u64(8).gen_range(0u64..1_000_000)).collect();
        // Different draws within one stream, same first draw across fresh seeds.
        assert!(stream.windows(2).any(|w| w[0] != w[1]));
        assert!(again.iter().all(|&v| v == stream[0]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..10);
            assert!((5..10).contains(&v));
            let w = rng.gen_range(5u32..=10);
            assert!((5..=10).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range(0.0f64..1.0);
            if v < 0.1 {
                lo = true;
            }
            if v > 0.9 {
                hi = true;
            }
        }
        assert!(lo && hi);
    }
}
