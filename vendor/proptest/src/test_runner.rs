//! Test-loop configuration, RNG and failure type.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// How many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// The RNG driving a property's generated inputs, seeded
/// deterministically from the test's path so runs are reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates the RNG for a named test (FNV-1a over the name).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { rng: StdRng::seed_from_u64(hash) }
    }

    /// Draws from any supported range.
    pub fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.rng.gen_range(range)
    }

    /// Uniform usize in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return lo;
        }
        self.rng.gen_range(lo..=hi)
    }
}
