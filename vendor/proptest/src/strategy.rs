//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields clones of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
