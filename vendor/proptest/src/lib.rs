//! Offline vendored mini-proptest.
//!
//! Provides the slice of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (`x in strategy` parameters and
//! the `#![proptest_config(...)]` header), range/tuple/`prop_map`
//! strategies, `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Failing cases are reported with their case number and RNG seed but
//! are **not shrunk** — acceptable for a CI gate, where the properties
//! are expected to hold.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible sizes for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of an element strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs, in one import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module alias so `prop::collection::vec(...)` works as with real
    /// proptest.
    pub use crate as prop;
}

/// Runs each property as a loop of random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal item-by-item expansion of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = {
                    let __s = &$strat;
                    $crate::strategy::Strategy::generate(__s, &mut __rng)
                };)*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!("proptest {} failed at case {}: {}", stringify!($name), __case, __e);
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Skips the current case when its inputs don't satisfy a premise.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: both sides equal `{:?}`", __l);
    }};
}
