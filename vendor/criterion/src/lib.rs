//! Offline vendored mini-criterion.
//!
//! A wall-clock micro-benchmark harness exposing the slice of the
//! criterion API the workspace's benches use: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], benchmark groups with
//! `sample_size` / `throughput`, [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing model: each benchmark is auto-calibrated to a per-sample
//! iteration count, then `sample_size` samples are taken and the
//! mean/min per-iteration time is printed. No statistics beyond that —
//! the workspace's committed numbers come from dedicated bench
//! binaries, not from this harness.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement harness entry point.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

/// How work units relate to one benchmark iteration, for derived
/// rates in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: one setup per measured call.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-benchmark measurement state handed to the closure.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the best (fastest-mean) sample.
    best: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, best: Duration::MAX }
    }

    /// Measures a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the per-sample iteration count to ~5 ms.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let per_iter = t.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX);
            if per_iter < self.best {
                self.best = per_iter;
            }
        }
    }

    /// Measures a routine with a per-call setup whose cost is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples.max(1) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let elapsed = t.elapsed();
            if elapsed < self.best {
                self.best = elapsed;
            }
        }
    }
}

fn report(id: &str, throughput: Option<Throughput>, best: Duration) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(" ({:.0} elem/s)", n as f64 / best.as_secs_f64().max(1e-12))
        }
        Throughput::Bytes(n) => {
            format!(" ({:.0} B/s)", n as f64 / best.as_secs_f64().max(1e-12))
        }
    });
    println!("bench {id:<40} {best:>12.3?}{}", rate.unwrap_or_default());
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.default_sample_size);
        f(&mut b);
        report(id, None, b.best);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration work for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{id}", self.name), self.throughput, b.best);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<P, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: BenchmarkId,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), self.throughput, b.best);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
