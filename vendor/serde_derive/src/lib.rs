//! Offline vendored mini-serde derive macros.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this crate parses the derive input by walking raw
//! `proc_macro` token trees and emits the impl as a formatted string.
//! It supports exactly the shapes this workspace uses:
//!
//! * non-generic structs (named, tuple, unit) and enums (unit, tuple
//!   and struct variants),
//! * the container attributes `#[serde(from = "T")]`,
//!   `#[serde(try_from = "T")]` (the `TryFrom` error is stringified
//!   into a `serde::DeError`) and `#[serde(into = "T")]`,
//! * the field attributes `#[serde(with = "module")]` and
//!   `#[serde(skip)]` (skipped fields are restored via `Default`).
//!
//! Generated impls target the vendored `serde` crate's `Value` model:
//! `to_value` / `from_value` plus the serde-compatible provided
//! methods.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = serialize_body(&item);
    let code = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}",
        name = item.name,
    );
    code.parse().expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = deserialize_body(&item);
    let code = format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__value: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{ {body} }}\n\
         }}",
        name = item.name,
    );
    code.parse().expect("derived Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Input model.
// ---------------------------------------------------------------------

struct Field {
    name: String,
    with: Option<String>,
    skip: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
    from: Option<String>,
    try_from: Option<String>,
    into: Option<String>,
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

/// Attribute facts we care about, collected from `#[serde(...)]`.
#[derive(Default)]
struct SerdeAttrs {
    with: Option<String>,
    from: Option<String>,
    try_from: Option<String>,
    into: Option<String>,
    skip: bool,
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_serde_attr(group: &proc_macro::Group, attrs: &mut SerdeAttrs) {
    // Group content: `serde ( key = "value" , key , ... )`.
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(inner)) = tokens.next() else { return };
    let mut it = inner.stream().into_iter().peekable();
    while let Some(tt) = it.next() {
        let TokenTree::Ident(key) = tt else { continue };
        let key = key.to_string();
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '=' {
                it.next();
                if let Some(TokenTree::Literal(lit)) = it.next() {
                    value = Some(strip_quotes(&lit.to_string()));
                }
            }
        }
        match (key.as_str(), value) {
            ("with", Some(v)) => attrs.with = Some(v),
            ("from", Some(v)) => attrs.from = Some(v),
            ("try_from", Some(v)) => attrs.try_from = Some(v),
            ("into", Some(v)) => attrs.into = Some(v),
            ("skip", _) => attrs.skip = true,
            (other, _) => panic!("mini serde_derive: unsupported serde attribute `{other}`"),
        }
    }
}

/// Consumes a leading run of attributes (`# [ ... ]`), returning the
/// serde facts found in them.
fn take_attrs(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.next() {
                    parse_serde_attr(&g, &mut attrs);
                }
            }
            _ => return attrs,
        }
    }
}

/// Skips a visibility marker (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(i)) = it.peek() {
        if i.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

/// Parses the named fields of a brace group (struct body or struct
/// variant body).
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = group.stream().into_iter().peekable();
    loop {
        let attrs = take_attrs(&mut it);
        skip_visibility(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else { break };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("mini serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tt in it.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name: name.to_string(), with: attrs.with, skip: attrs.skip });
    }
    fields
}

/// Counts the fields of a parenthesised tuple body.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    for tt in group.stream() {
        saw_any = true;
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // Trailing commas would over-count, but the workspace style never
    // uses them inside tuple structs; `count` commas separate count+1
    // fields.
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = group.stream().into_iter().peekable();
    loop {
        let _attrs = take_attrs(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else { break };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.clone();
                it.next();
                Shape::Named(parse_named_fields(&g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.clone();
                it.next();
                Shape::Tuple(count_tuple_fields(&g))
            }
            _ => Shape::Unit,
        };
        // Consume up to and including the separating comma.
        for tt in it.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name: name.to_string(), shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    let mut container = SerdeAttrs::default();
    // Attributes and visibility may precede the struct/enum keyword in
    // any order (doc comments, other derives' helper attrs, `pub`).
    let is_enum = loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let more = take_attrs(&mut it);
                if more.from.is_some() {
                    container.from = more.from;
                }
                if more.try_from.is_some() {
                    container.try_from = more.try_from;
                }
                if more.into.is_some() {
                    container.into = more.into;
                }
            }
            Some(TokenTree::Ident(i)) => {
                let word = i.to_string();
                it.next();
                match word.as_str() {
                    "struct" => break false,
                    "enum" => break true,
                    _ => {}
                }
            }
            Some(_) => {
                it.next();
            }
            None => panic!("mini serde_derive: no struct or enum found in derive input"),
        }
    };
    let Some(TokenTree::Ident(name)) = it.next() else {
        panic!("mini serde_derive: expected type name after struct/enum keyword");
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("mini serde_derive: generic types are not supported (type `{name}`)");
        }
    }
    let kind = if is_enum {
        let Some(TokenTree::Group(g)) = it.next() else {
            panic!("mini serde_derive: expected enum body");
        };
        Kind::Enum(parse_variants(&g))
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(&g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(count_tuple_fields(&g)))
            }
            _ => Kind::Struct(Shape::Unit),
        }
    };
    Item {
        name: name.to_string(),
        kind,
        from: container.from,
        try_from: container.try_from,
        into: container.into,
    }
}

// ---------------------------------------------------------------------
// Codegen: Serialize.
// ---------------------------------------------------------------------

/// `to_value` expression for one field access path (e.g. `&self.x`).
fn field_to_value(access: &str, with: &Option<String>) -> String {
    match with {
        Some(module) => format!(
            "match {module}::serialize({access}, serde::ValueSerializer) \
             {{ Ok(__v) => __v, Err(__e) => match __e {{}} }}"
        ),
        None => format!("serde::Serialize::to_value({access})"),
    }
}

fn named_fields_map(fields: &[Field], prefix: &str) -> String {
    let mut out = String::from("{ let mut __fields: Vec<(String, serde::Value)> = Vec::new(); ");
    for f in fields {
        if f.skip {
            continue;
        }
        let access = format!("&{}{}", prefix, f.name);
        out.push_str(&format!(
            "__fields.push((\"{name}\".to_string(), {expr})); ",
            name = f.name,
            expr = field_to_value(&access, &f.with),
        ));
    }
    out.push_str("serde::Value::Map(__fields) }");
    out
}

fn serialize_body(item: &Item) -> String {
    if let Some(into) = &item.into {
        return format!(
            "{{ let __repr: {into} = <Self as ::std::clone::Clone>::clone(self).into(); \
               serde::Serialize::to_value(&__repr) }}"
        );
    }
    match &item.kind {
        Kind::Struct(Shape::Unit) => "serde::Value::Null".to_string(),
        Kind::Struct(Shape::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => named_fields_map(fields, "self."),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let name = &item.name;
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(__a0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => serde::Value::Map(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binds = binds.join(", "),
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_fields_map(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => serde::Value::Map(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    }
}

// ---------------------------------------------------------------------
// Codegen: Deserialize.
// ---------------------------------------------------------------------

/// `from_value` expression for one field of a map value named `src`.
fn field_from_value(f: &Field, src: &str) -> String {
    if f.skip {
        return format!("{}: ::std::default::Default::default()", f.name);
    }
    match &f.with {
        Some(module) => format!(
            "{name}: {module}::deserialize(serde::ValueDeserializer::new({src}.field(\"{name}\")?))?",
            name = f.name,
        ),
        None => format!(
            "{name}: serde::Deserialize::from_value({src}.field(\"{name}\")?)?",
            name = f.name,
        ),
    }
}

fn tuple_from_seq(path: &str, n: usize, src: &str) -> String {
    if n == 1 {
        return format!("Ok({path}(serde::Deserialize::from_value({src})?))");
    }
    format!(
        "match {src} {{ \
             serde::Value::Seq(__items) if __items.len() == {n} => Ok({path}({args})), \
             __other => Err(serde::DeError::new(format!(\
                 \"expected sequence of {n} elements for {path}, found {{}}\", __other.kind()))) \
         }}",
        args = (0..n)
            .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
            .collect::<Vec<_>>()
            .join(", "),
    )
}

fn deserialize_body(item: &Item) -> String {
    if let Some(from) = &item.from {
        return format!(
            "{{ let __repr: {from} = serde::Deserialize::from_value(__value)?; \
               Ok(<Self as ::std::convert::From<{from}>>::from(__repr)) }}"
        );
    }
    if let Some(try_from) = &item.try_from {
        return format!(
            "{{ let __repr: {try_from} = serde::Deserialize::from_value(__value)?; \
               <Self as ::std::convert::TryFrom<{try_from}>>::try_from(__repr) \
                   .map_err(|__e| serde::DeError::new(__e.to_string())) }}"
        );
    }
    let name = &item.name;
    match &item.kind {
        Kind::Struct(Shape::Unit) => format!("{{ let _ = __value; Ok({name}) }}"),
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(serde::Deserialize::from_value(__value)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => tuple_from_seq(name, *n, "__value"),
        Kind::Struct(Shape::Named(fields)) => {
            let inits: Vec<String> =
                fields.iter().map(|f| field_from_value(f, "__value")).collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
                    }
                    Shape::Tuple(n) => {
                        let expr = tuple_from_seq(&format!("{name}::{vname}"), *n, "__inner");
                        data_arms.push_str(&format!("\"{vname}\" => {expr},\n"));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> =
                            fields.iter().map(|f| field_from_value(f, "__inner")).collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname} {{ {} }}),\n",
                            inits.join(", "),
                        ));
                    }
                }
            }
            format!(
                "match __value {{ \
                     serde::Value::Str(__s) => match __s.as_str() {{ \
                         {unit_arms} \
                         __other => Err(serde::DeError::new(format!(\
                             \"unknown unit variant `{{}}` of {name}\", __other))), \
                     }}, \
                     serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                         let (__tag, __inner) = &__entries[0]; \
                         match __tag.as_str() {{ \
                             {data_arms} \
                             __other => Err(serde::DeError::new(format!(\
                                 \"unknown variant `{{}}` of {name}\", __other))), \
                         }} \
                     }} \
                     __other => Err(serde::DeError::new(format!(\
                         \"expected {name} variant, found {{}}\", __other.kind()))), \
                 }}"
            )
        }
    }
}
