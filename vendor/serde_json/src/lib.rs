//! Offline vendored mini `serde_json`.
//!
//! Serialises the vendored `serde` crate's [`serde::Value`] model to
//! JSON text and parses it back. Covers the workspace's needs:
//! [`to_string`], [`to_string_pretty`], [`from_str`], with full
//! round-tripping of the value model (including f64 precision via
//! Rust's shortest round-trip float formatting).

#![forbid(unsafe_code)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Error produced by JSON parsing or value conversion.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Convenience alias matching serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips,
        // and always includes a decimal point or exponent.
        out.push_str(&format!("{v:?}"));
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn push_newline_indent(out: &mut String, indent: usize, depth: usize) {
    out.push('\n');
    for _ in 0..indent * depth {
        out.push(' ');
    }
}

fn write_value(out: &mut String, value: &Value, pretty: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(out, *v),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(indent) = pretty {
                    push_newline_indent(out, indent, depth + 1);
                }
                write_value(out, item, pretty, depth + 1);
            }
            if let Some(indent) = pretty {
                push_newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(indent) = pretty {
                    push_newline_indent(out, indent, depth + 1);
                }
                write_escaped(out, key);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_value(out, item, pretty, depth + 1);
            }
            if let Some(indent) = pretty {
                push_newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into the interchange [`Value`] model.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: runs of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::new("unexpected end of string escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let mut code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pair handling for astral chars.
                            if (0xd800..0xdc00).contains(&code)
                                && self.bytes.get(self.pos) == Some(&b'\\')
                                && self.bytes.get(self.pos + 1) == Some(&b'u')
                            {
                                let lo_hex = self
                                    .bytes
                                    .get(self.pos + 2..self.pos + 6)
                                    .ok_or_else(|| Error::new("truncated surrogate pair"))?;
                                let lo_hex = std::str::from_utf8(lo_hex)
                                    .map_err(|_| Error::new("invalid surrogate pair"))?;
                                let lo = u32::from_str_radix(lo_hex, 16)
                                    .map_err(|_| Error::new("invalid surrogate pair"))?;
                                if (0xdc00..0xe000).contains(&lo) {
                                    self.pos += 6;
                                    code = 0x10000 + ((code - 0xd800) << 10) + (lo - 0xdc00);
                                }
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::U64(u))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::I64(i))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_values() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::Seq(vec![Value::U64(1), Value::F64(2.5)])),
            ("b".to_string(), Value::Str("x\"y\n".to_string())),
            ("c".to_string(), Value::Null),
            ("d".to_string(), Value::Bool(true)),
            ("e".to_string(), Value::I64(-3)),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &v, None, 0);
        assert_eq!(parse_value(&compact).unwrap(), v);
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn float_precision_round_trips() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456_f64, 1.0] {
            let mut s = String::new();
            write_value(&mut s, &Value::F64(x), None, 0);
            match parse_value(&s).unwrap() {
                Value::F64(back) => assert_eq!(back, x),
                // Integral floats print with `.0`, so stay floats.
                other => panic!("expected float back, got {other:?}"),
            }
        }
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1u32, 2.5f64), (3, 4.0)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse_value("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::Str("é😀".to_string()));
    }
}
