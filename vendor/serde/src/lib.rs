//! Offline vendored mini-serde.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of serde's API surface the workspace relies
//! on: `Serialize`/`Deserialize` derives, `Serializer`/`Deserializer`
//! generics for `#[serde(with = "...")]` modules, and the
//! `#[serde(from/into)]` container attributes.
//!
//! The design is deliberately simpler than real serde: every type
//! converts to and from a self-describing [`Value`] tree, and format
//! crates (`serde_json`) render that tree. The trait *names and
//! signatures* match serde closely enough that application code written
//! against real serde compiles unchanged; swapping the real crates back
//! in later requires only a manifest edit.

#![forbid(unsafe_code)]

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value — the interchange format between
/// data structures and format crates.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a [`Value::Map`], failing with a descriptive
    /// error otherwise. Used by derived `Deserialize` impls.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Short description of the value's variant for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "integer",
            Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced while converting a [`Value`] back into a data
/// structure.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization half: structures render themselves into a [`Value`].
///
/// The provided [`Serialize::serialize`] method matches serde's entry
/// point so `#[serde(with = "...")]` modules written for real serde
/// (generic over `S: Serializer`) compile unchanged.
pub trait Serialize {
    /// Converts `self` into the interchange [`Value`].
    fn to_value(&self) -> Value;

    /// serde-compatible entry point: feeds [`Serialize::to_value`]
    /// through the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink that consumes a [`Value`] (serde-compatible shape).
pub trait Serializer: Sized {
    /// Successful output of the serializer.
    type Ok;
    /// Serialization error type.
    type Error;

    /// Consumes the interchange value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// The serializer used by derived impls for `with`-module fields: it
/// simply hands the built [`Value`] back.
#[derive(Debug, Default, Clone, Copy)]
pub struct ValueSerializer;

/// Error type of [`ValueSerializer`]; never constructed.
#[derive(Debug)]
pub enum NeverError {}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = NeverError;

    fn serialize_value(self, value: Value) -> Result<Value, NeverError> {
        Ok(value)
    }
}

/// Errors usable by [`Deserializer`] implementations: anything that can
/// absorb a [`DeError`].
pub trait DeserializeError {
    /// Converts the mini-serde error into the deserializer's error.
    fn from_de_error(e: DeError) -> Self;
}

impl DeserializeError for DeError {
    fn from_de_error(e: DeError) -> Self {
        e
    }
}

/// Deserialization half: structures rebuild themselves from a
/// [`Value`].
///
/// The lifetime parameter mirrors serde's `Deserialize<'de>` so
/// generic bounds written for real serde compile unchanged; the value
/// model is always owned, so the lifetime carries no borrowing.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the interchange [`Value`].
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// serde-compatible entry point: pulls a [`Value`] out of the
    /// deserializer and rebuilds `Self` from it.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        Self::from_value(&value).map_err(D::Error::from_de_error)
    }
}

/// Marker for types deserializable with no borrowed data (all of them,
/// in this mini implementation).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A source that yields a [`Value`] (serde-compatible shape).
pub trait Deserializer<'de>: Sized {
    /// Deserialization error type.
    type Error: DeserializeError;

    /// Produces the interchange value.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// The deserializer handed to `with`-module functions by derived impls:
/// it wraps a borrowed [`Value`].
#[derive(Debug, Clone, Copy)]
pub struct ValueDeserializer<'a>(&'a Value);

impl<'a> ValueDeserializer<'a> {
    /// Wraps a borrowed value.
    pub fn new(value: &'a Value) -> Self {
        ValueDeserializer(value)
    }
}

impl<'a, 'de> Deserializer<'de> for ValueDeserializer<'a> {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0.clone())
    }
}

// ---------------------------------------------------------------------
// Serialize implementations for std types.
// ---------------------------------------------------------------------

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

/// Types usable as map keys: rendered to strings on serialization
/// (JSON maps have string keys) and parsed back on deserialization.
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError::new(format!("invalid {} map key `{key}`", stringify!($t)))
                })
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

// ---------------------------------------------------------------------
// Deserialize implementations for std types.
// ---------------------------------------------------------------------

fn int_from_value(value: &Value, what: &str) -> Result<i128, DeError> {
    match value {
        Value::I64(v) => Ok(i128::from(*v)),
        Value::U64(v) => Ok(i128::from(*v)),
        Value::F64(v) if v.fract() == 0.0 => Ok(*v as i128),
        other => Err(DeError::new(format!("expected {what}, found {}", other.kind()))),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = int_from_value(value, stringify!($t))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(v) => Ok(*v),
            Value::I64(v) => Ok(*v as f64),
            Value::U64(v) => Ok(*v as f64),
            other => Err(DeError::new(format!("expected f64, found {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::new(format!("expected null, found {}", other.kind()))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

fn seq_from_value(value: &Value) -> Result<&[Value], DeError> {
    match value {
        Value::Seq(items) => Ok(items),
        other => Err(DeError::new(format!("expected sequence, found {}", other.kind()))),
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        seq_from_value(value)?.iter().map(T::from_value).collect()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        seq_from_value(value)?.iter().map(T::from_value).collect()
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(DeError::new(format!("expected map, found {}", other.kind()))),
        }
    }
}

macro_rules! de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = seq_from_value(value)?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected tuple of {} elements, found {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (A: 0 ; 1)
    (A: 0, B: 1 ; 2)
    (A: 0, B: 1, C: 2 ; 3)
    (A: 0, B: 1, C: 2, D: 3 ; 4)
}

impl<'de> Deserialize<'de> for Duration {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(value.field("secs")?)?;
        let nanos = u32::from_value(value.field("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"x".to_string().to_value()).unwrap(), "x");
        let v: Vec<u8> = Vec::from_value(&vec![1u8, 2].to_value()).unwrap();
        assert_eq!(v, vec![1, 2]);
        let d = Duration::new(3, 500);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
        let pair: (u8, f64) = Deserialize::from_value(&(7u8, 2.5f64).to_value()).unwrap();
        assert_eq!(pair, (7, 2.5));
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<u8>.to_value(), Value::Null);
        let o: Option<u8> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
        let o: Option<u8> = Deserialize::from_value(&Value::U64(4)).unwrap();
        assert_eq!(o, Some(4));
    }

    #[test]
    fn field_lookup_errors_are_descriptive() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert!(v.field("a").is_ok());
        let err = v.field("b").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }
}
