//! # Tiresias
//!
//! Online anomaly detection for hierarchical operational network data — a
//! from-scratch Rust reproduction of *Hong, Caesar, Duffield, Wang:
//! "Tiresias: Online Anomaly Detection for Hierarchical Operational
//! Network Data", ICDCS 2012*.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`hierarchy`] — additive category hierarchies ([`Tree`],
//!   [`CategoryPath`], [`HierarchySpec`]),
//! * [`timeseries`] — ring-buffer series, EWMA and Holt-Winters seasonal
//!   forecasting, multi-time-scale series,
//! * [`spectral`] — FFT periodograms and à-trous wavelet seasonality
//!   analysis,
//! * [`sketch`] — count-min and space-saving streaming summaries for
//!   very large leaf spaces,
//! * [`hhh`] — succinct hierarchical heavy hitters, the strawman `Sta`
//!   and the adaptive `Ada` maintenance algorithms,
//! * [`datagen`] — synthetic CCD/SCD operational-data generators with
//!   ground-truth anomaly injection,
//! * [`core`] — the end-to-end streaming detector ([`Tiresias`]),
//! * [`server`] — the live streaming-ingestion TCP daemon over the
//!   sharded engine (`tiresias serve`).
//!
//! # Quickstart
//!
//! ```
//! use tiresias::core::{Record, TiresiasBuilder};
//!
//! // A tiny detector: 8 timeunits of history, 1-hour timeunits,
//! // heavy-hitter threshold 5, and a short daily season of 4 units.
//! let mut detector = TiresiasBuilder::new()
//!     .timeunit_secs(3600)
//!     .window_len(8)
//!     .threshold(5.0)
//!     .season_length(4)
//!     .sensitivity(2.0, 4.0)
//!     .build()?;
//!
//! // Feed steady history, then a burst in the most recent timeunit.
//! for t in 0..16u64 {
//!     let n = if t == 15 { 60 } else { 6 };
//!     for i in 0..n {
//!         detector.push(Record::new("TV/No Service", t * 3600 + i))?;
//!     }
//!     detector.advance_to((t + 1) * 3600)?;
//! }
//! let anomalies = detector.anomalies();
//! assert!(!anomalies.is_empty(), "the burst is flagged");
//! # Ok::<(), tiresias::core::CoreError>(())
//! ```

pub use tiresias_core as core;
pub use tiresias_datagen as datagen;
pub use tiresias_hhh as hhh;
pub use tiresias_hierarchy as hierarchy;
pub use tiresias_server as server;
pub use tiresias_sketch as sketch;
pub use tiresias_spectral as spectral;
pub use tiresias_timeseries as timeseries;

pub use tiresias_core::{Tiresias, TiresiasBuilder};
pub use tiresias_hierarchy::{CategoryPath, HierarchySpec, Tree};
