//! `tiresias` — command-line front end for the detector (the library's
//! substitute for the paper's web UI, Fig. 3(f)).
//!
//! Subcommands:
//!
//! * `detect <csv>` — stream a CSV of `timestamp_secs,category/path`
//!   records through the detector and print detected anomalies as CSV.
//! * `demo` — run a self-contained synthetic demo (CCD hierarchy with
//!   an injected outage) and print the detections plus an annotated
//!   hierarchy rendering.
//!
//! Options (both subcommands): `--timeunit <secs>` `--window <units>`
//! `--theta <w>` `--season <units>` `--rt <x>` `--dt <x>`
//! `--warmup <units>`.

use std::io::BufRead;

use tiresias::core::{events_to_csv, TiresiasBuilder};
use tiresias::datagen::{ccd_location_spec, InjectedAnomaly, Workload, WorkloadConfig};
use tiresias::hierarchy::render_ascii;

#[derive(Debug, Clone)]
struct Options {
    timeunit: u64,
    window: usize,
    theta: f64,
    season: usize,
    rt: f64,
    dt: f64,
    warmup: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            timeunit: 900,
            window: 672,
            theta: 10.0,
            season: 96,
            rt: 2.8,
            dt: 8.0,
            warmup: None,
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--timeunit" => {
                opts.timeunit = value("--timeunit")?.parse().map_err(|e| format!("{e}"))?
            }
            "--window" => opts.window = value("--window")?.parse().map_err(|e| format!("{e}"))?,
            "--theta" => opts.theta = value("--theta")?.parse().map_err(|e| format!("{e}"))?,
            "--season" => opts.season = value("--season")?.parse().map_err(|e| format!("{e}"))?,
            "--rt" => opts.rt = value("--rt")?.parse().map_err(|e| format!("{e}"))?,
            "--dt" => opts.dt = value("--dt")?.parse().map_err(|e| format!("{e}"))?,
            "--warmup" => {
                opts.warmup = Some(value("--warmup")?.parse().map_err(|e| format!("{e}"))?)
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn build(opts: &Options) -> Result<tiresias::Tiresias, Box<dyn std::error::Error>> {
    let mut b = TiresiasBuilder::new()
        .timeunit_secs(opts.timeunit)
        .window_len(opts.window)
        .threshold(opts.theta)
        .season_length(opts.season)
        .sensitivity(opts.rt, opts.dt);
    if let Some(w) = opts.warmup {
        b = b.warmup_units(w);
    }
    Ok(b.build()?)
}

fn cmd_detect(path: &str, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let file = std::fs::File::open(path)?;
    let mut detector = build(opts)?;
    let mut line_no = 0u64;
    let mut accepted = 0u64;
    let mut skipped = 0u64;
    let mut last_time = 0u64;
    for line in std::io::BufReader::new(file).lines() {
        let line = line?;
        line_no += 1;
        let line = line.trim();
        if line.is_empty()
            || line.starts_with('#')
            || (line_no == 1 && line.starts_with("timestamp"))
        {
            continue;
        }
        let Some((ts, category)) = line.split_once(',') else {
            eprintln!("line {line_no}: expected `timestamp,category`, skipping");
            skipped += 1;
            continue;
        };
        let Ok(t) = ts.trim().parse::<u64>() else {
            eprintln!("line {line_no}: bad timestamp `{ts}`, skipping");
            skipped += 1;
            continue;
        };
        // The CSV line is already borrowed text — take the
        // zero-allocation fast path instead of parsing a Record.
        match detector.push_str(category.trim(), t) {
            Ok(()) => {
                accepted += 1;
                last_time = last_time.max(t);
            }
            Err(e) => {
                eprintln!("line {line_no}: {e}, skipping");
                skipped += 1;
            }
        }
    }
    detector.advance_to(last_time + opts.timeunit)?;
    eprintln!(
        "processed {accepted} records ({skipped} skipped) over {} timeunits; {} heavy hitters live",
        detector.units_processed(),
        detector.heavy_hitters().len()
    );
    print!("{}", events_to_csv(detector.anomalies()));
    Ok(())
}

fn cmd_demo(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let tree = ccd_location_spec(0.08).build()?;
    let target = tree.find(&["VHO-1", "IO-2"]).expect("exists at this scale");
    let mut workload = Workload::new(tree.clone(), WorkloadConfig::ccd(250.0), 42);
    workload.inject(InjectedAnomaly::new(target, 140, 6, 500.0));

    let mut opts = opts.clone();
    opts.warmup = opts.warmup.or(Some(96));
    opts.window = opts.window.min(192);
    let mut detector = build(&opts)?;
    detector.adopt_tree(tree.clone())?;
    for unit in 0..192u64 {
        detector.ingest_unit(&workload.generate_unit(unit))?;
    }

    eprintln!("demo: injected an outage under {} at units 140..146", tree.path_of(target));
    print!("{}", events_to_csv(detector.anomalies()));

    // Annotated hierarchy: anomaly counts per node, two levels deep.
    let store = detector.store();
    eprintln!("\nhierarchy (anomaly counts, two levels):");
    let rendering = render_ascii(&tree, tree.root(), 2, |n| {
        let count = store.under(&tree.path_of(n)).count();
        (count > 0).then(|| format!("{count} anomalies"))
    });
    eprint!("{rendering}");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: tiresias <detect <file.csv> | demo> [--timeunit s] [--window n] \
                 [--theta w] [--season n] [--rt x] [--dt x] [--warmup n]";
    let result = match args.split_first() {
        Some((cmd, rest)) if cmd == "detect" => match rest.split_first() {
            Some((path, flags)) => match parse_options(flags) {
                Ok(opts) => cmd_detect(path, &opts),
                Err(e) => Err(e.into()),
            },
            None => Err("detect needs a CSV file argument".into()),
        },
        Some((cmd, rest)) if cmd == "demo" => match parse_options(rest) {
            Ok(opts) => cmd_demo(&opts),
            Err(e) => Err(e.into()),
        },
        _ => Err(usage.into()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
