//! `tiresias` — command-line front end for the detector (the library's
//! substitute for the paper's web UI, Fig. 3(f)).
//!
//! Subcommands:
//!
//! * `detect <csv>` — stream a CSV of `timestamp_secs,category/path`
//!   records through the detector and print detected anomalies as CSV.
//! * `serve` — run the live streaming-ingestion daemon: accept
//!   concurrent TCP clients speaking the newline-delimited protocol
//!   (`PUSH`/`SUBSCRIBE`/`QUERY`/`STATS`/`SHUTDOWN`, see the README),
//!   close timeunits on wall-clock time with a grace window for late
//!   records, retain a bounded queryable report store, and checkpoint
//!   on graceful shutdown.
//! * `route` — run the fault-tolerant routing daemon: consistent-hash
//!   top-level labels over N downstream `serve` nodes (`--node`, one
//!   per downstream, order = routing table), supervise each downstream
//!   with health probes and backoff reconnects, park records for down
//!   nodes in a bounded outage buffer, and answer `QUERY` by degraded
//!   scatter-gather.
//! * `query <addr> <from> <to>` — query a running daemon's retained
//!   report store over the wire protocol and print the matching
//!   anomalies as CSV (`--prefix <path>`, `--level <n>`,
//!   `--limit <k>` narrow the result; `--retries <n>` /
//!   `--retry-max-ms <ms>` retry refused connects *and* mid-stream
//!   disconnects with capped, jittered exponential backoff while a
//!   daemon restarts).
//! * `top <addr>` — a self-refreshing terminal dashboard over a
//!   running daemon's `STATS JSON` reply (plain ANSI, no TUI
//!   dependency): counters, gauges and latency histogram quantiles,
//!   plus an ingest rate derived client-side from successive admitted
//!   totals. `--interval-ms <n>` tunes the poll cadence; `--once`
//!   prints a single snapshot and exits (script-friendly).
//! * `wal-dump <dir>` — inspect a write-ahead-log directory offline:
//!   print each intact frame (and, with `--records`, each record)
//!   plus the torn-tail report, without repairing anything.
//! * `demo` — run a self-contained synthetic demo (CCD hierarchy with
//!   an injected outage) and print the detections plus an annotated
//!   hierarchy rendering.
//!
//! Options (all subcommands): `--timeunit <secs>` `--window <units>`
//! `--theta <w>` `--season <units>` `--rt <x>` `--dt <x>`
//! `--warmup <units>`. `detect` additionally takes `--shards <n>` to
//! run the sharded multi-core engine (records batched and routed by
//! top-level label; any explicit `--shards` count — 1 included —
//! produces identical output, while omitting the flag runs the plain
//! detector, which additionally reports whole-population root
//! anomalies) and `--batch <records>` to tune the batch size. `serve`
//! takes `--shards`/`--batch` the same way plus `--addr <host:port>`,
//! `--grace-ms <ms>`, `--tick-ms <ms>`, `--max-ahead <units>` (refuse
//! records more than that many timeunits ahead of the open unit;
//! default 1000), `--retain-units <n>` (cap the queryable report
//! store at the newest n closed timeunits; omitted = unbounded),
//! `--checkpoint <file>` (loaded on start when present, written on
//! graceful shutdown), `--data-dir <dir>` (crash-safe durability:
//! write-ahead log, spilled retention segments and the checkpoint all
//! live here; on restart the WAL replays everything newer than the
//! checkpoint) and `--wal-sync every|interval[:ms]|none` (fsync
//! policy of that log, default `interval:200`). `serve` and `route`
//! both take `--metrics-addr <host:port>` (a Prometheus `GET /metrics`
//! listener; the bound address is echoed as a `METRICS` line),
//! `--slow-log <file>` (structured NDJSON log of operations over
//! threshold) and `--slow-ms <n>` (that threshold, default 100).
//! `serve` additionally takes `--rebalance` (skew-adaptive shard
//! rebalancing: hot top-level labels are repinned across shards at
//! epoch barriers, with byte-identical output) and
//! `--balance-threshold <x>` (rebalance until the worst/mean
//! shard-load ratio is ≤ x, default 1.15).
//!
//! Usage errors (unknown subcommands or flags, missing values) print
//! the usage to stderr and exit with status 2; runtime errors (such as
//! an unreadable input file) report the cause and exit with status 1.

use std::io::BufRead;
use std::time::Duration;

use tiresias::core::{events_to_csv, CoreError, TiresiasBuilder};
use tiresias::datagen::{ccd_location_spec, InjectedAnomaly, Workload, WorkloadConfig};
use tiresias::hierarchy::render_ascii;
use tiresias::server::protocol::v2;
use tiresias::server::{Router, RouterConfig, Server, ServerConfig};

#[derive(Debug, Clone)]
struct Options {
    timeunit: u64,
    window: usize,
    theta: f64,
    season: usize,
    rt: f64,
    dt: f64,
    warmup: Option<usize>,
    shards: Option<usize>,
    batch: usize,
    /// Zipf exponent over top-level labels for the synthetic
    /// generator (`demo`); 0 keeps the near-uniform default.
    zipf_s: f64,
    // `serve`-only options.
    addr: String,
    grace_ms: u64,
    tick_ms: u64,
    max_ahead: u64,
    retain_units: Option<u64>,
    checkpoint: Option<String>,
    data_dir: Option<String>,
    wal_sync: tiresias::core::WalSyncPolicy,
    idle_timeout_ms: Option<u64>,
    metrics_addr: Option<String>,
    slow_log: Option<String>,
    slow_ms: u64,
    rebalance: bool,
    balance_threshold: f64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            timeunit: 900,
            window: 672,
            theta: 10.0,
            season: 96,
            rt: 2.8,
            dt: 8.0,
            warmup: None,
            shards: None,
            batch: 8192,
            zipf_s: 0.0,
            addr: "127.0.0.1:7171".to_string(),
            grace_ms: 5_000,
            tick_ms: 50,
            max_ahead: tiresias::core::DEFAULT_MAX_AHEAD_UNITS,
            retain_units: None,
            checkpoint: None,
            data_dir: None,
            wal_sync: tiresias::core::WalSyncPolicy::Interval(
                tiresias::core::WalSyncPolicy::DEFAULT_INTERVAL,
            ),
            idle_timeout_ms: None,
            metrics_addr: None,
            slow_log: None,
            slow_ms: tiresias::server::DEFAULT_SLOW_MS,
            rebalance: false,
            balance_threshold: tiresias::core::RebalanceConfig::default().threshold,
        }
    }
}

/// Parses the flags shared by all subcommands (`serve` additionally
/// accepts the serving flags). A parse failure reports the offending
/// flag so the error is actionable.
fn parse_options(args: &[String], serve: bool) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("missing value for {name}"))
        };
        fn parsed<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            raw.parse().map_err(|e| format!("invalid value `{raw}` for {name}: {e}"))
        }
        match flag.as_str() {
            "--timeunit" => opts.timeunit = parsed("--timeunit", value("--timeunit")?)?,
            "--window" => opts.window = parsed("--window", value("--window")?)?,
            "--theta" => opts.theta = parsed("--theta", value("--theta")?)?,
            "--season" => opts.season = parsed("--season", value("--season")?)?,
            "--rt" => opts.rt = parsed("--rt", value("--rt")?)?,
            "--dt" => opts.dt = parsed("--dt", value("--dt")?)?,
            "--warmup" => opts.warmup = Some(parsed("--warmup", value("--warmup")?)?),
            "--shards" => opts.shards = Some(parsed("--shards", value("--shards")?)?),
            "--batch" => opts.batch = parsed("--batch", value("--batch")?)?,
            "--zipf-s" => opts.zipf_s = parsed("--zipf-s", value("--zipf-s")?)?,
            "--addr" if serve => opts.addr = value("--addr")?.clone(),
            "--grace-ms" if serve => opts.grace_ms = parsed("--grace-ms", value("--grace-ms")?)?,
            "--tick-ms" if serve => opts.tick_ms = parsed("--tick-ms", value("--tick-ms")?)?,
            "--max-ahead" if serve => {
                opts.max_ahead = parsed("--max-ahead", value("--max-ahead")?)?;
            }
            "--retain-units" if serve => {
                opts.retain_units = Some(parsed("--retain-units", value("--retain-units")?)?);
            }
            "--checkpoint" if serve => opts.checkpoint = Some(value("--checkpoint")?.clone()),
            "--data-dir" if serve => opts.data_dir = Some(value("--data-dir")?.clone()),
            "--wal-sync" if serve => opts.wal_sync = parsed("--wal-sync", value("--wal-sync")?)?,
            "--idle-timeout-ms" if serve => {
                opts.idle_timeout_ms =
                    Some(parsed("--idle-timeout-ms", value("--idle-timeout-ms")?)?);
            }
            "--metrics-addr" if serve => {
                opts.metrics_addr = Some(value("--metrics-addr")?.clone());
            }
            "--slow-log" if serve => opts.slow_log = Some(value("--slow-log")?.clone()),
            "--slow-ms" if serve => opts.slow_ms = parsed("--slow-ms", value("--slow-ms")?)?,
            "--rebalance" if serve => opts.rebalance = true,
            "--balance-threshold" if serve => {
                opts.balance_threshold =
                    parsed("--balance-threshold", value("--balance-threshold")?)?;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn builder(opts: &Options) -> TiresiasBuilder {
    let mut b = TiresiasBuilder::new()
        .timeunit_secs(opts.timeunit)
        .window_len(opts.window)
        .threshold(opts.theta)
        .season_length(opts.season)
        .sensitivity(opts.rt, opts.dt);
    if let Some(w) = opts.warmup {
        b = b.warmup_units(w);
    }
    b
}

fn build(opts: &Options) -> Result<tiresias::Tiresias, Box<dyn std::error::Error>> {
    Ok(builder(opts).build()?)
}

/// Either ingest engine behind the `detect` subcommand: the plain
/// detector by default, or the sharded engine when `--shards` is given
/// explicitly (any count, including 1, so outputs stay comparable
/// across `--shards` values).
enum Engine {
    Single(Box<tiresias::Tiresias>),
    /// The sharded engine plus its record batch buffer (records are
    /// owned per batch; the plain detector instead takes the borrowed
    /// zero-allocation `push_str` path record by record).
    Sharded(Box<tiresias::core::ShardedTiresias>, Vec<(String, u64)>),
}

impl Engine {
    /// Ingests one in-order record (the caller has already skipped
    /// stale timestamps, so batches never fail their order validation).
    fn push(&mut self, category: &str, t: u64, batch_cap: usize) -> Result<(), CoreError> {
        match self {
            Engine::Single(d) => d.push_str(category, t),
            Engine::Sharded(e, batch) => {
                batch.push((category.to_string(), t));
                if batch.len() >= batch_cap {
                    e.push_batch(batch)?;
                    batch.clear();
                }
                Ok(())
            }
        }
    }

    fn finish(&mut self, t: u64) -> Result<(), CoreError> {
        match self {
            Engine::Single(d) => d.advance_to(t),
            Engine::Sharded(e, batch) => {
                e.push_batch(batch)?;
                batch.clear();
                e.advance_to(t)
            }
        }
    }

    fn summary(&self) -> (u64, usize, &[tiresias::core::AnomalyEvent]) {
        match self {
            Engine::Single(d) => (d.units_processed(), d.heavy_hitters().len(), d.anomalies()),
            Engine::Sharded(e, _) => {
                (e.units_processed(), e.heavy_hitter_paths().len(), e.anomalies())
            }
        }
    }
}

fn cmd_detect(path: &str, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot read input file `{path}`: {e}"))?;
    let mut engine = match opts.shards {
        Some(shards) => {
            let b = builder(opts).shards(shards);
            Engine::Sharded(Box::new(b.build_sharded()?), Vec::with_capacity(opts.batch))
        }
        None => Engine::Single(Box::new(build(opts)?)),
    };
    let mut line_no = 0u64;
    let mut accepted = 0u64;
    let mut skipped = 0u64;
    let mut last_time = 0u64;
    // Stale records are skipped here (as push_str would reject them),
    // so a bad record never poisons a sharded batch — batches are
    // rejected atomically on out-of-order input.
    let mut open_unit = 0u64;
    for line in std::io::BufReader::new(file).lines() {
        let line = line?;
        line_no += 1;
        let line = line.trim();
        if line.is_empty()
            || line.starts_with('#')
            || (line_no == 1 && line.starts_with("timestamp"))
        {
            continue;
        }
        let Some((ts, category)) = line.split_once(',') else {
            eprintln!("line {line_no}: expected `timestamp,category`, skipping");
            skipped += 1;
            continue;
        };
        let Ok(t) = ts.trim().parse::<u64>() else {
            eprintln!("line {line_no}: bad timestamp `{ts}`, skipping");
            skipped += 1;
            continue;
        };
        if accepted > 0 && t / opts.timeunit < open_unit {
            eprintln!("line {line_no}: record timestamp {t} precedes the open timeunit, skipping");
            skipped += 1;
            continue;
        }
        open_unit = open_unit.max(t / opts.timeunit);
        accepted += 1;
        last_time = last_time.max(t);
        engine.push(category.trim(), t, opts.batch)?;
    }
    engine.finish(last_time + opts.timeunit)?;
    let (units, heavy, anomalies) = engine.summary();
    eprintln!(
        "processed {accepted} records ({skipped} skipped) over {units} timeunits \
         across {} shard(s); {heavy} heavy hitters live",
        opts.shards.unwrap_or(1).max(1),
    );
    print!("{}", events_to_csv(anomalies));
    Ok(())
}

/// Runs the streaming daemon until a graceful shutdown (`SHUTDOWN`
/// command, `SIGTERM` or `SIGINT`) completes its drain + checkpoint.
fn cmd_serve(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let builder = builder(opts).shards(opts.shards.unwrap_or(1));
    let mut config = ServerConfig::new(builder);
    config.addr = opts.addr.clone();
    config.grace = Duration::from_millis(opts.grace_ms);
    config.tick = Duration::from_millis(opts.tick_ms.max(1));
    config.flush_records = opts.batch.max(1);
    config.max_ahead_units = opts.max_ahead;
    config.retain_units = opts.retain_units;
    config.checkpoint = opts.checkpoint.clone().map(std::path::PathBuf::from);
    config.data_dir = opts.data_dir.clone().map(std::path::PathBuf::from);
    config.wal_sync = opts.wal_sync;
    config.handle_signals = true;
    config.metrics_addr = opts.metrics_addr.clone();
    config.slow_log = opts.slow_log.clone().map(std::path::PathBuf::from);
    config.slow_ms = opts.slow_ms;
    if opts.rebalance {
        config.rebalance =
            tiresias::core::RebalanceConfig::enabled().with_threshold(opts.balance_threshold);
    }
    if let Some(ms) = opts.idle_timeout_ms {
        // 0 disables idle reaping; anything else overrides the default.
        config.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
    }
    let resuming = config
        .checkpoint
        .clone()
        .or_else(|| config.data_dir.as_ref().map(|d| d.join("checkpoint.json")))
        .is_some_and(|p| p.exists());

    let server = Server::start(config)?;
    // Scripts wait for this line to learn the bound (possibly
    // ephemeral) port; flush so pipes see it immediately.
    println!("LISTENING {}", server.local_addr());
    if let Some(metrics) = server.metrics_addr() {
        println!("METRICS {metrics}");
    }
    use std::io::Write as _;
    std::io::stdout().flush()?;
    eprintln!(
        "tiresias-server: listening on {} ({} shard(s), grace {} ms{}); \
         send SHUTDOWN or SIGTERM to stop",
        server.local_addr(),
        opts.shards.unwrap_or(1).max(1),
        opts.grace_ms,
        if resuming { ", resumed from checkpoint" } else { "" },
    );
    server.join()?;
    eprintln!("tiresias-server: drained; bye");
    Ok(())
}

/// Arguments of the `query` subcommand.
#[derive(Debug)]
struct QueryArgs {
    addr: String,
    from: u64,
    to: u64,
    prefix: Option<String>,
    level: Option<usize>,
    limit: Option<usize>,
    retries: u32,
    retry_max_ms: u64,
}

fn parse_query_args(args: &[String]) -> Result<QueryArgs, String> {
    let [addr, from, to, flags @ ..] = args else {
        return Err("query needs <addr> <from_unit> <to_unit>".to_string());
    };
    if addr.starts_with("--") {
        return Err(format!("query needs an address argument, found flag `{addr}`"));
    }
    let from =
        from.parse::<u64>().map_err(|e| format!("invalid value `{from}` for from_unit: {e}"))?;
    let to = to.parse::<u64>().map_err(|e| format!("invalid value `{to}` for to_unit: {e}"))?;
    let mut query = QueryArgs {
        addr: addr.clone(),
        from,
        to,
        prefix: None,
        level: None,
        limit: None,
        retries: 3,
        retry_max_ms: 2_000,
    };
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--prefix" => query.prefix = Some(value("--prefix")?.clone()),
            "--level" => {
                let raw = value("--level")?;
                query.level = Some(
                    raw.parse().map_err(|e| format!("invalid value `{raw}` for --level: {e}"))?,
                );
            }
            "--limit" => {
                let raw = value("--limit")?;
                query.limit = Some(
                    raw.parse().map_err(|e| format!("invalid value `{raw}` for --limit: {e}"))?,
                );
            }
            "--retries" => {
                let raw = value("--retries")?;
                query.retries =
                    raw.parse().map_err(|e| format!("invalid value `{raw}` for --retries: {e}"))?;
            }
            "--retry-max-ms" => {
                let raw = value("--retry-max-ms")?;
                query.retry_max_ms = raw
                    .parse()
                    .map_err(|e| format!("invalid value `{raw}` for --retry-max-ms: {e}"))?;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(query)
}

/// A tiny xorshift64* jitter source for client backoff, seeded from
/// the wall clock + pid so concurrent clients desynchronize — after a
/// node restart, a fleet of retrying queriers must not thunder back in
/// lockstep.
struct RetryJitter(u64);

impl RetryJitter {
    fn new() -> RetryJitter {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.subsec_nanos() as u64);
        RetryJitter((nanos << 32 | u64::from(std::process::id())) | 1)
    }

    /// `base` scaled by a uniform factor in `[1.0, 2.0)`.
    fn spread(&mut self, base: Duration) -> Duration {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        let frac = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
        base.mul_f64(1.0 + frac)
    }
}

/// How one query attempt failed: retryable failures cover both a
/// refused connect *and* a mid-stream disconnect (the daemon restarted
/// while answering — its recovered store can answer the retry);
/// fatal ones are protocol-level refusals a retry cannot fix.
enum QueryFailure {
    Retryable(String),
    Fatal(Box<dyn std::error::Error>),
}

/// One full wire-protocol `QUERY` round trip: connect, ask, read every
/// `EVENT` frame to the terminal `OK` line.
fn query_attempt(
    args: &QueryArgs,
) -> Result<(Vec<tiresias::core::AnomalyEvent>, String), QueryFailure> {
    use std::io::Write as _;
    let stream = std::net::TcpStream::connect(&args.addr)
        .map_err(|e| QueryFailure::Retryable(format!("connect failed: {e}")))?;
    let mut request = format!("QUERY {} {}", args.from, args.to);
    if let Some(prefix) = &args.prefix {
        request.push_str(&format!(" PREFIX {prefix}"));
    }
    if let Some(level) = args.level {
        request.push_str(&format!(" LEVEL {level}"));
    }
    if let Some(limit) = args.limit {
        request.push_str(&format!(" LIMIT {limit}"));
    }
    let mut write_half =
        stream.try_clone().map_err(|e| QueryFailure::Retryable(format!("socket error: {e}")))?;
    writeln!(write_half, "{request}")
        .map_err(|e| QueryFailure::Retryable(format!("send failed: {e}")))?;
    let reader = std::io::BufReader::new(stream);
    let mut events = Vec::new();
    for line in reader.lines() {
        let line =
            line.map_err(|e| QueryFailure::Retryable(format!("read failed mid-stream: {e}")))?;
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("EVENT ") {
            events.push(event_from_frame(rest).ok_or_else(|| {
                QueryFailure::Fatal(format!("malformed EVENT frame from server: `{line}`").into())
            })?);
        } else if line.starts_with("OK ") {
            let _ = writeln!(write_half, "QUIT");
            return Ok((events, line.to_string()));
        } else if let Some(why) = line.strip_prefix("ERR ") {
            return Err(QueryFailure::Fatal(format!("server refused the query: {why}").into()));
        } else {
            return Err(QueryFailure::Fatal(
                format!("unexpected reply from server: `{line}`").into(),
            ));
        }
    }
    Err(QueryFailure::Retryable("server closed the connection before answering".to_string()))
}

/// Issues a wire-protocol `QUERY` against a running daemon and prints
/// the matching anomalies as CSV (the same schema and code path
/// `detect` uses — `events_to_csv`), with the reply summary on stderr.
///
/// Retryable failures — a refused connect or a **mid-stream**
/// disconnect — are retried up to `--retries` times with capped
/// exponential backoff plus jitter, so `query` rides out a daemon
/// restart (crash recovery included) without a retry storm. Each
/// attempt restarts the query from scratch: replies are only printed
/// once an attempt completes, so a retried query never emits partial
/// or duplicated rows.
fn cmd_query(args: &QueryArgs) -> Result<(), Box<dyn std::error::Error>> {
    let cap = Duration::from_millis(args.retry_max_ms.max(1));
    let mut delay = Duration::from_millis(100).min(cap);
    let mut jitter = RetryJitter::new();
    let mut attempt = 0u32;
    loop {
        match query_attempt(args) {
            Ok((events, summary)) => {
                print!("{}", tiresias::core::events_to_csv(&events));
                eprintln!("{} (units {}..={})", summary, args.from, args.to);
                return Ok(());
            }
            Err(QueryFailure::Fatal(e)) => return Err(e),
            Err(QueryFailure::Retryable(why)) if attempt < args.retries => {
                attempt += 1;
                let wait = jitter.spread(delay);
                eprintln!(
                    "tiresias: query to `{}` failed ({why}); retry {attempt}/{} in {} ms",
                    args.addr,
                    args.retries,
                    wait.as_millis(),
                );
                std::thread::sleep(wait);
                delay = delay.saturating_mul(2).min(cap);
            }
            Err(QueryFailure::Retryable(why)) => {
                return Err(format!(
                    "query to `{}` failed after {} attempt(s): {why}",
                    args.addr,
                    attempt + 1,
                )
                .into());
            }
        }
    }
}

/// Arguments of the `load` subcommand.
#[derive(Debug)]
struct LoadArgs {
    file: String,
    addr: String,
    ack: bool,
    batch: usize,
}

fn parse_load_args(args: &[String]) -> Result<LoadArgs, String> {
    let Some((file, flags)) = args.split_first() else {
        return Err("load needs a CSV/TSV file argument".to_string());
    };
    if file.starts_with("--") {
        return Err(format!("load needs a CSV/TSV file argument, found flag `{file}`"));
    }
    let mut load = LoadArgs {
        file: file.clone(),
        addr: "127.0.0.1:7171".to_string(),
        ack: false,
        batch: 8_192,
    };
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--ack" => load.ack = true,
            "--addr" => {
                load.addr = it.next().ok_or("--addr needs a host:port value")?.clone();
            }
            "--batch" => {
                let v = it.next().ok_or("--batch needs a value")?;
                load.batch = v.parse::<usize>().map_err(|_| format!("bad --batch value `{v}`"))?;
                if load.batch == 0 {
                    return Err("--batch must be at least 1".to_string());
                }
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(load)
}

/// Reads one trimmed reply line, treating EOF as a hard error (the
/// daemon never closes a healthy load session first).
fn load_read_line(
    replies: &mut std::io::BufReader<std::net::TcpStream>,
) -> Result<String, Box<dyn std::error::Error>> {
    let mut line = String::new();
    if replies.read_line(&mut line)? == 0 {
        return Err("daemon closed the connection".into());
    }
    Ok(line.trim_end().to_string())
}

/// Extracts `key<digits>` (e.g. `n=5`) from an ack tail like
/// `3 n=5 late=0 ahead=0`; 0 when the key is absent.
fn load_ack_field(rest: &str, key: &str) -> u64 {
    rest.split(' ').find_map(|tok| tok.strip_prefix(key)).and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// One live v2 load session: the encoder's dictionary is tied to the
/// connection, so both halves live and die together.
struct LoadSession {
    enc: v2::FrameEncoder,
    out: Vec<u8>,
    seq: u32,
    write: std::net::TcpStream,
    replies: std::io::BufReader<std::net::TcpStream>,
    ack: bool,
    frames: u64,
    accepted: u64,
    late: u64,
    ahead: u64,
}

impl LoadSession {
    /// Ships the staged records as one DATA frame; in `--ack` mode the
    /// daemon's per-frame ack is read synchronously and its admission
    /// counts accumulated.
    fn flush(&mut self) -> Result<(), Box<dyn std::error::Error>> {
        use std::io::Write as _;
        if self.enc.pending() == 0 {
            return Ok(());
        }
        let seq = self.seq;
        self.out.clear();
        self.enc.finish(seq, &mut self.out);
        self.seq = self.seq.wrapping_add(1);
        self.write.write_all(&self.out)?;
        self.frames += 1;
        if self.ack {
            let line = load_read_line(&mut self.replies)?;
            if let Some(rest) = line.strip_prefix("OK frame=") {
                self.accepted += load_ack_field(rest, "n=");
                self.late += load_ack_field(rest, "late=");
                self.ahead += load_ack_field(rest, "ahead=");
            } else if let Some(why) = line.strip_prefix("ERR ") {
                return Err(format!("daemon refused frame {seq}: {why}").into());
            } else {
                return Err(format!("unexpected reply to frame {seq}: `{line}`").into());
            }
        }
        Ok(())
    }

    /// Fences the stream with a PING (answered even under `NOACK`,
    /// after every prior frame was admitted), folding in any
    /// unsolicited drop reports queued ahead of the PONG, then drops
    /// back to text with END and says goodbye.
    fn finish(mut self) -> Result<LoadTotals, Box<dyn std::error::Error>> {
        use std::io::Write as _;
        let fence = self.seq;
        self.write.write_all(&v2::control_frame(v2::FrameKind::Ping, fence))?;
        let pong = format!("PONG frame={fence}");
        loop {
            let line = load_read_line(&mut self.replies)?;
            if line == pong {
                break;
            }
            if let Some(rest) = line.strip_prefix("OK frame=") {
                self.late += load_ack_field(rest, "late=");
                self.ahead += load_ack_field(rest, "ahead=");
            } else if let Some(why) = line.strip_prefix("ERR ") {
                return Err(format!("daemon reported an error mid-load: {why}").into());
            }
        }
        self.write.write_all(&v2::control_frame(v2::FrameKind::End, fence.wrapping_add(1)))?;
        let line = load_read_line(&mut self.replies)?;
        if line != "OK text" {
            return Err(format!("unexpected reply to END: `{line}`").into());
        }
        let _ = writeln!(self.write, "QUIT");
        Ok(LoadTotals {
            frames: self.frames,
            accepted: self.accepted,
            late: self.late,
            ahead: self.ahead,
            dict: self.enc.dict_len(),
        })
    }
}

/// What a finished load session admitted, for the final summary.
struct LoadTotals {
    frames: u64,
    accepted: u64,
    late: u64,
    ahead: u64,
    dict: usize,
}

/// Bulk-replays a CSV/TSV corpus of `timestamp_secs,category/path`
/// records into a running daemon over binary wire protocol v2: one
/// `NOACK` (unless `--ack`) + `HELLO v2` + `UPGRADE` negotiation, then
/// `--batch`-sized DATA frames through a per-connection label
/// dictionary, a PING fence, and a clean END.
fn cmd_load(args: &LoadArgs) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::Write as _;
    let file = std::fs::File::open(&args.file)
        .map_err(|e| format!("cannot read input file `{}`: {e}", args.file))?;
    let stream = std::net::TcpStream::connect(&args.addr)
        .map_err(|e| format!("connect to `{}` failed: {e}", args.addr))?;
    let mut write = stream.try_clone().map_err(|e| format!("socket error: {e}"))?;
    let mut replies = std::io::BufReader::new(stream);

    // Negotiate: bulk mode first (unless `--ack`), then the capability
    // probe and the binary upgrade.
    if !args.ack {
        writeln!(write, "NOACK")?;
        let line = load_read_line(&mut replies)?;
        if line != "OK" {
            return Err(format!("daemon refused NOACK: `{line}`").into());
        }
    }
    writeln!(write, "HELLO v2")?;
    let line = load_read_line(&mut replies)?;
    if line != "OK v2" {
        return Err(format!("daemon does not speak wire protocol v2: `{line}`").into());
    }
    writeln!(write, "UPGRADE")?;
    let line = load_read_line(&mut replies)?;
    if line != "OK upgraded" {
        return Err(format!("daemon refused UPGRADE: `{line}`").into());
    }

    let mut session = LoadSession {
        enc: v2::FrameEncoder::new(),
        out: Vec::with_capacity(64 * 1024),
        seq: 0,
        write,
        replies,
        ack: args.ack,
        frames: 0,
        accepted: 0,
        late: 0,
        ahead: 0,
    };
    let mut line_no = 0u64;
    let mut sent = 0u64;
    let mut skipped = 0u64;
    for line in std::io::BufReader::new(file).lines() {
        let line = line?;
        line_no += 1;
        let line = line.trim();
        if line.is_empty()
            || line.starts_with('#')
            || (line_no == 1 && line.starts_with("timestamp"))
        {
            continue;
        }
        // CSV or TSV: whichever delimiter appears first wins, so paths
        // containing the other character still parse.
        let Some((ts, category)) = line.find([',', '\t']).map(|i| (&line[..i], &line[i + 1..]))
        else {
            eprintln!("line {line_no}: expected `timestamp,category`, skipping");
            skipped += 1;
            continue;
        };
        let Ok(t) = ts.trim().parse::<u64>() else {
            eprintln!("line {line_no}: bad timestamp `{ts}`, skipping");
            skipped += 1;
            continue;
        };
        let category = category.trim();
        if category.is_empty() {
            eprintln!("line {line_no}: empty category path, skipping");
            skipped += 1;
            continue;
        }
        session.enc.add(category, t);
        sent += 1;
        if session.enc.pending() >= args.batch {
            session.flush()?;
        }
    }
    session.flush()?;
    let ack = args.ack;
    let LoadTotals { frames, accepted, late, ahead, dict } = session.finish()?;
    if ack {
        eprintln!(
            "loaded {sent} records in {frames} v2 frames ({dict} dictionary entries) \
             into {}: accepted={accepted} late={late} ahead={ahead}; {skipped} line(s) skipped",
            args.addr,
        );
    } else {
        eprintln!(
            "loaded {sent} records in {frames} v2 frames ({dict} dictionary entries) \
             into {} (noack): reported late={late} ahead={ahead}; {skipped} line(s) skipped",
            args.addr,
        );
    }
    Ok(())
}

/// Arguments of the `route` subcommand.
#[derive(Debug)]
struct RouteArgs {
    addr: String,
    nodes: Vec<String>,
    probe_ms: u64,
    node_timeout_ms: u64,
    backoff_max_ms: u64,
    buffer_records: usize,
    metrics_addr: Option<String>,
    slow_log: Option<String>,
    slow_ms: u64,
}

fn parse_route_args(args: &[String]) -> Result<RouteArgs, String> {
    let mut route = RouteArgs {
        addr: "127.0.0.1:7170".to_string(),
        nodes: Vec::new(),
        probe_ms: 1_000,
        node_timeout_ms: 2_000,
        backoff_max_ms: 5_000,
        buffer_records: 65_536,
        metrics_addr: None,
        slow_log: None,
        slow_ms: tiresias::server::DEFAULT_SLOW_MS,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("missing value for {name}"))
        };
        fn parsed<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            raw.parse().map_err(|e| format!("invalid value `{raw}` for {name}: {e}"))
        }
        match flag.as_str() {
            "--node" => route.nodes.push(value("--node")?.clone()),
            "--addr" => route.addr = value("--addr")?.clone(),
            "--probe-ms" => route.probe_ms = parsed("--probe-ms", value("--probe-ms")?)?,
            "--node-timeout-ms" => {
                route.node_timeout_ms = parsed("--node-timeout-ms", value("--node-timeout-ms")?)?;
            }
            "--backoff-max-ms" => {
                route.backoff_max_ms = parsed("--backoff-max-ms", value("--backoff-max-ms")?)?;
            }
            "--buffer" => route.buffer_records = parsed("--buffer", value("--buffer")?)?,
            "--metrics-addr" => route.metrics_addr = Some(value("--metrics-addr")?.clone()),
            "--slow-log" => route.slow_log = Some(value("--slow-log")?.clone()),
            "--slow-ms" => route.slow_ms = parsed("--slow-ms", value("--slow-ms")?)?,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if route.nodes.is_empty() {
        return Err("route needs at least one --node <host:port>".to_string());
    }
    Ok(route)
}

/// Runs the routing daemon until a graceful shutdown (`SHUTDOWN`
/// command, `SIGTERM` or `SIGINT`). The node list's order is the
/// routing table: restart the router with the same `--node` flags in
/// the same order to keep the label→node assignment.
fn cmd_route(args: &RouteArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = RouterConfig::new(args.nodes.clone());
    config.addr = args.addr.clone();
    config.probe_interval = Duration::from_millis(args.probe_ms.max(1));
    config.request_timeout = Duration::from_millis(args.node_timeout_ms.max(1));
    config.backoff_max = Duration::from_millis(args.backoff_max_ms.max(1));
    config.buffer_records = args.buffer_records;
    config.handle_signals = true;
    config.metrics_addr = args.metrics_addr.clone();
    config.slow_log = args.slow_log.clone().map(std::path::PathBuf::from);
    config.slow_ms = args.slow_ms;
    let router = Router::start(config)?;
    // Scripts wait for this line to learn the bound (possibly
    // ephemeral) port; flush so pipes see it immediately.
    println!("LISTENING {}", router.local_addr());
    if let Some(metrics) = router.metrics_addr() {
        println!("METRICS {metrics}");
    }
    use std::io::Write as _;
    std::io::stdout().flush()?;
    eprintln!(
        "tiresias-route: listening on {}, routing over {} node(s); \
         send SHUTDOWN or SIGTERM to stop",
        router.local_addr(),
        args.nodes.len(),
    );
    router.join();
    eprintln!("tiresias-route: bye");
    Ok(())
}

/// Arguments of the `top` subcommand.
#[derive(Debug)]
struct TopArgs {
    addr: String,
    interval_ms: u64,
    once: bool,
}

fn parse_top_args(args: &[String]) -> Result<TopArgs, String> {
    let [addr, flags @ ..] = args else {
        return Err("top needs <addr>".to_string());
    };
    if addr.starts_with("--") {
        return Err(format!("top needs an address argument, found flag `{addr}`"));
    }
    let mut top = TopArgs { addr: addr.clone(), interval_ms: 2_000, once: false };
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--interval-ms" => {
                let raw = it.next().ok_or("missing value for --interval-ms")?;
                top.interval_ms = raw
                    .parse()
                    .map_err(|e| format!("invalid value `{raw}` for --interval-ms: {e}"))?;
            }
            "--once" => top.once = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(top)
}

/// One `STATS JSON` round trip against a running daemon, parsed into
/// the vendored value model.
fn fetch_stats_json(addr: &str) -> Result<serde::Value, String> {
    use std::io::Write as _;
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    let mut write_half = stream.try_clone().map_err(|e| format!("socket error: {e}"))?;
    writeln!(write_half, "STATS JSON").map_err(|e| format!("send failed: {e}"))?;
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("read failed: {e}"))?;
    let line = line.trim_end();
    if line.is_empty() {
        return Err("daemon closed the connection without answering".to_string());
    }
    if let Some(why) = line.strip_prefix("ERR ") {
        return Err(format!("daemon refused STATS JSON: {why}"));
    }
    let _ = writeln!(write_half, "QUIT");
    serde_json::parse_value(line).map_err(|e| format!("malformed STATS JSON reply: {e}"))
}

/// Numeric payload of a metric value, whatever integer or float
/// variant the JSON parser produced.
fn value_num(v: &serde::Value) -> f64 {
    match v {
        serde::Value::U64(n) => *n as f64,
        serde::Value::I64(n) => *n as f64,
        serde::Value::F64(n) => *n,
        _ => f64::NAN,
    }
}

/// `name{k=v,…}` display form of one metric entry.
fn metric_label(entry: &serde::Value) -> String {
    let name = match entry.field("name") {
        Ok(serde::Value::Str(s)) => s.clone(),
        _ => "?".to_string(),
    };
    match entry.field("labels") {
        Ok(serde::Value::Map(labels)) if !labels.is_empty() => {
            let body: Vec<String> = labels
                .iter()
                .map(|(k, v)| match v {
                    serde::Value::Str(s) => format!("{k}={s}"),
                    other => format!("{k}={other:?}"),
                })
                .collect();
            format!("{name}{{{}}}", body.join(","))
        }
        _ => name,
    }
}

/// Value of the (unlabeled) counter `name`, when the snapshot has one.
fn counter_total(stats: &serde::Value, name: &str) -> Option<u64> {
    let Ok(serde::Value::Seq(counters)) = stats.field("counters") else {
        return None;
    };
    counters.iter().find_map(|c| match (c.field("name"), c.field("value")) {
        (Ok(serde::Value::Str(n)), Ok(v)) if n == name => Some(value_num(v) as u64),
        _ => None,
    })
}

/// One dashboard frame: header with the client-side ingest rate, then
/// aligned counter / gauge / histogram-quantile tables.
fn render_dashboard(addr: &str, stats: &serde::Value, rps: Option<f64>) -> String {
    let mut out = String::new();
    let rate = rps.map_or(String::new(), |r| format!(" — ingest {r:.0} rec/s"));
    out.push_str(&format!("tiresias top — {addr}{rate}\n\n"));
    for (title, key) in [("COUNTERS", "counters"), ("GAUGES", "gauges")] {
        let Ok(serde::Value::Seq(entries)) = stats.field(key) else { continue };
        if entries.is_empty() {
            continue;
        }
        let width =
            entries.iter().map(|e| metric_label(e).len()).max().unwrap_or(0).max(title.len());
        out.push_str(&format!("{title:<width$}  {:>14}\n", "VALUE"));
        for e in entries {
            let v = e.field("value").map(value_num).unwrap_or(f64::NAN);
            let rendered = if v.fract() == 0.0 { format!("{v:.0}") } else { format!("{v:.3}") };
            out.push_str(&format!("{:<width$}  {rendered:>14}\n", metric_label(e)));
        }
        out.push('\n');
    }
    if let Ok(serde::Value::Seq(hists)) = stats.field("histograms") {
        if !hists.is_empty() {
            let title = "HISTOGRAMS";
            let width =
                hists.iter().map(|e| metric_label(e).len()).max().unwrap_or(0).max(title.len());
            out.push_str(&format!(
                "{title:<width$}  {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                "COUNT", "MEAN_MS", "P50_MS", "P90_MS", "P99_MS", "P999_MS", "MAX_MS"
            ));
            for h in hists {
                let num = |k: &str| h.field(k).map(value_num).unwrap_or(f64::NAN);
                out.push_str(&format!(
                    "{:<width$}  {:>10.0} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
                    metric_label(h),
                    num("count"),
                    num("mean_ms"),
                    num("p50_ms"),
                    num("p90_ms"),
                    num("p99_ms"),
                    num("p999_ms"),
                    num("max_ms"),
                ));
            }
        }
    }
    out
}

/// The self-refreshing dashboard: polls `STATS JSON` on an interval,
/// repaints with plain ANSI clear-and-home (no TUI dependency), and
/// derives the ingest rate client-side from successive admitted
/// totals — the daemon only ever reports monotone counters. A poll
/// failure keeps retrying (daemons restart); `--once` prints a single
/// snapshot, making the dashboard scriptable.
fn cmd_top(args: &TopArgs) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::Write as _;
    let interval = Duration::from_millis(args.interval_ms.max(100));
    let mut last: Option<(std::time::Instant, u64)> = None;
    loop {
        let now = std::time::Instant::now();
        match fetch_stats_json(&args.addr) {
            Ok(stats) => {
                let admitted = counter_total(&stats, "tiresias_admitted_records_total");
                let rps = match (admitted, last) {
                    (Some(cur), Some((t0, prev))) if cur >= prev => {
                        let secs = now.duration_since(t0).as_secs_f64();
                        (secs > 0.0).then(|| (cur - prev) as f64 / secs)
                    }
                    _ => None,
                };
                if let Some(cur) = admitted {
                    last = Some((now, cur));
                }
                let frame = render_dashboard(&args.addr, &stats, rps);
                if args.once {
                    print!("{frame}");
                    std::io::stdout().flush()?;
                    return Ok(());
                }
                print!("\x1b[H\x1b[2J{frame}");
                std::io::stdout().flush()?;
            }
            Err(why) => {
                if args.once {
                    return Err(why.into());
                }
                println!("\x1b[H\x1b[2Jtiresias top — {} — {why} (retrying)", args.addr);
                std::io::stdout().flush()?;
            }
        }
        std::thread::sleep(interval);
    }
}

/// Parses one `EVENT key=value …` frame body back into an
/// [`tiresias::core::AnomalyEvent`], so the CSV rendering is the one
/// `events_to_csv` owns rather than a drifting copy. The node id is a
/// placeholder — CSV rows don't carry it.
fn event_from_frame(frame: &str) -> Option<tiresias::core::AnomalyEvent> {
    // The path comes last and may contain spaces (and `=`); split it
    // off first.
    let (front, path) = frame.split_once(" path=")?;
    let (mut unit, mut time, mut level, mut kind, mut actual, mut forecast) =
        (None, None, None, None, None, None);
    for pair in front.split_whitespace() {
        let (key, val) = pair.split_once('=')?;
        match key {
            "unit" => unit = val.parse::<u64>().ok(),
            "time" => time = val.parse::<u64>().ok(),
            "level" => level = val.parse::<usize>().ok(),
            "kind" => kind = val.parse::<tiresias::core::AnomalyKind>().ok(),
            "actual" => actual = val.parse::<f64>().ok(),
            "forecast" => forecast = val.parse::<f64>().ok(),
            _ => {}
        }
    }
    Some(tiresias::core::AnomalyEvent {
        node: tiresias::hierarchy::Tree::new("All").root(),
        path: path.parse().ok()?,
        level: level?,
        unit: unit?,
        time_secs: time?,
        actual: actual?,
        forecast: forecast?,
        kind: kind?,
    })
}

/// Dumps a WAL directory offline without repairing it: one line per
/// intact frame (batch sizes and close targets), optionally every
/// record, then the torn-tail report `wal-dump` exists to surface.
fn cmd_wal_dump(dir: &str, records: bool) -> Result<(), Box<dyn std::error::Error>> {
    use tiresias::core::WalEntry;
    let recovery = tiresias::core::read_wal(std::path::Path::new(dir))
        .map_err(|e| format!("cannot read WAL directory `{dir}`: {e}"))?;
    let mut batches = 0u64;
    let mut record_count = 0u64;
    let mut closes = 0u64;
    for entry in &recovery.entries {
        match entry {
            WalEntry::Batch { seq, records: recs } => {
                batches += 1;
                record_count += recs.len() as u64;
                println!("frame seq={seq} kind=batch records={}", recs.len());
                if records {
                    for (path, t) in recs {
                        println!("  record t={t} path={path}");
                    }
                }
            }
            WalEntry::Close { seq, target } => {
                closes += 1;
                println!("frame seq={seq} kind=close target={target}");
            }
        }
    }
    eprintln!(
        "{} frame(s): {batches} batch(es) holding {record_count} record(s), {closes} close(s)",
        recovery.entries.len(),
    );
    if recovery.repaired() {
        eprintln!(
            "torn tail: {} byte(s) after the last intact frame in {}; {} later file(s) \
             would be dropped on recovery",
            recovery.torn_bytes,
            recovery
                .corrupt_file
                .as_deref()
                .map_or_else(|| "-".to_string(), |p| p.display().to_string()),
            recovery.dropped_files,
        );
    } else {
        eprintln!("log is clean (no torn tail)");
    }
    Ok(())
}

fn cmd_demo(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let tree = ccd_location_spec(0.08).build()?;
    let target = tree.find(&["VHO-1", "IO-2"]).expect("exists at this scale");
    let mut workload = Workload::new(
        tree.clone(),
        WorkloadConfig::ccd(250.0).with_top_level_skew(opts.zipf_s),
        42,
    );
    workload.inject(InjectedAnomaly::new(target, 140, 6, 500.0));

    let mut opts = opts.clone();
    opts.warmup = opts.warmup.or(Some(96));
    opts.window = opts.window.min(192);
    let mut detector = build(&opts)?;
    detector.adopt_tree(tree.clone())?;
    for unit in 0..192u64 {
        detector.ingest_unit(&workload.generate_unit(unit))?;
    }

    eprintln!("demo: injected an outage under {} at units 140..146", tree.path_of(target));
    print!("{}", events_to_csv(detector.anomalies()));

    // Annotated hierarchy: anomaly counts per node, two levels deep.
    let store = detector.store();
    eprintln!("\nhierarchy (anomaly counts, two levels):");
    let rendering = render_ascii(&tree, tree.root(), 2, |n| {
        let count = store.under(&tree.path_of(n)).count();
        (count > 0).then(|| format!("{count} anomalies"))
    });
    eprint!("{rendering}");
    Ok(())
}

const USAGE: &str = "usage: tiresias <subcommand> [options]

subcommands:
  detect <file.csv>   stream a CSV of `timestamp_secs,category/path`
                      records and print detected anomalies as CSV
  serve               run the live TCP streaming-ingestion daemon
  route               run the fault-tolerant routing daemon over N
                      serve nodes (consistent-hash by top-level label)
  load <file.csv>     bulk-replay a CSV/TSV corpus of
                      `timestamp_secs,category/path` records into a
                      running daemon over binary wire protocol v2
  query <addr> <from> <to>
                      query a running daemon's retained report store
                      and print the matching anomalies as CSV
  top <addr>          self-refreshing terminal dashboard over a running
                      daemon's STATS JSON metrics
  wal-dump <dir>      print a write-ahead log's intact frames and its
                      torn-tail report, without repairing anything
  demo                run a self-contained synthetic demo

detector options (detect/serve/demo):
  --timeunit s  --window n  --theta w  --season n  --rt x  --dt x
  --warmup n  --shards n  --batch n
  --zipf-s x (demo: Zipf skew over top-level labels, 0 = uniform)

serve options:
  --addr host:port  --grace-ms n  --tick-ms n  --max-ahead units
  --retain-units n  --checkpoint file  --data-dir dir
  --wal-sync every|interval[:ms]|none  --idle-timeout-ms ms (0 = off)
  --metrics-addr host:port  --slow-log file  --slow-ms n
  --rebalance (skew-adaptive shard rebalancing at epoch barriers)
  --balance-threshold x (rebalance until worst/mean load <= x, default 1.15)

route options:
  --node host:port (repeat per downstream, order = routing table)
  --addr host:port  --probe-ms n  --node-timeout-ms n
  --backoff-max-ms n  --buffer records
  --metrics-addr host:port  --slow-log file  --slow-ms n

load options:
  --addr host:port    daemon to stream into (default 127.0.0.1:7171)
  --ack               per-frame acks (default: NOACK bulk mode)
  --batch n           records per v2 DATA frame (default 8192)

query options:
  --prefix path  --level n  --limit k  --retries n  --retry-max-ms ms

top options:
  --interval-ms n     poll cadence (default 2000)
  --once              print one snapshot and exit

wal-dump options:
  --records           also print every record inside each batch frame";

/// Exit status 2 (like conventional CLIs) for usage errors, printing
/// the usage to stderr; 1 for runtime failures.
fn usage_error(why: &str) -> i32 {
    eprintln!("error: {why}\n\n{USAGE}");
    2
}

fn run_error(e: Box<dyn std::error::Error>) -> i32 {
    eprintln!("error: {e}");
    1
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.split_first() {
        Some((cmd, rest)) if cmd == "detect" => match rest.split_first() {
            Some((path, _)) if path.starts_with("--") => {
                usage_error(&format!("detect needs a CSV file argument, found flag `{path}`"))
            }
            Some((path, flags)) => match parse_options(flags, false) {
                Ok(opts) => cmd_detect(path, &opts).map_or_else(run_error, |()| 0),
                Err(e) => usage_error(&e),
            },
            None => usage_error("detect needs a CSV file argument"),
        },
        Some((cmd, rest)) if cmd == "serve" => match parse_options(rest, true) {
            Ok(opts) => cmd_serve(&opts).map_or_else(run_error, |()| 0),
            Err(e) => usage_error(&e),
        },
        Some((cmd, rest)) if cmd == "route" => match parse_route_args(rest) {
            Ok(args) => cmd_route(&args).map_or_else(run_error, |()| 0),
            Err(e) => usage_error(&e),
        },
        Some((cmd, rest)) if cmd == "load" => match parse_load_args(rest) {
            Ok(args) => cmd_load(&args).map_or_else(run_error, |()| 0),
            Err(e) => usage_error(&e),
        },
        Some((cmd, rest)) if cmd == "query" => match parse_query_args(rest) {
            Ok(args) => cmd_query(&args).map_or_else(run_error, |()| 0),
            Err(e) => usage_error(&e),
        },
        Some((cmd, rest)) if cmd == "top" => match parse_top_args(rest) {
            Ok(args) => cmd_top(&args).map_or_else(run_error, |()| 0),
            Err(e) => usage_error(&e),
        },
        Some((cmd, rest)) if cmd == "wal-dump" => match rest.split_first() {
            Some((dir, flags)) if !dir.starts_with("--") => {
                match flags.iter().find(|f| *f != "--records") {
                    Some(other) => usage_error(&format!("unknown option {other}")),
                    None => {
                        let records = flags.iter().any(|f| f == "--records");
                        cmd_wal_dump(dir, records).map_or_else(run_error, |()| 0)
                    }
                }
            }
            _ => usage_error("wal-dump needs a WAL directory argument"),
        },
        Some((cmd, rest)) if cmd == "demo" => match parse_options(rest, false) {
            Ok(opts) => cmd_demo(&opts).map_or_else(run_error, |()| 0),
            Err(e) => usage_error(&e),
        },
        Some((cmd, _)) => usage_error(&format!("unknown subcommand `{cmd}`")),
        None => usage_error("a subcommand is required"),
    };
    std::process::exit(code);
}
