//! Versioned checkpoint envelope for detector state.
//!
//! Serialising a [`Tiresias`] or [`ShardedTiresias`] with serde yields
//! a bare state object whose schema silently drifts as the structs
//! evolve — PR 2 added the builder fields `shards` and
//! `root_isolation`, and the vendored mini-serde has no
//! `#[serde(default)]`, so pre-PR-2 checkpoints stopped loading until
//! someone edited them by hand. This module wraps checkpoints in an
//! explicit envelope instead:
//!
//! ```json
//! {"version": 4, "kind": "sharded", "engine": { ...detector state... }}
//! ```
//!
//! * `version` is [`CHECKPOINT_VERSION`]; loaders reject versions from
//!   the future with a clear error instead of a field-by-field puzzle.
//! * `kind` is `"single"` ([`Tiresias`]) or `"sharded"`
//!   ([`ShardedTiresias`]), so one load entry point restores either
//!   engine.
//! * `engine` is the detector's ordinary serde state.
//!
//! [`load_checkpoint`] also accepts **v1 checkpoints** — bare engine
//! JSON with no envelope, as written before this module existed — and
//! migrates them on load: every builder object missing the PR 2 fields
//! gets `shards = 1` and `root_isolation = false`, which is exactly the
//! configuration every pre-sharding detector ran with. **v3 and older
//! envelopes** predate the router's pinned-override table (the
//! skew-adaptive rebalancer's learned placement, the v4 addition);
//! their router objects are migrated on load with an empty table —
//! exactly the static hash routing those checkpoints ran with.

use serde::Value;

use crate::detector::Tiresias;
use crate::error::CoreError;
use crate::sharded::ShardedTiresias;

/// Current checkpoint envelope version. v4 added the
/// [`crate::ShardRouter`]'s pinned-override table (`overrides`), the
/// skew-adaptive rebalancer's learned placement — v3 routers migrate on
/// load with an empty table; v3 moved the merged report store to the
/// indexed, retention-aware [`crate::ReportStore`] schema (which still
/// loads the v2 event-list shape transparently); v2 introduced the
/// envelope itself.
pub const CHECKPOINT_VERSION: u64 = 4;

/// A checkpointed engine of either flavour, as restored by
/// [`load_checkpoint`].
#[derive(Debug, Clone)]
pub enum CheckpointEngine {
    /// A single-instance [`Tiresias`] detector.
    Single(Box<Tiresias>),
    /// A [`ShardedTiresias`] multi-core engine.
    Sharded(Box<ShardedTiresias>),
}

impl From<Tiresias> for CheckpointEngine {
    fn from(t: Tiresias) -> Self {
        CheckpointEngine::Single(Box::new(t))
    }
}

impl From<ShardedTiresias> for CheckpointEngine {
    fn from(s: ShardedTiresias) -> Self {
        CheckpointEngine::Sharded(Box::new(s))
    }
}

/// Serialises an engine into the versioned checkpoint envelope
/// (compact JSON).
///
/// # Example
///
/// ```
/// use tiresias_core::{load_checkpoint, save_checkpoint, CheckpointEngine, TiresiasBuilder};
///
/// let detector = TiresiasBuilder::new().season_length(4).window_len(16).build()?;
/// let json = save_checkpoint(&CheckpointEngine::from(detector));
/// assert!(json.starts_with("{\"version\":4,"));
/// assert!(matches!(load_checkpoint(&json)?, CheckpointEngine::Single(_)));
/// # Ok::<(), tiresias_core::CoreError>(())
/// ```
pub fn save_checkpoint(engine: &CheckpointEngine) -> String {
    match engine {
        CheckpointEngine::Single(t) => save_single_checkpoint(t),
        CheckpointEngine::Sharded(s) => save_sharded_checkpoint(s),
    }
}

/// [`save_checkpoint`] for a borrowed single-instance detector — no
/// clone, so a serving layer can checkpoint in place.
pub fn save_single_checkpoint(detector: &Tiresias) -> String {
    envelope("single", &serde_json::to_string(detector).expect("detector state serialises"))
}

/// [`save_checkpoint`] for a borrowed sharded engine — no clone, so a
/// serving layer can checkpoint in place.
pub fn save_sharded_checkpoint(engine: &ShardedTiresias) -> String {
    envelope("sharded", &serde_json::to_string(engine).expect("engine state serialises"))
}

/// [`save_sharded_checkpoint`] with a WAL watermark recorded in the
/// envelope: `wal_seq` is the last WAL sequence whose effects this
/// checkpoint already contains, so recovery replays only entries
/// **after** it. Loaders without WAL support ignore the extra field
/// (the envelope is read key-by-key), so this needs no version bump.
pub fn save_sharded_checkpoint_with_wal(engine: &ShardedTiresias, wal_seq: u64) -> String {
    let engine_json = serde_json::to_string(engine).expect("engine state serialises");
    format!(
        "{{\"version\":{CHECKPOINT_VERSION},\"kind\":\"sharded\",\"wal_seq\":{wal_seq},\
         \"engine\":{engine_json}}}"
    )
}

/// [`load_checkpoint`] plus the durability metadata: the restored
/// engine and the envelope's `wal_seq` watermark (`None` for
/// checkpoints written without a WAL).
///
/// # Errors
///
/// Exactly as [`load_checkpoint`], plus a malformed `wal_seq` field.
pub fn load_checkpoint_meta(json: &str) -> Result<(CheckpointEngine, Option<u64>), CoreError> {
    let value = serde_json::parse_value(json)
        .map_err(|e| CoreError::Checkpoint(format!("malformed checkpoint JSON: {e}")))?;
    let wal_seq = match map_get(&value, "wal_seq") {
        None => None,
        Some(Value::U64(v)) => Some(*v),
        Some(Value::I64(v)) if *v >= 0 => Some(*v as u64),
        Some(other) => {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint `wal_seq` must be a non-negative integer, found {}",
                other.kind()
            )));
        }
    };
    Ok((load_checkpoint(json)?, wal_seq))
}

fn envelope(kind: &str, engine_json: &str) -> String {
    // The envelope is spliced as text: the vendored mini-serde `Value`
    // has no `Serialize` impl of its own, and the engine body is
    // already valid compact JSON.
    format!("{{\"version\":{CHECKPOINT_VERSION},\"kind\":\"{kind}\",\"engine\":{engine_json}}}")
}

/// Restores an engine from checkpoint JSON — the current versioned
/// envelope or a legacy v1 bare-state checkpoint (see the
/// [module docs](self) for the migration rules).
///
/// # Errors
///
/// Returns [`CoreError::Checkpoint`] on malformed JSON, an unsupported
/// (future) version, an unknown `kind`, or engine state that fails to
/// deserialise after migration.
pub fn load_checkpoint(json: &str) -> Result<CheckpointEngine, CoreError> {
    let value = serde_json::parse_value(json)
        .map_err(|e| CoreError::Checkpoint(format!("malformed checkpoint JSON: {e}")))?;
    match map_get(&value, "version") {
        Some(version) => {
            let version = match version {
                Value::U64(v) => *v,
                Value::I64(v) if *v >= 0 => *v as u64,
                other => {
                    return Err(CoreError::Checkpoint(format!(
                        "checkpoint version must be an integer, found {}",
                        other.kind()
                    )));
                }
            };
            if version > CHECKPOINT_VERSION {
                return Err(CoreError::Checkpoint(format!(
                    "checkpoint version {version} is newer than the supported \
                     version {CHECKPOINT_VERSION}; upgrade tiresias to load it"
                )));
            }
            let kind = match map_get(&value, "kind") {
                Some(Value::Str(kind)) => kind.clone(),
                Some(other) => {
                    return Err(CoreError::Checkpoint(format!(
                        "checkpoint `kind` must be a string, found {}",
                        other.kind()
                    )));
                }
                None => {
                    return Err(CoreError::Checkpoint(
                        "checkpoint envelope is missing the `kind` field".into(),
                    ));
                }
            };
            let mut value = value;
            if version < 4 {
                // Pre-v4 routers carry no pinned-override table; an
                // empty one is exactly the static routing they ran.
                migrate_v3_routers(&mut value);
            }
            let engine = map_get(&value, "engine").ok_or_else(|| {
                CoreError::Checkpoint("checkpoint envelope is missing the `engine` field".into())
            })?;
            engine_from_value(&kind, engine)
        }
        // No `version` field: a v1 checkpoint — bare engine state from
        // before the envelope existed. Migrate the breaking builder
        // fields in place, then load it under its inferred kind.
        None => {
            let mut value = value;
            migrate_v1_builders(&mut value);
            migrate_v3_routers(&mut value);
            // Only `ShardedTiresias` carries a router; everything a v1
            // deployment could have written is a single detector, but
            // infer the kind structurally so a hand-rolled envelope-less
            // sharded state loads too.
            let kind = if map_get(&value, "router").is_some() { "sharded" } else { "single" };
            engine_from_value(kind, &value)
        }
    }
}

/// Restores the concrete engine from its serde state value.
fn engine_from_value(kind: &str, engine: &Value) -> Result<CheckpointEngine, CoreError> {
    use serde::Deserialize;
    match kind {
        "single" => Tiresias::from_value(engine)
            .map(|t| CheckpointEngine::Single(Box::new(t)))
            .map_err(|e| CoreError::Checkpoint(format!("invalid single-detector state: {e}"))),
        "sharded" => ShardedTiresias::from_value(engine)
            .map(|s| CheckpointEngine::Sharded(Box::new(s)))
            .map_err(|e| CoreError::Checkpoint(format!("invalid sharded-engine state: {e}"))),
        other => Err(CoreError::Checkpoint(format!(
            "unknown checkpoint kind `{other}` (expected `single` or `sharded`)"
        ))),
    }
}

/// Looks up a key in a map value (`None` for non-maps or absent keys).
fn map_get<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    match value {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Walks the whole state tree and patches every builder object —
/// recognised by its `timeunit_secs` + `window_len` signature — that
/// predates PR 2: missing `shards` defaults to 1, missing
/// `root_isolation` to `false`. Recursing (rather than patching one
/// known path) also migrates the per-shard builders inside a sharded
/// state.
fn migrate_v1_builders(value: &mut Value) {
    match value {
        Value::Map(entries) => {
            let is_builder = entries.iter().any(|(k, _)| k == "timeunit_secs")
                && entries.iter().any(|(k, _)| k == "window_len");
            if is_builder {
                if !entries.iter().any(|(k, _)| k == "shards") {
                    entries.push(("shards".to_string(), Value::U64(1)));
                }
                if !entries.iter().any(|(k, _)| k == "root_isolation") {
                    entries.push(("root_isolation".to_string(), Value::Bool(false)));
                }
            }
            for (_, v) in entries {
                migrate_v1_builders(v);
            }
        }
        Value::Seq(items) => {
            for v in items {
                migrate_v1_builders(v);
            }
        }
        _ => {}
    }
}

/// Patches every `router` object that predates the v4 pinned-override
/// table with an empty one. Keyed on the field name (not the shape):
/// only [`crate::ShardRouter`] serialises under `router`, and builder
/// objects — which also carry a `shards` key — are never reached
/// through it.
fn migrate_v3_routers(value: &mut Value) {
    if let Value::Map(entries) = value {
        for (key, v) in entries.iter_mut() {
            if key == "router" {
                if let Value::Map(router) = v {
                    let has = |k: &str| router.iter().any(|(rk, _)| rk == k);
                    if has("shards") && !has("overrides") {
                        router.push(("overrides".to_string(), Value::Seq(Vec::new())));
                    }
                }
            }
            migrate_v3_routers(v);
        }
    } else if let Value::Seq(items) = value {
        for v in items {
            migrate_v3_routers(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TiresiasBuilder;

    fn builder() -> TiresiasBuilder {
        TiresiasBuilder::new()
            .timeunit_secs(900)
            .window_len(16)
            .threshold(5.0)
            .season_length(4)
            .sensitivity(2.0, 5.0)
            .warmup_units(4)
    }

    fn fed_detector() -> Tiresias {
        let mut d = builder().build().unwrap();
        for u in 0..6u64 {
            for i in 0..10 {
                d.push_str("TV/NoService", u * 900 + i).unwrap();
            }
        }
        d
    }

    /// Serialises a current detector, then strips the PR 2 builder
    /// fields to reconstruct what a v1 checkpoint looked like.
    fn v1_checkpoint_json(d: &Tiresias) -> String {
        let json = serde_json::to_string(d).unwrap();
        let stripped = json.replace(",\"shards\":1,\"root_isolation\":false", "");
        assert_ne!(stripped, json, "fields were present to strip");
        stripped
    }

    #[test]
    fn envelope_round_trips_single() {
        let d = fed_detector();
        let json = save_checkpoint(&CheckpointEngine::from(d.clone()));
        assert!(json.contains("\"version\":4"));
        assert!(json.contains("\"kind\":\"single\""));
        let CheckpointEngine::Single(restored) = load_checkpoint(&json).unwrap() else {
            panic!("expected a single detector");
        };
        assert_eq!(restored.units_processed(), d.units_processed());
        assert_eq!(restored.anomalies(), d.anomalies());
    }

    #[test]
    fn envelope_round_trips_sharded() {
        let mut engine = builder().shards(3).build_sharded().unwrap();
        let batch: Vec<(String, u64)> =
            (0..5u64).flat_map(|u| (0..8).map(move |i| ("a/x".to_string(), u * 900 + i))).collect();
        engine.push_batch(&batch).unwrap();
        let json = save_checkpoint(&CheckpointEngine::from(engine.clone()));
        assert!(json.contains("\"kind\":\"sharded\""));
        let CheckpointEngine::Sharded(restored) = load_checkpoint(&json).unwrap() else {
            panic!("expected a sharded engine");
        };
        assert_eq!(restored.units_processed(), engine.units_processed());
        assert_eq!(restored.shard_count(), 3);
    }

    #[test]
    fn v1_checkpoint_migrates_on_load() {
        let d = fed_detector();
        let v1 = v1_checkpoint_json(&d);
        let CheckpointEngine::Single(mut restored) = load_checkpoint(&v1).unwrap() else {
            panic!("expected a single detector");
        };
        // The migrated detector continues the stream identically.
        let mut original = d;
        for u in 6..10u64 {
            let count = if u == 8 { 100 } else { 10 };
            for i in 0..count {
                original.push_str("TV/NoService", u * 900 + i).unwrap();
                restored.push_str("TV/NoService", u * 900 + i).unwrap();
            }
        }
        original.advance_to(10 * 900).unwrap();
        restored.advance_to(10 * 900).unwrap();
        assert_eq!(original.anomalies(), restored.anomalies());
        assert!(!original.anomalies().is_empty(), "the burst is detected");
    }

    #[test]
    fn v1_migration_defaults_are_recorded() {
        let d = builder().build().unwrap();
        let v1 = v1_checkpoint_json(&d);
        let CheckpointEngine::Single(restored) = load_checkpoint(&v1).unwrap() else {
            panic!("expected a single detector");
        };
        // Re-saving a migrated checkpoint produces a v2 envelope with
        // the defaulted fields present.
        let resaved = save_checkpoint(&CheckpointEngine::Single(restored));
        assert!(resaved.contains("\"shards\":1"));
        assert!(resaved.contains("\"root_isolation\":false"));
    }

    #[test]
    fn wal_watermark_round_trips_and_stays_optional() {
        let engine = builder().shards(2).build_sharded().unwrap();
        let json = save_sharded_checkpoint_with_wal(&engine, 42);
        assert!(json.contains("\"wal_seq\":42"));
        // Plain load ignores the extra field entirely.
        assert!(matches!(load_checkpoint(&json).unwrap(), CheckpointEngine::Sharded(_)));
        let (restored, wal_seq) = load_checkpoint_meta(&json).unwrap();
        assert!(matches!(restored, CheckpointEngine::Sharded(_)));
        assert_eq!(wal_seq, Some(42));
        // A WAL-less checkpoint reports no watermark.
        let plain = save_sharded_checkpoint(&engine);
        let (_, wal_seq) = load_checkpoint_meta(&plain).unwrap();
        assert_eq!(wal_seq, None);
    }

    /// One barrier-aligned sharded engine with a non-trivial pinned
    /// override table, plus the batch that fed it.
    fn pinned_engine() -> (ShardedTiresias, Vec<(String, u64)>) {
        let mut engine = builder().shards(4).build_sharded().unwrap();
        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead"];
        let batch: Vec<(String, u64)> = (0..6u64)
            .flat_map(|u| {
                paths.iter().flat_map(move |p| (0..10).map(move |i| (p.to_string(), u * 900 + i)))
            })
            .collect();
        engine.push_batch(&batch).unwrap();
        for (i, label) in ["TV", "Net", "Phone"].iter().enumerate() {
            engine.pin_label(label, i);
        }
        engine.advance_to(6 * 900).unwrap();
        assert_eq!(engine.router().pinned_count(), 3);
        (engine, batch)
    }

    #[test]
    fn v4_envelope_round_trips_the_pinned_override_table() {
        let (engine, _) = pinned_engine();
        let json = save_checkpoint(&CheckpointEngine::from(engine.clone()));
        assert!(json.contains("\"version\":4"));
        assert!(json.contains("\"overrides\""));
        let CheckpointEngine::Sharded(restored) = load_checkpoint(&json).unwrap() else {
            panic!("expected a sharded engine");
        };
        assert_eq!(restored.router(), engine.router(), "learned placement survives");
        for label in ["TV/x", "Net/x", "Phone/x", "Unpinned/x"] {
            assert_eq!(restored.router().route(label), engine.router().route(label));
        }
    }

    #[test]
    fn v3_checkpoint_router_migrates_to_an_empty_override_table() {
        // Reconstruct a v3 checkpoint from a current one: the envelope
        // version rolls back and the router loses its (empty) override
        // table — the exact shape v3 deployments wrote.
        let mut engine = builder().shards(3).build_sharded().unwrap();
        let batch: Vec<(String, u64)> =
            (0..5u64).flat_map(|u| (0..8).map(move |i| ("a/x".to_string(), u * 900 + i))).collect();
        engine.push_batch(&batch).unwrap();
        let json = save_checkpoint(&CheckpointEngine::from(engine.clone()));
        let v3 = json.replace("\"version\":4", "\"version\":3").replace(",\"overrides\":[]", "");
        assert_ne!(v3, json, "both replacements took effect");
        let CheckpointEngine::Sharded(mut restored) = load_checkpoint(&v3).unwrap() else {
            panic!("expected a sharded engine");
        };
        assert_eq!(restored.router().pinned_count(), 0, "static hash routing, as before");
        // The migrated engine continues the stream identically — and
        // can start pinning from here.
        let mut original = engine;
        let more: Vec<(String, u64)> = (5..9u64)
            .flat_map(|u| {
                let count = if u == 7 { 90 } else { 8 };
                (0..count).map(move |i| ("a/x".to_string(), u * 900 + i))
            })
            .collect();
        original.push_batch(&more).unwrap();
        restored.pin_label("a", 2);
        restored.push_batch(&more).unwrap();
        original.advance_to(9 * 900).unwrap();
        restored.advance_to(9 * 900).unwrap();
        assert_eq!(restored.router().route("a/x"), 2);
        assert_eq!(original.anomalies(), restored.anomalies());
        assert!(!original.anomalies().is_empty(), "the burst is detected");
    }

    #[test]
    fn future_versions_are_rejected_with_a_clear_error() {
        let err =
            load_checkpoint("{\"version\":99,\"kind\":\"single\",\"engine\":{}}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("version 99"), "{msg}");
        assert!(msg.contains("upgrade"), "{msg}");
    }

    #[test]
    fn malformed_checkpoints_error_cleanly() {
        assert!(matches!(load_checkpoint("not json"), Err(CoreError::Checkpoint(_))));
        assert!(matches!(load_checkpoint("{\"version\":2}"), Err(CoreError::Checkpoint(_))));
        assert!(matches!(
            load_checkpoint("{\"version\":2,\"kind\":\"weird\",\"engine\":{}}"),
            Err(CoreError::Checkpoint(_))
        ));
        assert!(matches!(
            load_checkpoint("{\"version\":2,\"kind\":\"single\",\"engine\":{\"nope\":1}}"),
            Err(CoreError::Checkpoint(_))
        ));
    }
}
