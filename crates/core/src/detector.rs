use std::time::Instant;

use tiresias_hhh::{
    Ada, AdaSlice, HhhConfig, MemoryReport, ModelSpec, Sta, StaSlice, StageTimings,
};
use tiresias_hierarchy::{MovedNode, NodeId, Tree};
use tiresias_spectral::SeasonalityAnalysis;
use tiresias_timeseries::SeasonalFactor;

use crate::anomaly::{is_anomalous, is_drop, AnomalyEvent, AnomalyKind};
use crate::builder::{Algorithm, TiresiasBuilder};
use crate::counts::DenseCounts;
use crate::error::CoreError;
use crate::record::Record;
use crate::store::ReportStore;

/// The running heavy hitter tracker.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
enum Tracker {
    Ada(Box<Ada>),
    Sta(Box<Sta>),
}

/// Detector lifecycle: buffering warm-up history, then running.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
enum State {
    Warmup { units: Vec<Vec<f64>> },
    Running { tracker: Tracker },
}

/// Tracker-phase half of a [`SubtreeState`]: either the moved nodes'
/// columns of every buffered warm-up unit, or a running tracker's
/// per-node slice.
#[derive(Debug)]
enum TrackerSlice {
    /// One column vector per buffered warm-up unit, aligned with the
    /// moved-node list.
    Warmup(Vec<Vec<f64>>),
    Ada(Box<AdaSlice>),
    Sta(Box<StaSlice>),
}

/// Detached detector state of a set of top-level subtrees, produced by
/// [`Tiresias::extract_subtrees`] and consumed by
/// [`Tiresias::adopt_subtrees`] — the unit of work the skew-adaptive
/// rebalancer moves between shards at an epoch barrier.
///
/// Under root isolation a depth ≥ 1 subtree's tracker state is a pure
/// function of its own records, so transplanting this state into
/// another detector at the same point of the global timeline leaves the
/// merged output stream byte-identical to having routed the subtree's
/// records there from the start.
#[derive(Debug)]
pub struct SubtreeState {
    /// The moved arena nodes (subtree roots plus descendants).
    moved: Vec<MovedNode>,
    tracker: TrackerSlice,
    /// Pending open-unit counts of the moved nodes, as
    /// (moved-slot, count) pairs.
    open: Vec<(u32, f64)>,
    open_unit: Option<u64>,
    units_processed: u64,
}

impl SubtreeState {
    /// `true` when nothing matched the extraction selector — adopting
    /// an empty state is a no-op.
    pub fn is_empty(&self) -> bool {
        self.moved.is_empty()
    }

    /// Labels of the moved top-level subtrees.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.moved.iter().filter(|m| m.parent.is_none()).map(|m| m.label.as_str())
    }
}

/// The Tiresias online anomaly detector (Fig. 3 of the paper).
///
/// Feed timestamped [`Record`]s with [`Tiresias::push`], `/`-separated
/// borrowed paths with the allocation-free [`Tiresias::push_str`], or
/// whole timeunits with [`Tiresias::ingest_unit`]; closed timeunits
/// flow through heavy hitter tracking, seasonal forecasting and the
/// Definition-4 decision rule, and detected [`AnomalyEvent`]s accumulate
/// in the queryable [`ReportStore`].
///
/// See the crate-level example for end-to-end usage.
///
/// The whole detector state is serialisable (serde): checkpoint it with
/// any serde format and resume the stream after a restart — warm-up
/// buffers, tracker state, forecaster models and the anomaly store all
/// round-trip.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Tiresias {
    builder: TiresiasBuilder,
    tree: Tree,
    state: State,
    /// Index of the currently open timeunit (`None` until the first
    /// record or advance).
    open_unit: Option<u64>,
    /// Dense per-node counts of the open timeunit; doubles as the
    /// reusable dense buffer of the close sweep, so steady-state
    /// ingestion allocates nothing.
    open_counts: DenseCounts,
    store: ReportStore,
    warmup_target: usize,
    resolved_model: ModelSpec,
    units_processed: u64,
    reading: std::time::Duration,
    detecting: std::time::Duration,
}

/// Validates that a batch is in timeunit order relative to `open` and
/// internally, returning the batch's final watermark unit (`open` for
/// an empty batch). Shared by [`Tiresias::push_batch`] and
/// [`crate::ShardedTiresias::push_batch`], whose byte-identical-results
/// contract requires one definition of "in order".
pub(crate) fn validate_batch_order<S>(
    open: Option<u64>,
    timeunit_secs: u64,
    records: &[(S, u64)],
) -> Result<Option<u64>, CoreError> {
    let mut watermark = open;
    for &(_, t) in records {
        let unit = t / timeunit_secs;
        match watermark {
            Some(open) if unit < open => {
                return Err(CoreError::OutOfOrder {
                    timestamp: t,
                    open_unit_start: open * timeunit_secs,
                });
            }
            Some(open) if unit > open => watermark = Some(unit),
            Some(_) => {}
            None => watermark = Some(unit),
        }
    }
    Ok(watermark)
}

/// Remaps one buffered warm-up unit through a tree compaction,
/// dropping moved slots and padding to the survivor count (warm-up
/// units are dense but may lag a tree that grew after they closed).
fn compact_warmup_unit(unit: &mut Vec<f64>, old_to_new: &[Option<NodeId>]) {
    let new_len = old_to_new.iter().flatten().count();
    let old = std::mem::take(unit);
    unit.resize(new_len, 0.0);
    for (i, slot) in old_to_new.iter().enumerate() {
        if let Some(new) = slot {
            if i < old.len() {
                unit[new.index()] = old[i];
            }
        }
    }
}

impl Tiresias {
    pub(crate) fn from_builder(builder: TiresiasBuilder) -> Self {
        let warmup_target =
            builder.warmup_units.unwrap_or_else(|| builder.base_model().preferred_history());
        let resolved_model = builder.base_model();
        let tree = Tree::new(builder.root_label.clone());
        let store = ReportStore::with_root(builder.root_label.clone());
        Tiresias {
            builder,
            tree,
            state: State::Warmup { units: Vec::new() },
            open_unit: None,
            open_counts: DenseCounts::default(),
            store,
            warmup_target,
            resolved_model,
            units_processed: 0,
            reading: std::time::Duration::ZERO,
            detecting: std::time::Duration::ZERO,
        }
    }

    /// The classification tree built from the categories seen so far.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Timeunits fully processed (including warm-up).
    pub fn units_processed(&self) -> u64 {
        self.units_processed
    }

    /// `true` once the warm-up buffer is converted into a running
    /// tracker and detection is active.
    pub fn is_warmed_up(&self) -> bool {
        matches!(self.state, State::Running { .. })
    }

    /// The forecasting model in use (after any auto-seasonality
    /// resolution).
    pub fn model_spec(&self) -> &ModelSpec {
        &self.resolved_model
    }

    /// The currently open (not yet closed) timeunit index.
    pub fn current_unit(&self) -> Option<u64> {
        self.open_unit
    }

    /// Timeunit size Δ in seconds.
    pub fn timeunit_secs(&self) -> u64 {
        self.builder.timeunit_secs
    }

    /// Number of records counted into the currently open timeunit —
    /// a non-blocking accounting hook for schedulers and metrics.
    pub fn open_records(&self) -> f64 {
        self.open_counts.total()
    }

    /// All anomalies detected so far, oldest first.
    pub fn anomalies(&self) -> &[AnomalyEvent] {
        self.store.events()
    }

    /// The queryable anomaly store.
    pub fn store(&self) -> &ReportStore {
        &self.store
    }

    /// Mutable access to the anomaly store (e.g. for
    /// [`ReportStore::dedup_ancestors`]).
    pub fn store_mut(&mut self) -> &mut ReportStore {
        &mut self.store
    }

    /// The current heavy hitter set (empty during warm-up).
    pub fn heavy_hitters(&self) -> Vec<NodeId> {
        match &self.state {
            State::Warmup { .. } => Vec::new(),
            State::Running { tracker } => match tracker {
                Tracker::Ada(a) => a.heavy_hitters().to_vec(),
                Tracker::Sta(s) => s.heavy_hitters().to_vec(),
            },
        }
    }

    /// Cumulative stage timings across the detector's lifetime.
    pub fn timings(&self) -> StageTimings {
        let mut t = match &self.state {
            State::Warmup { .. } => StageTimings::default(),
            State::Running { tracker } => match tracker {
                Tracker::Ada(a) => a.timings(),
                Tracker::Sta(s) => s.timings(),
            },
        };
        t.reading_traces += self.reading;
        t.detecting_anomalies += self.detecting;
        t
    }

    /// Memory accounting of the running tracker (zeros during warm-up).
    pub fn memory_report(&self) -> MemoryReport {
        match &self.state {
            State::Warmup { .. } => MemoryReport::default(),
            State::Running { tracker } => match tracker {
                Tracker::Ada(a) => a.memory_report(&self.tree),
                Tracker::Sta(s) => s.memory_report(&self.tree),
            },
        }
    }

    /// Ingests one record, closing earlier timeunits as the stream
    /// advances past them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfOrder`] if the record's timestamp falls
    /// before the open timeunit, and propagates tracker construction
    /// errors at the warm-up boundary.
    pub fn push(&mut self, record: Record) -> Result<(), CoreError> {
        let t0 = Instant::now();
        let unit = record.unit(self.builder.timeunit_secs);
        match self.open_unit {
            None => self.open_unit = Some(unit),
            Some(open) if unit < open => {
                return Err(CoreError::OutOfOrder {
                    timestamp: record.timestamp_secs,
                    open_unit_start: open * self.builder.timeunit_secs,
                });
            }
            Some(open) if unit > open => {
                self.reading += t0.elapsed();
                self.close_until(unit)?;
                let t1 = Instant::now();
                let node = self.tree.insert_category(&record.path);
                self.open_counts.add(node.index(), 1.0);
                self.reading += t1.elapsed();
                return Ok(());
            }
            Some(_) => {}
        }
        let node = self.tree.insert_category(&record.path);
        self.open_counts.add(node.index(), 1.0);
        self.reading += t0.elapsed();
        Ok(())
    }

    /// Ingests one record given as a borrowed `/`-separated category
    /// path — the zero-allocation fast path.
    ///
    /// Semantically identical to
    /// `push(Record::new(path, t_secs))`: empty path segments are
    /// skipped the same way, timeunits close the same way, and the
    /// resulting tree, heavy hitter set and anomaly stream are
    /// byte-identical. The difference is purely mechanical: no
    /// [`Record`] (and no per-label `String`) is materialised, and once
    /// every label of `path` has been seen before, the whole call
    /// performs no heap allocation.
    ///
    /// Per-record wall-clock accounting is also skipped (two
    /// `Instant::now` calls cost more than the resolve itself), so
    /// `reading_traces` stays zero on this path; the unit-close sweeps
    /// are still accounted by the tracker's own stage timers, exactly
    /// as on the [`Tiresias::push`] path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfOrder`] if `t_secs` falls before the
    /// open timeunit, and propagates tracker construction errors at the
    /// warm-up boundary.
    pub fn push_str(&mut self, path: &str, t_secs: u64) -> Result<(), CoreError> {
        let unit = t_secs / self.builder.timeunit_secs;
        match self.open_unit {
            None => self.open_unit = Some(unit),
            Some(open) if unit < open => {
                return Err(CoreError::OutOfOrder {
                    timestamp: t_secs,
                    open_unit_start: open * self.builder.timeunit_secs,
                });
            }
            Some(open) if unit > open => self.close_until(unit)?,
            Some(_) => {}
        }
        let node = self.tree.insert_str(path);
        self.open_counts.add(node.index(), 1.0);
        Ok(())
    }

    /// Ingests a batch of `(path, timestamp)` records through the
    /// [`Tiresias::push_str`] fast path.
    ///
    /// The whole batch is validated first — timestamps must not precede
    /// the open timeunit or an earlier record of the batch — and on a
    /// validation error *nothing* is ingested, so callers never deal
    /// with half-applied batches. This is the single-shard counterpart
    /// of [`crate::ShardedTiresias::push_batch`] and produces
    /// byte-identical results to the equivalent `push_str` loop.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfOrder`] (before ingesting anything) on
    /// a non-monotone batch, and propagates tracker construction errors
    /// at the warm-up boundary.
    pub fn push_batch<S: AsRef<str>>(&mut self, records: &[(S, u64)]) -> Result<(), CoreError> {
        validate_batch_order(self.open_unit, self.builder.timeunit_secs, records)?;
        for (path, t) in records {
            self.push_str(path.as_ref(), *t)?;
        }
        Ok(())
    }

    /// Advances the clock to `t_secs`, closing every timeunit that ends
    /// at or before it (including empty ones — gaps become zero-count
    /// units, which matters for the time series).
    ///
    /// # Errors
    ///
    /// Propagates tracker construction errors at the warm-up boundary.
    pub fn advance_to(&mut self, t_secs: u64) -> Result<(), CoreError> {
        let target = t_secs / self.builder.timeunit_secs;
        if self.open_unit.is_none() {
            self.open_unit = Some(target);
            return Ok(());
        }
        self.close_until(target)
    }

    /// Ingests one whole pre-aggregated timeunit of direct counts
    /// (indexed by [`NodeId::index`] over the current tree) — the bulk
    /// API used by experiments that generate counts directly. Returns
    /// the anomalies detected in that unit as a slice borrowed from the
    /// store (no copy; clone it if you need to hold it across calls).
    ///
    /// When `direct` covers the whole tree — the common case — it is
    /// passed straight through to the tracker with no copy at all;
    /// shorter vectors are zero-padded into a reusable scratch buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if record-level pushes are
    /// pending in the open unit (the two APIs cannot be mixed within a
    /// unit), and propagates tracker errors.
    pub fn ingest_unit(&mut self, direct: &[f64]) -> Result<&[AnomalyEvent], CoreError> {
        if !self.open_counts.is_empty() {
            return Err(CoreError::InvalidConfig(
                "ingest_unit cannot be mixed with pending record-level pushes".into(),
            ));
        }
        let before_seq = self.store.next_seq();
        let unit = self.open_unit.unwrap_or(0);
        if direct.len() >= self.tree.len() {
            self.process_closed_unit(unit, direct)?;
        } else {
            // Zero-pad into the (empty, recycled) open-counts buffer.
            let mut scratch = self.open_counts.take();
            scratch.ensure_len(self.tree.len());
            for (i, &w) in direct.iter().enumerate() {
                if w != 0.0 {
                    scratch.add(i, w);
                }
            }
            let result = self.process_closed_unit(unit, scratch.dense());
            scratch.reset();
            self.open_counts = scratch;
            result?;
        }
        self.open_unit = Some(unit + 1);
        // Seq-addressed rather than index-addressed: a retention budget
        // may have evicted older events when the unit closed.
        Ok(self.store.events_from(before_seq).1)
    }

    /// Extends the tree with a category without recording data (useful
    /// to pre-build a known hierarchy before bulk ingestion).
    pub fn register_category(&mut self, path: &str) -> NodeId {
        let p: tiresias_hierarchy::CategoryPath =
            path.parse().expect("category paths parse infallibly");
        self.tree.insert_category(&p)
    }

    /// Replaces the detector's (still empty) tree with a pre-built
    /// hierarchy, preserving its [`NodeId`] assignment — required when
    /// [`Tiresias::ingest_unit`] vectors are indexed by an external
    /// tree's node ids.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if any data was already
    /// ingested or categories registered.
    pub fn adopt_tree(&mut self, tree: Tree) -> Result<(), CoreError> {
        if self.units_processed > 0 || !self.open_counts.is_empty() || self.tree.len() > 1 {
            return Err(CoreError::InvalidConfig(
                "adopt_tree must be called before any data or categories".into(),
            ));
        }
        self.tree = tree;
        Ok(())
    }

    /// Extracts every top-level subtree whose label matches `select`,
    /// detaching its tree nodes, tracker state and pending open-unit
    /// counts into a transplantable [`SubtreeState`] and compacting this
    /// detector down to the survivors.
    ///
    /// Must only be called at a timeunit barrier alignment point — the
    /// extracted state carries the detector's `open_unit` and
    /// `units_processed`, and [`Tiresias::adopt_subtrees`] asserts they
    /// match the adopter's. Anomaly events already emitted for the
    /// moved subtrees stay in this detector's store; a merging caller
    /// orders events by `(unit, path)`, so the merged stream is
    /// unaffected by which store holds them.
    pub fn extract_subtrees(&mut self, select: impl FnMut(&str) -> bool) -> SubtreeState {
        let surgery = self.tree.extract_top_subtrees(select);
        let mut slot_of = vec![None; surgery.old_to_new.len()];
        for (slot, m) in surgery.moved.iter().enumerate() {
            slot_of[m.old_id.index()] = Some(slot as u32);
        }
        let tracker = match &mut self.state {
            State::Warmup { units } => {
                let mut cols = Vec::with_capacity(units.len());
                for unit in units.iter_mut() {
                    let col: Vec<f64> = surgery
                        .moved
                        .iter()
                        .map(|m| unit.get(m.old_id.index()).copied().unwrap_or(0.0))
                        .collect();
                    compact_warmup_unit(unit, &surgery.old_to_new);
                    cols.push(col);
                }
                TrackerSlice::Warmup(cols)
            }
            State::Running { tracker } => match tracker {
                Tracker::Ada(a) => {
                    TrackerSlice::Ada(Box::new(a.extract_nodes(&self.tree, &surgery)))
                }
                Tracker::Sta(s) => {
                    TrackerSlice::Sta(Box::new(s.extract_nodes(&self.tree, &surgery)))
                }
            },
        };
        let open = self
            .open_counts
            .extract_remap(|i| slot_of.get(i).copied().flatten(), &surgery.old_to_new);
        SubtreeState {
            moved: surgery.moved,
            tracker,
            open,
            open_unit: self.open_unit,
            units_processed: self.units_processed,
        }
    }

    /// Grafts subtrees extracted from an equally-advanced detector
    /// (same open unit, same processed-unit count, same lifecycle
    /// phase) into this one. Inverse of [`Tiresias::extract_subtrees`];
    /// adopting an empty state is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the timelines are unaligned, the detectors are in
    /// different lifecycle phases (one still warming up), or a moved
    /// top-level label already exists here — all contract violations of
    /// the epoch-barrier rebalancing protocol.
    pub fn adopt_subtrees(&mut self, state: SubtreeState) {
        if state.is_empty() {
            return;
        }
        assert_eq!(
            state.units_processed, self.units_processed,
            "adopting subtree state across unaligned timelines"
        );
        assert_eq!(
            state.open_unit, self.open_unit,
            "adopting subtree state across different open units"
        );
        let ids = self.tree.adopt_top_subtrees(&state.moved);
        match (&mut self.state, state.tracker) {
            (State::Warmup { units }, TrackerSlice::Warmup(cols)) => {
                assert_eq!(
                    units.len(),
                    cols.len(),
                    "adopting subtree state across different warm-up depths"
                );
                let tree_len = self.tree.len();
                for (unit, col) in units.iter_mut().zip(cols) {
                    if unit.len() < tree_len {
                        unit.resize(tree_len, 0.0);
                    }
                    for (slot, v) in col.into_iter().enumerate() {
                        if v != 0.0 {
                            unit[ids[slot].index()] = v;
                        }
                    }
                }
            }
            (State::Running { tracker: Tracker::Ada(a) }, TrackerSlice::Ada(slice)) => {
                a.adopt_nodes(&self.tree, &ids, *slice);
            }
            (State::Running { tracker: Tracker::Sta(s) }, TrackerSlice::Sta(slice)) => {
                s.adopt_nodes(&self.tree, &ids, *slice);
            }
            _ => panic!("adopting subtree state across mismatched detector phases"),
        }
        for (slot, w) in state.open {
            self.open_counts.add(ids[slot as usize].index(), w);
        }
    }

    /// Per-top-level-label load of the most recent timeunit, as
    /// `(label, aggregate record count)` pairs in child order — the
    /// measurement the skew-adaptive rebalancer feeds on.
    pub fn top_level_unit_loads(&self) -> Vec<(String, f64)> {
        let children = self.tree.children(self.tree.root());
        if children.is_empty() {
            return Vec::new();
        }
        let load_of: Vec<f64> = match &self.state {
            State::Running { tracker: Tracker::Ada(a) } => {
                children.iter().map(|&c| a.aggregate_weight(c)).collect()
            }
            State::Running { tracker: Tracker::Sta(s) } => {
                let agg = s.latest_aggregates(&self.tree);
                children.iter().map(|&c| agg.get(c.index()).copied().unwrap_or(0.0)).collect()
            }
            State::Warmup { units } => match units.last() {
                None => vec![0.0; children.len()],
                Some(unit) => children
                    .iter()
                    .map(|&c| {
                        self.tree
                            .subtree(c)
                            .map(|n| unit.get(n.index()).copied().unwrap_or(0.0))
                            .sum()
                    })
                    .collect(),
            },
        };
        children
            .iter()
            .zip(load_of)
            .map(|(&c, load)| (self.tree.label(c).to_string(), load))
            .collect()
    }

    /// Closes units `[open, target)`.
    ///
    /// The open-counts buffer is already dense, so closing a unit is a
    /// hand-off, not a copy: the buffer is lent to the pipeline, its
    /// touched slots are zeroed in O(records), and the allocation is
    /// recycled for the next unit (gap units reuse the same all-zero
    /// buffer).
    fn close_until(&mut self, target: u64) -> Result<(), CoreError> {
        let Some(mut open) = self.open_unit else {
            self.open_unit = Some(target);
            return Ok(());
        };
        while open < target {
            let mut counts = self.open_counts.take();
            counts.ensure_len(self.tree.len());
            let result = self.process_closed_unit(open, counts.dense());
            counts.reset();
            self.open_counts = counts;
            result?;
            open += 1;
        }
        self.open_unit = Some(open.max(target));
        Ok(())
    }

    /// Pipeline for one closed timeunit (Steps 2–5 of Fig. 3).
    fn process_closed_unit(&mut self, unit: u64, dense: &[f64]) -> Result<(), CoreError> {
        match &mut self.state {
            State::Warmup { units } => {
                units.push(dense.to_vec());
                if units.len() >= self.warmup_target.max(1) {
                    self.finish_warmup()?;
                }
            }
            State::Running { tracker } => {
                match tracker {
                    Tracker::Ada(a) => a.push_timeunit(&self.tree, dense),
                    Tracker::Sta(s) => s.push_timeunit(&self.tree, dense),
                }
                let t0 = Instant::now();
                let (rt, dt) = (self.builder.rt, self.builder.dt);
                let mut new_events = Vec::new();
                let candidates: Vec<(NodeId, f64, f64)> = match tracker {
                    Tracker::Ada(a) => a
                        .heavy_hitters()
                        .iter()
                        .filter_map(|&n| a.view(n).map(|v| (n, v.latest_actual, v.latest_forecast)))
                        .collect(),
                    Tracker::Sta(s) => s
                        .heavy_hitters()
                        .iter()
                        .filter_map(|&n| s.latest(n).map(|(a, f)| (n, a, f)))
                        .collect(),
                };
                for (n, actual, forecast) in candidates {
                    let kind = if is_anomalous(actual, forecast, rt, dt) {
                        Some(AnomalyKind::Spike)
                    } else if self.builder.detect_drops && is_drop(actual, forecast, rt, dt) {
                        Some(AnomalyKind::Drop)
                    } else {
                        None
                    };
                    if let Some(kind) = kind {
                        new_events.push(AnomalyEvent {
                            node: n,
                            path: self.tree.path_of(n),
                            level: self.tree.depth(n),
                            unit,
                            time_secs: unit * self.builder.timeunit_secs,
                            actual,
                            forecast,
                            kind,
                        });
                    }
                }
                self.store.extend(new_events);
                self.detecting += t0.elapsed();
            }
        }
        self.units_processed += 1;
        // Record the close so the store's retention budget (if any)
        // can evict and its last-closed watermark stays truthful.
        self.store.note_closed(unit);
        Ok(())
    }

    /// Converts the warm-up buffer into a running tracker, resolving
    /// auto-seasonality if requested (Fig. 3, Step 3).
    fn finish_warmup(&mut self) -> Result<(), CoreError> {
        let State::Warmup { units } = &mut self.state else {
            return Ok(());
        };
        let units = std::mem::take(units);
        // Auto-seasonality: analyse the root aggregate (= total count per
        // unit, since the hierarchy is additive).
        if let Some(max_factors) = self.builder.auto_seasonality {
            let totals: Vec<f64> = units.iter().map(|u| u.iter().sum()).collect();
            let analysis = SeasonalityAnalysis::analyze(&totals, max_factors.max(1));
            let seasons = analysis.seasons();
            if !seasons.is_empty() {
                self.resolved_model = if seasons.len() == 1 {
                    ModelSpec::HoltWinters {
                        alpha: self.builder.hw_alpha,
                        beta: self.builder.hw_beta,
                        gamma: self.builder.hw_gamma,
                        season: (seasons[0].period_units.round() as usize).max(2),
                    }
                } else {
                    ModelSpec::MultiSeasonal {
                        alpha: self.builder.hw_alpha,
                        beta: self.builder.hw_beta,
                        gamma: self.builder.hw_gamma,
                        factors: seasons
                            .iter()
                            .map(|s| {
                                SeasonalFactor::new(
                                    (s.period_units.round() as usize).max(2),
                                    s.weight,
                                )
                            })
                            .collect(),
                    }
                };
            }
        }
        let config: HhhConfig = self.builder.hhh_config(self.resolved_model.clone());
        let tracker = match self.builder.algorithm {
            Algorithm::Ada => {
                Tracker::Ada(Box::new(Ada::with_history(config, &self.tree, &units)?))
            }
            Algorithm::Sta => {
                let mut sta = Sta::new(config)?;
                let mut padded = units;
                for u in &mut padded {
                    u.resize(self.tree.len(), 0.0);
                    sta.push_timeunit(&self.tree, u);
                }
                Tracker::Sta(Box::new(sta))
            }
        };
        self.state = State::Running { tracker };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TiresiasBuilder;

    fn small_detector(warmup: usize) -> Tiresias {
        TiresiasBuilder::new()
            .timeunit_secs(900)
            .window_len(32)
            .threshold(5.0)
            .season_length(4)
            .sensitivity(2.0, 5.0)
            .warmup_units(warmup)
            .ref_levels(0)
            .build()
            .unwrap()
    }

    fn feed_unit(d: &mut Tiresias, unit: u64, path: &str, count: u64) {
        for i in 0..count {
            d.push(Record::new(path, unit * 900 + i)).unwrap();
        }
        d.advance_to((unit + 1) * 900).unwrap();
    }

    #[test]
    fn warmup_then_detection() {
        let mut d = small_detector(8);
        for u in 0..8 {
            feed_unit(&mut d, u, "TV/NoService", 10);
        }
        assert!(d.is_warmed_up());
        assert!(d.anomalies().is_empty());
        // Steady traffic: still nothing.
        feed_unit(&mut d, 8, "TV/NoService", 10);
        assert!(d.anomalies().is_empty());
        // Burst: detected at the leaf.
        feed_unit(&mut d, 9, "TV/NoService", 100);
        assert_eq!(d.anomalies().len(), 1);
        let e = &d.anomalies()[0];
        assert_eq!(e.path.to_string(), "TV/NoService");
        assert_eq!(e.unit, 9);
        assert!(e.actual >= 100.0 - 1e-9);
    }

    #[test]
    fn push_str_matches_record_path() {
        let mut a = small_detector(4);
        let mut b = small_detector(4);
        let stream = [
            ("TV/NoService", 0u64),
            ("TV/NoService", 10),
            ("/TV//Pixelation/", 20),
            ("Internet/Slow", 950),
            ("TV/NoService", 1000),
        ];
        for &(path, t) in &stream {
            a.push(Record::new(path, t)).unwrap();
            b.push_str(path, t).unwrap();
        }
        a.advance_to(40 * 900).unwrap();
        b.advance_to(40 * 900).unwrap();
        assert_eq!(a.units_processed(), b.units_processed());
        assert_eq!(a.tree().len(), b.tree().len());
        for n in a.tree().iter() {
            assert_eq!(a.tree().label(n), b.tree().label(n));
        }
        assert_eq!(a.heavy_hitters(), b.heavy_hitters());
        assert_eq!(a.anomalies(), b.anomalies());
    }

    #[test]
    fn push_str_rejects_out_of_order() {
        let mut d = small_detector(2);
        d.push_str("a", 5000).unwrap();
        d.advance_to(9000).unwrap();
        let err = d.push_str("a", 100).unwrap_err();
        assert!(matches!(err, CoreError::OutOfOrder { .. }));
    }

    #[test]
    fn out_of_order_records_are_rejected() {
        let mut d = small_detector(2);
        d.push(Record::new("a", 5000)).unwrap();
        d.advance_to(9000).unwrap();
        let err = d.push(Record::new("a", 100)).unwrap_err();
        assert!(matches!(err, CoreError::OutOfOrder { .. }));
    }

    #[test]
    fn gaps_produce_zero_units() {
        let mut d = small_detector(2);
        feed_unit(&mut d, 0, "a", 10);
        feed_unit(&mut d, 1, "a", 10);
        // Jump 5 units ahead: 4 empty units close silently.
        d.push(Record::new("a", 6 * 900)).unwrap();
        assert_eq!(d.units_processed(), 6);
    }

    #[test]
    fn push_auto_advances_units() {
        let mut d = small_detector(2);
        d.push(Record::new("a", 0)).unwrap();
        d.push(Record::new("a", 950)).unwrap(); // next unit
        assert_eq!(d.units_processed(), 1);
        assert_eq!(d.current_unit(), Some(1));
    }

    #[test]
    fn ingest_unit_bulk_api() {
        let mut d = small_detector(2);
        let leaf = d.register_category("x/y");
        let mut unit = vec![0.0; d.tree().len()];
        unit[leaf.index()] = 10.0;
        for _ in 0..4 {
            let events = d.ingest_unit(&unit).unwrap();
            assert!(events.is_empty());
        }
        let mut burst = unit.clone();
        burst[leaf.index()] = 90.0;
        let events = d.ingest_unit(&burst).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].node, leaf);
    }

    #[test]
    fn mixing_apis_within_a_unit_is_rejected() {
        let mut d = small_detector(2);
        d.push(Record::new("a", 0)).unwrap();
        assert!(d.ingest_unit(&[0.0]).is_err());
    }

    #[test]
    fn sta_algorithm_detects_too() {
        let mut d = TiresiasBuilder::new()
            .timeunit_secs(900)
            .window_len(16)
            .threshold(5.0)
            .season_length(4)
            .sensitivity(2.0, 5.0)
            .warmup_units(8)
            .algorithm(Algorithm::Sta)
            .build()
            .unwrap();
        for u in 0..9 {
            feed_unit(&mut d, u, "TV", 10);
        }
        feed_unit(&mut d, 9, "TV", 100);
        assert_eq!(d.anomalies().len(), 1);
    }

    #[test]
    fn new_categories_grow_the_tree() {
        let mut d = small_detector(2);
        feed_unit(&mut d, 0, "a/b", 6);
        let before = d.tree().len();
        feed_unit(&mut d, 1, "c/d/e", 6);
        assert!(d.tree().len() > before);
    }

    #[test]
    fn auto_seasonality_resolves_period() {
        let mut d = TiresiasBuilder::new()
            .timeunit_secs(900)
            .window_len(64)
            .threshold(3.0)
            .season_length(99) // wrong on purpose; auto should fix it
            .auto_seasonality(1)
            .warmup_units(48)
            .build()
            .unwrap();
        let leaf = d.register_category("x");
        // Period-8 pattern during warm-up.
        for u in 0..48u64 {
            let count = 10.0 + 8.0 * ((u % 8) as f64 / 8.0 * std::f64::consts::TAU).sin();
            let mut unit = vec![0.0; d.tree().len()];
            unit[leaf.index()] = count.max(0.0).round();
            d.ingest_unit(&unit).unwrap();
        }
        assert!(d.is_warmed_up());
        match d.model_spec() {
            ModelSpec::HoltWinters { season, .. } => {
                assert!((6..=10).contains(season), "detected season {season}");
            }
            other => panic!("expected single-season model, got {other:?}"),
        }
    }

    #[test]
    fn heavy_hitters_visible_after_warmup() {
        let mut d = small_detector(3);
        for u in 0..5 {
            feed_unit(&mut d, u, "hot/leaf", 20);
        }
        let hh = d.heavy_hitters();
        assert!(!hh.is_empty());
        let leaf = d.tree().find(&["hot", "leaf"]).unwrap();
        assert!(hh.contains(&leaf));
    }

    /// A root-isolated detector, as the shards of a `ShardedTiresias`
    /// run — the configuration under which subtree surgery is exact.
    fn isolated_detector(warmup: usize) -> Tiresias {
        let mut b = TiresiasBuilder::new()
            .timeunit_secs(900)
            .window_len(32)
            .threshold(5.0)
            .season_length(4)
            .sensitivity(2.0, 5.0)
            .warmup_units(warmup)
            .ref_levels(1);
        b.root_isolation = true;
        b.build().unwrap()
    }

    fn feed(d: &mut Tiresias, unit: u64, paths: &[(&str, u64)]) {
        for &(path, count) in paths {
            for i in 0..count {
                d.push_str(path, unit * 900 + i).unwrap();
            }
        }
        d.advance_to((unit + 1) * 900).unwrap();
    }

    fn hh_paths(d: &Tiresias) -> Vec<String> {
        let mut p: Vec<String> =
            d.heavy_hitters().iter().map(|&n| d.tree().path_of(n).to_string()).collect();
        p.sort();
        p
    }

    /// Events after `unit` in `(unit, path)` order — the order the
    /// sharded merge normalises to. Within one detector, same-unit
    /// events surface in tree-node order, which adoption legitimately
    /// permutes (the adopted subtree's nodes append last).
    fn events_after(d: &Tiresias, unit: u64) -> Vec<(u64, String, f64, f64)> {
        let mut events: Vec<(u64, String, f64, f64)> = d
            .anomalies()
            .iter()
            .filter(|e| e.unit > unit)
            .map(|e| (e.unit, e.path.to_string(), e.actual, e.forecast))
            .collect();
        events.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        events
    }

    #[test]
    fn extract_adopt_matches_native_routing_while_running() {
        let mut src = isolated_detector(4);
        let mut dst = isolated_detector(4);
        let mut native = isolated_detector(4);
        for u in 0..10 {
            feed(&mut src, u, &[("a/x", 12), ("b/y", 30)]);
            feed(&mut dst, u, &[("c/z", 12)]);
            feed(&mut native, u, &[("b/y", 30), ("c/z", 12)]);
        }
        assert!(src.is_warmed_up() && dst.is_warmed_up());

        // Loads reflect the last closed unit, per top-level label.
        let loads = src.top_level_unit_loads();
        assert_eq!(loads, vec![("a".to_string(), 12.0), ("b".to_string(), 30.0)]);

        // Pending open-unit records move with the subtree.
        for d in [&mut src, &mut native] {
            for i in 0..3 {
                d.push_str("b/y", 10 * 900 + i).unwrap();
            }
        }

        let state = src.extract_subtrees(|l| l == "b");
        assert!(!state.is_empty());
        assert_eq!(state.labels().collect::<Vec<_>>(), vec!["b"]);
        assert!(src.tree().find(&["b"]).is_none(), "source no longer owns b");
        dst.adopt_subtrees(state);
        assert!(dst.tree().find(&["b", "y"]).is_some());

        // Steady, then burst both the adopted and the resident subtree.
        for u in 10..13 {
            feed(&mut dst, u, &[("b/y", 30), ("c/z", 12)]);
            feed(&mut native, u, &[("b/y", 30), ("c/z", 12)]);
        }
        feed(&mut dst, 13, &[("b/y", 200), ("c/z", 150)]);
        feed(&mut native, 13, &[("b/y", 200), ("c/z", 150)]);

        assert_eq!(hh_paths(&dst), hh_paths(&native));
        let dst_events = events_after(&dst, 10);
        assert_eq!(dst_events, events_after(&native, 10));
        assert!(dst_events.iter().any(|(_, p, ..)| p == "b/y"), "burst detected post-move");
        assert!(dst_events.iter().any(|(_, p, ..)| p == "c/z"));
    }

    #[test]
    fn extract_adopt_matches_native_routing_during_warmup() {
        let mut src = isolated_detector(6);
        let mut dst = isolated_detector(6);
        let mut native = isolated_detector(6);
        for u in 0..3 {
            feed(&mut src, u, &[("a/x", 12), ("b/y", 30)]);
            feed(&mut dst, u, &[("c/z", 12)]);
            feed(&mut native, u, &[("b/y", 30), ("c/z", 12)]);
        }
        assert!(!src.is_warmed_up());
        let state = src.extract_subtrees(|l| l == "b");
        dst.adopt_subtrees(state);
        for u in 3..10 {
            feed(&mut dst, u, &[("b/y", 30), ("c/z", 12)]);
            feed(&mut native, u, &[("b/y", 30), ("c/z", 12)]);
        }
        assert!(dst.is_warmed_up());
        feed(&mut dst, 10, &[("b/y", 200), ("c/z", 12)]);
        feed(&mut native, 10, &[("b/y", 200), ("c/z", 12)]);
        assert_eq!(hh_paths(&dst), hh_paths(&native));
        assert_eq!(events_after(&dst, 0), events_after(&native, 0));
        assert!(dst.anomalies().iter().any(|e| e.path.to_string() == "b/y"));
    }

    #[test]
    #[should_panic(expected = "unaligned timelines")]
    fn adopting_across_unaligned_timelines_panics() {
        let mut src = isolated_detector(2);
        let mut dst = isolated_detector(2);
        feed(&mut src, 0, &[("b/y", 10)]);
        feed(&mut src, 1, &[("b/y", 10)]);
        feed(&mut dst, 0, &[("c/z", 10)]);
        let state = src.extract_subtrees(|l| l == "b");
        dst.adopt_subtrees(state);
    }

    #[test]
    fn timings_track_stages() {
        let mut d = small_detector(2);
        for u in 0..6 {
            feed_unit(&mut d, u, "a", 10);
        }
        let t = d.timings();
        assert!(t.reading_traces > std::time::Duration::ZERO);
    }
}
