//! The live split of the sharded engine: a concurrently shareable
//! ingest front-end plus a serialized close/report back-end.
//!
//! [`ShardedTiresias`] is an exclusive (`&mut self`) engine: one caller
//! feeds batches, boundaries close inside the call. That shape is right
//! for replays and wrong for serving — a daemon admitting records from
//! many client sessions would serialise every record through one lock
//! around the whole engine. [`ShardedTiresias::into_live`] therefore
//! splits the engine in two:
//!
//! * [`IngestHandle`] — the **front-end**: cloneable, `Send + Sync`,
//!   admits records with `&self` from any number of session threads.
//!   It routes and validates against an atomic timeunit **watermark**,
//!   counts late/ahead/admitted records atomically, and produces
//!   accepted records into per-shard [`ShardRing`]s consumed by
//!   long-running worker threads (one per shard, each owning its
//!   [`Tiresias`] exclusively). No engine-wide lock is taken anywhere
//!   on this path.
//! * [`LiveSharded`] — the **back-end**: exclusive, owns the workers,
//!   the merged report tree/store and the checkpoint lifecycle.
//!   Timeunit closes, anomaly merging and metrics stay here.
//!
//! # The epoch barrier: how timeunits close under concurrent admission
//!
//! The open timeunit is an atomic watermark read by every admission.
//! Flipping it is the one moment that needs exclusivity, and it is
//! guarded by a tiny `RwLock<()>` **gate** (not the engine): admissions
//! hold it shared while they validate against the watermark *and*
//! enqueue into the shard rings; [`LiveSharded::close_to`] holds it
//! exclusively while it advances the watermark and enqueues a barrier
//! message into every ring. Because both the watermark read and the
//! ring write happen under the same gate acquisition, every record
//! admitted against watermark `W` is **in its ring before the barrier
//! that closes `W`** — in-flight pushes land in a well-defined unit, by
//! construction. Workers process their backlog, feed any held-back
//! future records whose unit is now due, close through the barrier's
//! target in parallel, and acknowledge with their newly final
//! anomalies, which the back-end merges in `(unit, path)` order exactly
//! like the offline engine.
//!
//! Records of units *ahead* of the watermark (within the configured
//! bound) are admitted and stashed by the owning worker until a barrier
//! opens their unit — the same hold-back the serving layer previously
//! implemented with a buffer under its global lock, now per shard and
//! lock-free for producers.
//!
//! [`LiveSharded::finish`] drains every ring and stash, joins the
//! workers and reassembles a plain [`ShardedTiresias`] — so a live
//! deployment checkpoints byte-compatibly with the offline engine and a
//! restart resumes mid-unit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::anomaly::AnomalyEvent;
use crate::builder::TiresiasBuilder;
use crate::detector::{SubtreeState, Tiresias};
use crate::error::CoreError;
use crate::ring::ShardRing;
use crate::segments::SegmentStore;
use crate::sharded::{
    Balancer, RebalanceConfig, RouteScratch, ShardRouter, ShardedParts, ShardedTiresias,
};
use crate::store::ReportStore;
use crate::telem::EngineTelemetry;
use crate::wal::{encode_record, Wal};

use tiresias_hierarchy::{first_segment_hash, CategoryPath};

/// Default bound on how many timeunits ahead of the open unit a record
/// may be. Catches unit confusion (e.g. millisecond timestamps where
/// seconds belong) and bounds how many intermediate units one absurd
/// timestamp can force a close to sweep through.
pub const DEFAULT_MAX_AHEAD_UNITS: u64 = 1_000;

/// Messages a shard ring buffers before producers block (backpressure).
/// Each message is a whole admission chunk, so the bound is on batches,
/// not records.
const LIVE_RING_CAPACITY: usize = 64;

/// Sentinel for "no watermark yet" in the atomic. Unreachable as a
/// real unit: admission caps admissible units at `FrontShared::
/// max_unit`, which is far below the sentinel (and low enough that no
/// derived close target overflows `unit * timeunit`).
const UNSET: u64 = u64::MAX;

/// Outcome of admitting one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Counted into the open unit or stashed for a future one.
    Accepted,
    /// The record's timeunit is already closed; dropped and counted.
    Late,
    /// The record's timeunit is further ahead of the open unit than the
    /// configured bound; dropped and counted.
    TooFarAhead,
}

/// What travels through a shard's ring: admission chunks, and the
/// serialized control messages that give in-flight records a
/// well-defined home (see the module docs).
enum ShardMsg {
    /// Records admitted under watermark `wm` (every unit is in
    /// `[wm, wm + max_ahead]`).
    Records { wm: u64, recs: Vec<(String, u64)> },
    /// Close every unit in `[from, target)` and leave `target` open.
    Barrier { seq: u64, from: u64, target: u64 },
    /// Final drain: feed the whole stash (closing what the data
    /// closes), align to `align`, acknowledge and exit.
    Drain { seq: u64, from: u64, align: Option<u64> },
    /// Rebalancing, step 1: extract the top-level subtrees whose
    /// first-segment hash is `hash` — detector state *and* stashed
    /// future records — and reply with them. Sent only under the held
    /// write gate, right after a barrier ack: the shard is aligned and
    /// no admission can race the transplant.
    Extract { hash: u64, reply: Sender<Migration> },
    /// Rebalancing, step 2: adopt a migration extracted from another
    /// shard at the same (gate-held) barrier.
    Adopt { migration: Migration },
}

/// A top-level subtree in flight between two shard workers: its
/// detector state plus the stashed future records that belong to it.
struct Migration {
    state: SubtreeState,
    stash: Vec<(String, u64)>,
}

/// A worker's reply to a `Barrier` or `Drain`.
struct ShardAck {
    seq: u64,
    /// Newly final anomalies (level ≥ 1) since the last ack.
    events: Vec<AnomalyEvent>,
    /// Largest stashed future unit still held back (`None` if none) —
    /// lets the back-end rebuild its ahead-of-watermark tracking after
    /// a close consumed part of the stash.
    stash_max: Option<u64>,
    units_processed: u64,
    /// Per-top-level-label subtree load of the last closed unit (empty
    /// on drains and poisoned shards) — the rebalancer's epoch
    /// measurement.
    loads: Vec<(String, f64)>,
    error: Option<CoreError>,
}

/// State shared between every [`IngestHandle`] clone, the shard
/// workers and the back-end.
struct FrontShared {
    /// The label→shard routing table. Read-mostly: admissions take the
    /// read side once per batch; only an epoch-barrier rebalance (which
    /// already holds the write gate, so no admission is in flight)
    /// takes the write side to repoint a pinned label.
    router: RwLock<ShardRouter>,
    timeunit: u64,
    max_ahead: u64,
    /// Largest admissible (and anchorable) unit. Keeps every close
    /// target the scheduler can derive (`watermark + 1`,
    /// `watermark + max_ahead`) below the [`UNSET`] sentinel *and*
    /// below `u64::MAX / timeunit`, so `target * timeunit` never
    /// overflows. Units beyond it read as too far ahead.
    max_unit: u64,
    /// The epoch gate: admissions hold it shared, watermark flips hold
    /// it exclusively. Guards ordering only — never engine state.
    gate: RwLock<()>,
    /// The open (not yet closed) timeunit; [`UNSET`] until the first
    /// record anchors the stream.
    watermark: AtomicU64,
    /// Set under the write gate by drain/teardown: admissions error.
    closed: AtomicBool,
    /// Set (lock-free) by a worker the moment a shard error poisons
    /// it, together with `closed` — so admissions fail fast instead of
    /// acknowledging records a broken shard would silently drop, and
    /// the serving layer can react before the next barrier surfaces
    /// the error itself.
    poisoned: AtomicBool,
    /// Set by the serving layer when a WAL fsync fails (and by a
    /// failed append here): admissions are refused with
    /// [`CoreError::WalUnavailable`] — never acknowledged records the
    /// log cannot persist — until the serving layer clears it after a
    /// successful sync. Unlike `closed`/`poisoned` this is a pause,
    /// not a teardown: the engine, its workers and its watermark all
    /// stay live.
    wal_paused: AtomicBool,
    /// Batches refused because the WAL could not append or was paused
    /// (`STATS wal_errors=`).
    wal_errors: AtomicU64,
    admitted: AtomicU64,
    late: AtomicU64,
    ahead: AtomicU64,
    /// Label moves applied at epoch barriers (mirror of the
    /// scheduler-owned counter, readable lock-free by exporters).
    rebalances: AtomicU64,
    /// Worst/mean shard-load ratio of the last measured epoch in
    /// thousandths (`0` = not yet measured) — fixed-point so the
    /// exporters need no float atomic.
    balance_milli: AtomicU64,
    /// `max(future unit admitted) + 1`, `0` when none — drives the
    /// serving layer's data-watermark close rule.
    ahead_max: AtomicU64,
    /// Nanos since `t0` when the oldest outstanding future record
    /// arrived (`0` = none) — starts the grace timer.
    first_future_nanos: AtomicU64,
    /// Nanos since `t0` of the first accepted record (`0` = none).
    first_admit_nanos: AtomicU64,
    t0: Instant,
    rings: Vec<ShardRing<ShardMsg>>,
    /// Records currently queued per ring (gauge).
    queued: Vec<AtomicU64>,
    /// Records counted into each shard's open unit (gauge, maintained
    /// by the workers).
    open_records: Vec<AtomicU64>,
    /// Future records stashed per shard (gauge).
    stashed: Vec<AtomicU64>,
    /// Write-ahead log of admitted batches and close barriers, `None`
    /// when the engine runs without durability. Appends happen under
    /// the same gate acquisition as the watermark read / ring write,
    /// so WAL order agrees with barrier order: every batch frame
    /// admitted against watermark `W` precedes the close frame that
    /// closes `W`.
    wal: Option<Arc<Wal>>,
    /// Hot-path latency histograms, `None` when the engine runs
    /// untelemetered (the bench baseline): admission then pays no
    /// clock reads at all.
    telem: Option<EngineTelemetry>,
}

impl FrontShared {
    fn nanos_now(&self) -> u64 {
        // `.max(1)` keeps 0 free as the "unset" sentinel.
        (self.t0.elapsed().as_nanos() as u64).max(1)
    }

    fn age_of(&self, marker: &AtomicU64) -> Option<Duration> {
        match marker.load(Ordering::SeqCst) {
            0 => None,
            then => Some(Duration::from_nanos(self.t0.elapsed().as_nanos() as u64 - then)),
        }
    }
}

/// The cloneable ingest front-end: admits records from any thread with
/// `&self`, no engine-wide lock. Obtain one per session thread from
/// [`LiveSharded::handle`].
///
/// Handles outlive the back-end gracefully: once the engine is drained
/// ([`LiveSharded::finish`]) or dropped, every admission returns
/// [`CoreError::Closed`].
#[derive(Clone)]
pub struct IngestHandle {
    shared: Arc<FrontShared>,
}

impl std::fmt::Debug for IngestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestHandle")
            .field("shards", &self.shared.rings.len())
            .field("watermark", &self.watermark())
            .finish()
    }
}

impl IngestHandle {
    /// Admits a batch of `(path, timestamp)` records, draining
    /// `records` and appending one [`Admission`] per record (in order)
    /// to `outcomes`. Accepted records are routed and enqueued to their
    /// shard workers; late and too-far-ahead records are dropped and
    /// counted. The whole batch is admitted under **one** gate
    /// acquisition, so per-record overhead amortises with batch size.
    ///
    /// Blocks only when a shard's ring is full (bounded backpressure
    /// from a worker that cannot keep up).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Closed`] once the engine is draining,
    /// poisoned by a shard error, or gone. The pre-admission check
    /// admits nothing; a teardown racing the ring hand-off can leave
    /// `records` partially drained, so callers replying per record
    /// should capture the batch length up front.
    pub fn admit_batch(
        &self,
        records: &mut Vec<(String, u64)>,
        outcomes: &mut Vec<Admission>,
    ) -> Result<(), CoreError> {
        outcomes.clear();
        if records.is_empty() {
            return Ok(());
        }
        let s = &*self.shared;
        // One clock read per batch (and none at all untelemetered).
        let t_admit = s.telem.as_ref().map(|_| Instant::now());
        let _gate = s.gate.read().expect("gate never poisoned");
        if s.closed.load(Ordering::SeqCst) {
            return Err(CoreError::Closed);
        }
        if s.wal.is_some() && s.wal_paused.load(Ordering::SeqCst) {
            // An earlier append or fsync failed and the serving layer
            // has not yet observed a successful sync: refuse the whole
            // batch up front (nothing drained, nothing acknowledged).
            s.wal_errors.fetch_add(1, Ordering::SeqCst);
            return Err(CoreError::WalUnavailable(
                "a write-ahead log write failed; admission is paused".to_string(),
            ));
        }
        let mut wm = s.watermark.load(Ordering::SeqCst);
        if wm == UNSET {
            // First record ever: its unit anchors the stream's
            // data-time epoch unchecked (timestamps are abstract;
            // there is nothing yet to bound them against — except the
            // overflow-proof `max_unit` ceiling). Concurrent anchor
            // attempts race benignly — one wins, the rest validate
            // against the winner.
            if let Some(anchor) =
                records.iter().map(|&(_, t)| t / s.timeunit).find(|&u| u <= s.max_unit)
            {
                wm = match s.watermark.compare_exchange(
                    UNSET,
                    anchor,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => anchor,
                    Err(won) => won,
                };
            }
        }
        let mut chunks: Vec<Vec<(String, u64)>> = vec![Vec::new(); s.rings.len()];
        let (mut n_accepted, mut n_late, mut n_ahead) = (0u64, 0u64, 0u64);
        let mut future_max: Option<u64> = None;
        let mut wal_buf: Vec<u8> = Vec::new();
        // One routing-table read lock per batch, one table lookup per
        // *distinct* label within it (the scratch short-circuits
        // repeats).
        let router = s.router.read().expect("router lock never poisoned");
        let mut scratch = RouteScratch::new();
        for (path, t) in records.drain(..) {
            let unit = t / s.timeunit;
            let outcome =
                if wm == UNSET || unit > s.max_unit || unit > wm.saturating_add(s.max_ahead) {
                    n_ahead += 1;
                    Admission::TooFarAhead
                } else if unit < wm {
                    n_late += 1;
                    Admission::Late
                } else {
                    n_accepted += 1;
                    if unit > wm {
                        future_max = Some(future_max.map_or(unit, |m| m.max(unit)));
                    }
                    if s.wal.is_some() {
                        encode_record(&mut wal_buf, &path, t);
                    }
                    chunks[scratch.route(&router, &path)].push((path, t));
                    Admission::Accepted
                };
            outcomes.push(outcome);
        }
        drop(router);
        // Log the accepted records before any ring sees them: a record
        // a worker processed but the WAL missed could be acknowledged
        // yet lost on restart. The append fails the whole batch before
        // anything was enqueued, so nothing half-durable leaks — the
        // batch is refused whole and admission pauses (not closes)
        // until a later append or fsync succeeds, so a disk hiccup
        // degrades to `ERR wal` replies instead of ending the daemon.
        if n_accepted > 0 {
            if let Some(wal) = &s.wal {
                if let Err(e) = wal.append_batch_raw(&wal_buf, n_accepted as u32) {
                    s.wal_paused.store(true, Ordering::SeqCst);
                    s.wal_errors.fetch_add(1, Ordering::SeqCst);
                    return Err(CoreError::WalUnavailable(format!("WAL append failed: {e}")));
                }
            }
        }
        // Enqueue while still holding the gate: this is what guarantees
        // records admitted against watermark `wm` precede any barrier
        // that closes `wm` in ring order (see the module docs).
        for (idx, chunk) in chunks.into_iter().enumerate() {
            if chunk.is_empty() {
                continue;
            }
            s.queued[idx].fetch_add(chunk.len() as u64, Ordering::SeqCst);
            let msg = ShardMsg::Records { wm, recs: chunk };
            let delivered = match &s.telem {
                Some(t) => match s.rings[idx].push_timing_stall(msg) {
                    Some(stall) => {
                        // Only backpressure stalls are interesting; an
                        // uncontended hand-off records nothing.
                        if stall > 0 {
                            t.ring_stall.record(stall);
                        }
                        true
                    }
                    None => false,
                },
                None => s.rings[idx].push(msg),
            };
            if !delivered {
                // Only an abandoned ring (engine torn down mid-push)
                // refuses; report the closure.
                return Err(CoreError::Closed);
            }
        }
        if n_accepted > 0 {
            s.admitted.fetch_add(n_accepted, Ordering::SeqCst);
            let _ = s.first_admit_nanos.compare_exchange(
                0,
                s.nanos_now(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        if n_late > 0 {
            s.late.fetch_add(n_late, Ordering::SeqCst);
        }
        if n_ahead > 0 {
            s.ahead.fetch_add(n_ahead, Ordering::SeqCst);
        }
        if let Some(fm) = future_max {
            s.ahead_max.fetch_max(fm + 1, Ordering::SeqCst);
            let _ = s.first_future_nanos.compare_exchange(
                0,
                s.nanos_now(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        if let (Some(t0), Some(t)) = (t_admit, &s.telem) {
            t.admit.record_duration(t0.elapsed());
        }
        Ok(())
    }

    /// Admits one record (see [`IngestHandle::admit_batch`], which the
    /// hot path should prefer).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Closed`] once the engine is draining or
    /// gone.
    pub fn admit(&self, path: &str, t_secs: u64) -> Result<Admission, CoreError> {
        let mut records = vec![(path.to_string(), t_secs)];
        let mut outcomes = Vec::with_capacity(1);
        self.admit_batch(&mut records, &mut outcomes)?;
        Ok(outcomes[0])
    }

    /// The open (not yet closed) timeunit, `None` until the first
    /// record anchors the stream.
    pub fn watermark(&self) -> Option<u64> {
        match self.shared.watermark.load(Ordering::SeqCst) {
            UNSET => None,
            wm => Some(wm),
        }
    }

    /// Timeunit size Δ in seconds.
    pub fn timeunit_secs(&self) -> u64 {
        self.shared.timeunit
    }

    /// Number of shards records are routed over.
    pub fn shard_count(&self) -> usize {
        self.shared.rings.len()
    }

    /// The configured ahead-of-watermark admission bound in units.
    pub fn max_ahead_units(&self) -> u64 {
        self.shared.max_ahead
    }

    /// `true` once the engine is draining or gone (admissions error).
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::SeqCst)
    }

    /// `true` once a shard error poisoned a worker (admissions are
    /// closed; the serving layer should drain and checkpoint — the
    /// poisoned shard keeps its last good state).
    pub fn is_poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::SeqCst)
    }

    /// Pauses (`true`) or resumes (`false`) admission on WAL trouble:
    /// while paused every batch is refused with
    /// [`CoreError::WalUnavailable`]. A failed append sets the pause
    /// itself; the serving layer sets it on a failed fsync and clears
    /// it once a sync succeeds again. No-op teardown-wise — the engine
    /// stays live throughout.
    pub fn set_wal_paused(&self, paused: bool) {
        self.shared.wal_paused.store(paused, Ordering::SeqCst);
    }

    /// `true` while admission is refusing batches over WAL trouble.
    pub fn is_wal_paused(&self) -> bool {
        self.shared.wal_paused.load(Ordering::SeqCst)
    }

    /// Batches refused because the WAL could not append or admission
    /// was WAL-paused.
    pub fn wal_errors(&self) -> u64 {
        self.shared.wal_errors.load(Ordering::SeqCst)
    }

    /// Counts one WAL failure observed outside the admission path (the
    /// serving layer's fsync tick), so `wal_errors` reflects every
    /// refusal-causing incident in one gauge.
    pub fn count_wal_error(&self) {
        self.shared.wal_errors.fetch_add(1, Ordering::SeqCst);
    }

    /// Records accepted so far.
    pub fn admitted(&self) -> u64 {
        self.shared.admitted.load(Ordering::SeqCst)
    }

    /// Records dropped as late (unit already closed).
    pub fn late(&self) -> u64 {
        self.shared.late.load(Ordering::SeqCst)
    }

    /// Records dropped for exceeding the ahead-of-watermark bound.
    pub fn ahead(&self) -> u64 {
        self.shared.ahead.load(Ordering::SeqCst)
    }

    /// Largest future (ahead-of-watermark) unit with an admitted record
    /// still held back, `None` if none — the serving layer's
    /// data-watermark close target.
    pub fn ahead_max_unit(&self) -> Option<u64> {
        match self.shared.ahead_max.load(Ordering::SeqCst) {
            0 => None,
            v => Some(v - 1),
        }
    }

    /// How long ago the oldest outstanding future record arrived —
    /// `None` when nothing is held back. Drives the grace window.
    pub fn first_future_age(&self) -> Option<Duration> {
        self.shared.age_of(&self.shared.first_future_nanos)
    }

    /// How long ago the first record was accepted (`None` before any).
    pub fn first_admit_age(&self) -> Option<Duration> {
        self.shared.age_of(&self.shared.first_admit_nanos)
    }

    /// Records queued in each shard's ring, not yet ingested by its
    /// worker (the per-shard backlog gauge).
    pub fn ring_depths(&self) -> Vec<u64> {
        self.shared.queued.iter().map(|q| q.load(Ordering::SeqCst)).collect()
    }

    /// Records counted into each shard's open unit so far.
    pub fn shard_open_records(&self) -> Vec<u64> {
        self.shared.open_records.iter().map(|q| q.load(Ordering::SeqCst)).collect()
    }

    /// Future records stashed per shard awaiting their unit.
    pub fn stashed_records(&self) -> Vec<u64> {
        self.shared.stashed.iter().map(|q| q.load(Ordering::SeqCst)).collect()
    }

    /// Label moves (explicit pins plus adaptive rebalances) applied at
    /// epoch barriers so far.
    pub fn rebalances(&self) -> u64 {
        self.shared.rebalances.load(Ordering::SeqCst)
    }

    /// Labels currently pinned in the routing table (the adaptive
    /// override count; hash-routed labels are not counted).
    pub fn pinned_labels(&self) -> u64 {
        self.shared.router.read().expect("router lock never poisoned").pinned_count() as u64
    }

    /// Worst/mean per-shard load ratio of the last measured epoch
    /// (`1.0` = perfectly balanced, `0.0` = not yet measured).
    pub fn shard_balance(&self) -> f64 {
        self.shared.balance_milli.load(Ordering::SeqCst) as f64 / 1000.0
    }
}

/// A cloneable, read-only handle onto a live engine's merged
/// [`ReportStore`] — the read path of the serving stack.
///
/// Obtained from [`LiveSharded::reader`] and safe to hand to any
/// number of query threads: readers share a read-mostly `RwLock` whose
/// write side is taken only for the brief per-close merge, and the
/// admission hot path never touches the lock at all. The handle keeps
/// working after the engine is drained ([`LiveSharded::finish`]),
/// still serving the retained history.
#[derive(Clone)]
pub struct ReportReader {
    store: Arc<RwLock<ReportStore>>,
    /// Disk-backed archive of evicted history (`None` without a data
    /// dir): events the retention budget spilled out of RAM, still
    /// reachable through [`ReportReader::query_merged`].
    segments: Option<Arc<SegmentStore>>,
}

impl ReportReader {
    /// Runs `f` against the store under the read lock. Keep `f` short
    /// (collect what you need and return); the lock is held for its
    /// duration and blocks the next close merge — though never record
    /// admission.
    pub fn with<R>(&self, f: impl FnOnce(&ReportStore) -> R) -> R {
        f(&self.store.read().expect("report lock never poisoned"))
    }

    /// The disk-backed archive tier, if this reader has one.
    pub fn archive(&self) -> Option<&SegmentStore> {
        self.segments.as_deref()
    }

    /// The combined read-path query across both tiers: archived
    /// segments answer the portion of `[from_unit, to_unit]`
    /// (inclusive) older than the RAM store's retained range, the RAM
    /// store answers the rest, and the concatenation preserves
    /// `(unit, path)` order. Without an archive this is exactly
    /// [`ReportStore::query`]. The tiers are disjoint by construction
    /// — the archive is only consulted below
    /// [`ReportStore::retained_from`], and retention evicts whole unit
    /// blocks only after they were spilled — so no event is returned
    /// twice or silently lost during the handoff.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Durability`] when reading the archive
    /// fails (missing file, CRC mismatch).
    pub fn query_merged(
        &self,
        from_unit: u64,
        to_unit: u64,
        prefix: Option<&CategoryPath>,
        level: Option<usize>,
        limit: usize,
    ) -> Result<Vec<AnomalyEvent>, CoreError> {
        let mut out: Vec<AnomalyEvent> = Vec::new();
        if let Some(seg) = &self.segments {
            let ram_from = self.with(|s| s.retained_from());
            if from_unit < ram_from {
                let pfx = prefix.map(|p| p.to_string());
                out = seg
                    .query(
                        from_unit,
                        to_unit.min(ram_from.saturating_sub(1)),
                        pfx.as_deref(),
                        level,
                        limit,
                    )
                    .map_err(|e| CoreError::Durability(format!("segment query failed: {e}")))?;
            }
        }
        if out.len() < limit {
            let room = limit - out.len();
            out.extend(self.with(|s| {
                s.query(from_unit, to_unit, prefix, level, room)
                    .into_iter()
                    .cloned()
                    .collect::<Vec<_>>()
            }));
        }
        Ok(out)
    }
}

impl std::fmt::Debug for ReportReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (len, next_seq) = self.with(|s| (s.len(), s.next_seq()));
        f.debug_struct("ReportReader").field("retained", &len).field("next_seq", &next_seq).finish()
    }
}

/// Owned state of a running live engine (present until
/// [`LiveSharded::finish`] or drop tears it down).
struct LiveInner {
    shared: Arc<FrontShared>,
    workers: Vec<JoinHandle<Box<Tiresias>>>,
    acks: Receiver<ShardAck>,
    builder: TiresiasBuilder,
    /// The merged report store, shared with every [`ReportReader`]:
    /// the back-end writes at closes, readers query concurrently.
    store: Arc<RwLock<ReportStore>>,
    /// Disk-backed archive the retention budget spills into (`None`
    /// without a data dir). With a spill tier, eviction is two-phase:
    /// stage the over-budget prefix, persist it, only then free it.
    spill: Option<Arc<SegmentStore>>,
    pending: Vec<AnomalyEvent>,
    busy_nanos: Vec<u64>,
    router_nanos: u64,
    seq: u64,
    units_done: u64,
    /// Skew-adaptive rebalancer policy (runtime configuration, carried
    /// back into the reassembled engine by `finish`).
    rebalance: RebalanceConfig,
    /// The hot-label sketch, move counter and balance gauge.
    bal: Balancer,
    /// Explicit `pin_label` requests awaiting the next close.
    pending_pins: Vec<(String, u32)>,
    /// Per-label loads gathered from the latest barrier's acks.
    epoch_loads: Vec<(String, f64)>,
    /// `units_done` at the last epoch measurement, so a close that
    /// advanced nothing does not re-measure.
    measured_units: u64,
}

/// The serialized close/report back-end of a live sharded engine.
///
/// All methods take `&mut self` (or `self`): closes, merges, metrics
/// snapshots and the final drain are exclusive by design — only record
/// **admission** is concurrent, through [`LiveSharded::handle`]'s
/// cloneable [`IngestHandle`]s.
///
/// # Example
///
/// ```
/// use tiresias_core::{TiresiasBuilder, DEFAULT_MAX_AHEAD_UNITS};
///
/// let engine = TiresiasBuilder::new()
///     .timeunit_secs(900)
///     .window_len(96)
///     .threshold(5.0)
///     .season_length(4)
///     .sensitivity(2.8, 8.0)
///     .warmup_units(8)
///     .shards(4)
///     .build_sharded()?
///     .into_live(DEFAULT_MAX_AHEAD_UNITS)?;
/// let handle = engine.handle();
///
/// // Session threads clone `handle` and admit concurrently; a
/// // scheduler thread owns `engine` and flips timeunit boundaries.
/// let mut engine = engine;
/// let mut batch: Vec<(String, u64)> = Vec::new();
/// for t in 0..12u64 {
///     let burst = if t == 11 { 80 } else { 8 };
///     for i in 0..burst {
///         batch.push(("TV/No Service".to_string(), t * 900 + i));
///     }
/// }
/// let mut outcomes = Vec::new();
/// handle.admit_batch(&mut batch, &mut outcomes)?;
/// engine.close_to(12)?;
/// assert!(engine.anomalies().iter().any(|a| a.path.to_string() == "TV/No Service"));
/// let checkpointable = engine.finish()?; // a plain ShardedTiresias again
/// assert_eq!(checkpointable.current_unit(), Some(12));
/// # Ok::<(), tiresias_core::CoreError>(())
/// ```
pub struct LiveSharded {
    inner: Option<LiveInner>,
}

impl std::fmt::Debug for LiveSharded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.as_ref();
        f.debug_struct("LiveSharded")
            .field("shards", &inner.map_or(0, |i| i.workers.len()))
            .field("units_done", &inner.map_or(0, |i| i.units_done))
            .finish()
    }
}

impl LiveSharded {
    /// Splits `engine` into the live front-end/back-end pair (the
    /// implementation behind [`ShardedTiresias::into_live`]).
    pub(crate) fn from_engine(
        mut engine: ShardedTiresias,
        max_ahead_units: u64,
        wal: Option<Arc<Wal>>,
        telemetry: bool,
    ) -> Result<LiveSharded, CoreError> {
        // Every unit the scheduler can derive from an admissible
        // watermark must stay below the sentinel and multiply by the
        // timeunit without overflow.
        let timeunit = engine.timeunit_secs().max(1);
        let max_unit = (u64::MAX / timeunit).saturating_sub(max_ahead_units.saturating_add(2));
        if engine.current_unit().is_some_and(|open| open > max_unit) {
            return Err(CoreError::InvalidConfig(format!(
                "engine watermark exceeds the largest admissible timeunit {max_unit} \
                 (timeunit {timeunit} s, max_ahead {max_ahead_units}); the stream was \
                 anchored on an absurd timestamp — restart without the checkpoint"
            )));
        }
        // Align every shard to the engine watermark so the workers
        // resume from one well-defined open unit (a no-op for engines
        // checkpointed by a drain, which always aligns).
        if let Some(open) = engine.current_unit() {
            engine.advance_to(open * engine.timeunit_secs())?;
        }
        let units_done = engine.units_processed();
        let parts = engine.into_parts();
        let n = parts.shards.len();
        let telem = telemetry.then(EngineTelemetry::new);
        if let (Some(t), Some(wal)) = (&telem, &wal) {
            wal.set_telemetry(Arc::clone(&t.wal_append), Arc::clone(&t.wal_fsync));
        }
        let shared = Arc::new(FrontShared {
            router: RwLock::new(parts.router),
            timeunit: parts.builder.timeunit_secs,
            max_ahead: max_ahead_units,
            max_unit,
            gate: RwLock::new(()),
            watermark: AtomicU64::new(parts.open_unit.unwrap_or(UNSET)),
            closed: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            wal_paused: AtomicBool::new(false),
            wal_errors: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            late: AtomicU64::new(0),
            ahead: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            balance_milli: AtomicU64::new(0),
            ahead_max: AtomicU64::new(0),
            first_future_nanos: AtomicU64::new(0),
            first_admit_nanos: AtomicU64::new(0),
            t0: Instant::now(),
            rings: (0..n).map(|_| ShardRing::new(LIVE_RING_CAPACITY)).collect(),
            queued: (0..n).map(|_| AtomicU64::new(0)).collect(),
            open_records: parts
                .shards
                .iter()
                .map(|s| AtomicU64::new(s.open_records() as u64))
                .collect(),
            stashed: (0..n).map(|_| AtomicU64::new(0)).collect(),
            wal,
            telem,
        });
        let (tx, rx) = channel();
        let workers = parts
            .shards
            .into_iter()
            .enumerate()
            .map(|(idx, shard)| {
                let shared = Arc::clone(&shared);
                let tx: Sender<ShardAck> = tx.clone();
                std::thread::spawn(move || run_worker(idx, Box::new(shard), &shared, &tx))
            })
            .collect();
        Ok(LiveSharded {
            inner: Some(LiveInner {
                shared,
                workers,
                acks: rx,
                builder: parts.builder,
                store: Arc::new(RwLock::new(parts.store)),
                spill: None,
                pending: parts.pending,
                busy_nanos: parts.busy_nanos,
                router_nanos: parts.router_nanos,
                seq: 0,
                units_done,
                rebalance: parts.rebalance,
                bal: Balancer::default(),
                pending_pins: Vec::new(),
                epoch_loads: Vec::new(),
                measured_units: units_done,
            }),
        })
    }

    fn inner(&self) -> &LiveInner {
        self.inner.as_ref().expect("live engine present until finish")
    }

    /// A new front-end handle (clone one per session thread).
    pub fn handle(&self) -> IngestHandle {
        IngestHandle { shared: Arc::clone(&self.inner().shared) }
    }

    /// The engine's hot-path latency histograms — `None` when the
    /// engine was built untelemetered. Cheap to clone (a handful of
    /// `Arc`s); the serving layer registers them into its exported
    /// [`tiresias_telemetry::Registry`].
    pub fn telemetry(&self) -> Option<EngineTelemetry> {
        self.inner().shared.telem.clone()
    }

    /// The open (not yet closed) timeunit.
    pub fn watermark(&self) -> Option<u64> {
        match self.inner().shared.watermark.load(Ordering::SeqCst) {
            UNSET => None,
            wm => Some(wm),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner().workers.len()
    }

    /// Timeunits fully processed, as of the last close (every shard
    /// agrees between barriers — closes only happen at barriers).
    pub fn units_processed(&self) -> u64 {
        self.inner().units_done
    }

    /// A snapshot of the retained merged anomaly stream,
    /// `(unit, path)`-ordered, complete through the last
    /// [`LiveSharded::close_to`]. Event node ids refer to the store's
    /// report tree, exactly as in the offline engine. For lock-held
    /// querying without the copy, use [`LiveSharded::reader`].
    pub fn anomalies(&self) -> Vec<AnomalyEvent> {
        self.inner().store.read().expect("report lock never poisoned").events().to_vec()
    }

    /// A cloneable read handle onto the merged report store. Readers
    /// (query sessions, subscribers catching up, metrics) take the
    /// read side of a read-mostly lock; only timeunit closes take the
    /// write side, and record admission never touches it — queries
    /// never stall admission. The handle stays valid (and keeps
    /// serving the retained history) after [`LiveSharded::finish`].
    pub fn reader(&self) -> ReportReader {
        ReportReader {
            store: Arc::clone(&self.inner().store),
            segments: self.inner().spill.clone(),
        }
    }

    /// Attaches a disk-backed archive tier: from now on, retention
    /// eviction is two-phase (spill the over-budget prefix into `seg`,
    /// then free it from RAM), and readers obtained **after** this
    /// call answer queries across both tiers. Call before handing out
    /// [`LiveSharded::reader`]s.
    pub fn set_spill(&mut self, seg: Arc<SegmentStore>) {
        let inner = self.inner.as_mut().expect("live engine present until finish");
        if let Some(t) = &inner.shared.telem {
            seg.set_telemetry(Arc::clone(&t.spill));
        }
        inner.spill = Some(seg);
    }

    /// Sets the report store's retention budget, spill-aware: with an
    /// archive tier attached, any immediately over-budget history is
    /// spilled to disk before it is freed (the plain
    /// [`ReportStore::set_retention`] would evict it inline and drop
    /// it).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Durability`] when the spill fails; the
    /// over-budget history then stays in RAM.
    pub fn set_retention(&mut self, units: Option<u64>) -> Result<(), CoreError> {
        let inner = self.inner.as_mut().expect("live engine present until finish");
        let mut store = inner.store.write().expect("report lock never poisoned");
        store.set_retention_deferred(units);
        spill_and_apply(inner.spill.as_deref(), &mut store)
    }

    /// Flips the epoch barrier: every unit in `[watermark, target)`
    /// closes on all shards (in parallel), `target` becomes the open
    /// unit, and the newly final anomalies are merged into
    /// [`LiveSharded::anomalies`]. Clamped — `target` at or below the
    /// watermark closes nothing. Returns the new open unit (`None`
    /// while no record ever anchored the stream).
    ///
    /// Admissions stall only for the microseconds the gate is held to
    /// flip the watermark and enqueue barrier messages; the shard
    /// closes themselves run without the gate, concurrently with new
    /// admissions (which now land in `target` or later).
    ///
    /// # Errors
    ///
    /// Propagates the first shard error (the engine keeps serving
    /// metrics but that shard stops ingesting; callers should drain).
    pub fn close_to(&mut self, target: u64) -> Result<Option<u64>, CoreError> {
        let inner = self.inner.as_mut().expect("live engine present until finish");
        let seq = {
            let s = &*inner.shared;
            let _g = s.gate.write().expect("gate never poisoned");
            let wm = s.watermark.load(Ordering::SeqCst);
            if wm == UNSET {
                return Ok(None);
            }
            if target <= wm {
                return Ok(Some(wm));
            }
            // Log the barrier before flipping the watermark: replay
            // must close exactly the units the original run closed
            // (closing an empty unit can itself emit Drop anomalies),
            // and a close the WAL missed would diverge. On failure the
            // watermark stays put — the close simply did not happen,
            // and like a failed batch append it pauses admission
            // (recoverable) rather than ending the engine: the
            // scheduler retries the close on a later tick.
            if let Some(wal) = &s.wal {
                if let Err(e) = wal.append_close(target) {
                    s.wal_paused.store(true, Ordering::SeqCst);
                    s.wal_errors.fetch_add(1, Ordering::SeqCst);
                    return Err(CoreError::WalUnavailable(format!("WAL close append failed: {e}")));
                }
            }
            inner.seq += 1;
            s.watermark.store(target, Ordering::SeqCst);
            // Ahead-of-watermark tracking restarts: stashes at or below
            // `target` are about to be fed; workers report what remains
            // in their acks, and admissions concurrently re-add.
            s.ahead_max.store(0, Ordering::SeqCst);
            s.first_future_nanos.store(0, Ordering::SeqCst);
            for ring in &s.rings {
                ring.push(ShardMsg::Barrier { seq: inner.seq, from: wm, target });
            }
            inner.seq
        };
        // Every unit below `target` is now closed on every shard.
        match collect_acks(inner, seq, Some(target - 1))? {
            Some(shard_err) => Err(shard_err),
            None => {
                // All shards are aligned on `target` and their acks
                // carried the closed epoch's loads: the one safe point
                // to apply pins and adaptive moves, exactly like the
                // offline engine's barrier hook.
                rebalance_at_barrier(inner)?;
                Ok(Some(target))
            }
        }
    }

    /// Sets the skew-adaptive rebalancer policy (takes effect at the
    /// next [`LiveSharded::close_to`] barrier). Policy is runtime
    /// configuration and is not checkpointed — only the learned
    /// placement (the router's override table) persists.
    pub fn set_rebalance(&mut self, config: RebalanceConfig) {
        self.inner.as_mut().expect("live engine present until finish").rebalance = config;
    }

    /// Requests that top-level label `label` be owned by `shard`. The
    /// move — routing-table pin plus subtree state transplant between
    /// the owning workers — happens inside the next
    /// [`LiveSharded::close_to`], under the admission gate. Output is
    /// unaffected: the moved subtree's detector state and stashed
    /// future records move with it.
    pub fn pin_label(&mut self, label: &str, shard: usize) {
        self.inner
            .as_mut()
            .expect("live engine present until finish")
            .pending_pins
            .push((label.to_string(), shard as u32));
    }

    /// Label moves applied so far (explicit pins that changed ownership
    /// plus automatic rebalances).
    pub fn rebalances(&self) -> u64 {
        self.inner().bal.rebalances
    }

    /// Worst/mean per-shard load ratio of the last measured epoch
    /// (1.0 = perfectly balanced, 0.0 = not yet measured).
    pub fn shard_balance(&self) -> f64 {
        self.inner().bal.last_balance
    }

    /// Labels currently pinned in the routing table.
    pub fn pinned_labels(&self) -> usize {
        self.inner().shared.router.read().expect("router lock never poisoned").pinned_count()
    }

    /// Stops admissions without draining: every handle starts
    /// returning [`CoreError::Closed`], while metrics and the final
    /// [`LiveSharded::finish`] keep working. A serving layer calls
    /// this on a fatal shard error so no more records are
    /// acknowledged against an engine that can no longer ingest them.
    pub fn close_admissions(&mut self) {
        let inner = self.inner.as_ref().expect("live engine present until finish");
        let _g = inner.shared.gate.write().expect("gate never poisoned");
        inner.shared.closed.store(true, Ordering::SeqCst);
    }

    /// Drains and dissolves the live engine: every ring and stash is
    /// fed (closing exactly the units the data itself closes — the
    /// last unit stays **open**, so a checkpoint resumes mid-unit),
    /// workers exit returning their shards, and a plain
    /// [`ShardedTiresias`] is reassembled for checkpointing or further
    /// offline use. Admissions return [`CoreError::Closed`] from the
    /// moment the drain begins — an accepted record is never lost.
    ///
    /// A shard that errors while feeding its stash (or that was
    /// already poisoned) keeps its **last good state** and the
    /// reassembly still succeeds — a serving layer checkpointing on
    /// shutdown keeps everything every healthy shard ingested instead
    /// of losing the whole engine.
    ///
    /// # Errors
    ///
    /// Fails only on protocol-level breakage (a worker vanished
    /// without acknowledging the drain); the engine state is dropped
    /// in that case.
    pub fn finish(mut self) -> Result<ShardedTiresias, CoreError> {
        let mut inner = self.inner.take().expect("finish called once");
        let (seq, align) = {
            let s = &*inner.shared;
            let _g = s.gate.write().expect("gate never poisoned");
            s.closed.store(true, Ordering::SeqCst);
            let wm = s.watermark.load(Ordering::SeqCst);
            inner.seq += 1;
            let align = (wm != UNSET).then(|| match s.ahead_max.load(Ordering::SeqCst) {
                0 => wm,
                v => (v - 1).max(wm),
            });
            for ring in &s.rings {
                ring.push(ShardMsg::Drain { seq: inner.seq, from: wm, align });
            }
            (inner.seq, align)
        };
        // Shard errors reported by the drain acks leave those shards at
        // their last good state; only protocol failures abort. The
        // drain leaves `align` open, so units below it are closed.
        let ack_result =
            collect_acks(&mut inner, seq, align.and_then(|a| a.checked_sub(1))).map(|_| ());
        let mut shards: Vec<Tiresias> = Vec::with_capacity(inner.workers.len());
        let mut worker_vanished = false;
        for handle in inner.workers.drain(..) {
            match handle.join() {
                Ok(shard) => shards.push(*shard),
                Err(_) => worker_vanished = true,
            }
        }
        ack_result?;
        if worker_vanished {
            return Err(CoreError::Closed);
        }
        let open_unit = match inner.shared.watermark.load(Ordering::SeqCst) {
            UNSET => None,
            wm => {
                // The drain may have advanced past the watermark (held
                // future records define the final open unit, exactly
                // like the offline drain).
                Some(shards.iter().filter_map(Tiresias::current_unit).max().unwrap_or(wm))
            }
        };
        // Clone the store out rather than unwrapping the Arc: readers
        // obtained before the drain stay valid and keep serving the
        // retained history after the engine dissolves.
        let store = inner.store.read().expect("report lock never poisoned").clone();
        let router = inner.shared.router.read().expect("router lock never poisoned").clone();
        Ok(ShardedTiresias::from_parts(ShardedParts {
            builder: inner.builder,
            router,
            shards,
            store,
            pending: Vec::new(),
            open_unit,
            busy_nanos: inner.busy_nanos,
            router_nanos: inner.router_nanos,
            rebalance: inner.rebalance,
        }))
    }
}

impl Drop for LiveSharded {
    /// Tears down an unfinished engine without feeding stashes: rings
    /// are finished (workers drain their backlog and exit) and joined,
    /// and handles start returning [`CoreError::Closed`]. Prefer
    /// [`LiveSharded::finish`], which also feeds held-back records and
    /// returns the checkpointable engine.
    fn drop(&mut self) {
        let Some(mut inner) = self.inner.take() else { return };
        {
            let _g = inner.shared.gate.write().expect("gate never poisoned");
            inner.shared.closed.store(true, Ordering::SeqCst);
            for ring in &inner.shared.rings {
                ring.finish();
            }
        }
        for h in inner.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// How long the back-end waits for one shard's barrier ack before
/// giving up. A healthy worker acks as soon as its backlog is
/// processed; only a vanished (panicked) worker ever exhausts this, in
/// which case an error beats the alternative — blocking the scheduler
/// forever.
const ACK_TIMEOUT: Duration = Duration::from_secs(60);

/// Collects one ack per shard for barrier `seq`, merges their events
/// into the store in `(unit, path)` order, records the close (driving
/// retention eviction) and rebuilds the ahead tracking from the
/// surviving stashes. The outer `Result` is protocol health (a worker
/// vanished); the inner `Option` is the first shard error reported by
/// an ack.
fn collect_acks(
    inner: &mut LiveInner,
    seq: u64,
    closed_to: Option<u64>,
) -> Result<Option<CoreError>, CoreError> {
    let mut first_err: Option<CoreError> = None;
    let mut min_units = u64::MAX;
    let mut seen = 0;
    while seen < inner.workers.len() {
        let ack = inner.acks.recv_timeout(ACK_TIMEOUT).map_err(|_| CoreError::Closed)?;
        // A stale ack (an earlier barrier that timed out before its
        // slow worker answered) still carries real events and errors —
        // merge and latch them — but only acks of *this* barrier count
        // toward completion, or a drain would mistake leftovers for
        // its own acknowledgements and leave real ones unread.
        inner.pending.extend(ack.events);
        if let Some(e) = ack.error {
            first_err.get_or_insert(e);
        }
        if ack.seq != seq {
            continue;
        }
        seen += 1;
        min_units = min_units.min(ack.units_processed);
        inner.epoch_loads.extend(ack.loads);
        if let Some(u) = ack.stash_max {
            inner.shared.ahead_max.fetch_max(u + 1, Ordering::SeqCst);
            let now = inner.shared.nanos_now();
            let _ = inner.shared.first_future_nanos.compare_exchange(
                0,
                now,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }
    inner.units_done = min_units;
    // Every pending event's unit is now closed on every shard, so the
    // whole buffer releases — in the same deterministic order as the
    // offline merge; the store re-homes each event onto its report
    // tree. The write lock is held only for this merge; readers
    // resume the moment it drops.
    let t_merge = inner.shared.telem.as_ref().map(|_| Instant::now());
    inner.pending.sort_by(|a, b| (a.unit, &a.path).cmp(&(b.unit, &b.path)));
    {
        let mut store = inner.store.write().expect("report lock never poisoned");
        for event in inner.pending.drain(..) {
            store.insert(event);
        }
        if let Some(unit) = closed_to {
            store.record_closed(unit);
            if let Err(e) = spill_and_apply(inner.spill.as_deref(), &mut store) {
                // The over-budget history stays in RAM (never
                // drop-then-spill); admissions close so no further
                // records are acknowledged against a store that can no
                // longer bound itself durably.
                inner.shared.poisoned.store(true, Ordering::SeqCst);
                inner.shared.closed.store(true, Ordering::SeqCst);
                first_err.get_or_insert(e);
            }
        }
    }
    if let (Some(t0), Some(t)) = (t_merge, &inner.shared.telem) {
        t.merge.record_duration(t0.elapsed());
    }
    Ok(first_err)
}

/// Applies pending pins and — when adaptive rebalancing is enabled —
/// the greedy plan for the epoch the just-collected barrier acks
/// measured. Each move transplants a top-level subtree (detector state
/// plus stashed future records) between its two worker threads through
/// an [`ShardMsg::Extract`]/[`ShardMsg::Adopt`] pair, then repoints the
/// routing table.
///
/// The whole transplant runs under the **write gate**: no admission is
/// in flight, so a record can never reach the old owner after its
/// subtree left (which would re-seed the label there and split its
/// series). Records admitted *before* the gate was acquired precede the
/// `Extract` in ring order and land in the source shard's open unit or
/// stash — both of which migrate with the subtree — so the merged
/// output stays byte-identical to static routing.
fn rebalance_at_barrier(inner: &mut LiveInner) -> Result<(), CoreError> {
    let mut moves = std::mem::take(&mut inner.pending_pins);
    let loads = std::mem::take(&mut inner.epoch_loads);
    if inner.units_done > inner.measured_units && inner.workers.len() > 1 {
        inner.measured_units = inner.units_done;
        let router = inner.shared.router.read().expect("router lock never poisoned");
        moves.extend(inner.bal.measure(loads, &router, &inner.rebalance));
        drop(router);
        inner
            .shared
            .balance_milli
            .store((inner.bal.last_balance * 1000.0).round() as u64, Ordering::SeqCst);
    }
    if moves.is_empty() {
        return Ok(());
    }
    let s = &*inner.shared;
    let _g = s.gate.write().expect("gate never poisoned");
    if s.poisoned.load(Ordering::SeqCst) {
        // A shard that stopped advancing is no longer aligned with the
        // others; transplanting against it could only corrupt the last
        // good state the final checkpoint wants to keep.
        return Ok(());
    }
    for (label, shard) in moves {
        let h = first_segment_hash(&label);
        if h == 0 {
            continue;
        }
        let to = (shard as usize).min(inner.workers.len() - 1);
        let from = {
            let mut router = s.router.write().expect("router lock never poisoned");
            let from = router.route_hash(h);
            router.pin(&label, to as u32);
            from
        };
        if from == to {
            continue;
        }
        let (tx, rx) = channel();
        if !s.rings[from].push(ShardMsg::Extract { hash: h, reply: tx }) {
            return Err(CoreError::Closed);
        }
        let migration = rx.recv_timeout(ACK_TIMEOUT).map_err(|_| CoreError::Closed)?;
        if migration.state.is_empty() && migration.stash.is_empty() {
            continue;
        }
        let moved_state = !migration.state.is_empty();
        if !s.rings[to].push(ShardMsg::Adopt { migration }) {
            return Err(CoreError::Closed);
        }
        if moved_state {
            inner.bal.rebalances += 1;
        }
    }
    s.rebalances.store(inner.bal.rebalances, Ordering::SeqCst);
    Ok(())
}

/// The two-phase retention handoff: persist the over-budget prefix
/// into the spill tier (if any), and free it from RAM only once the
/// spill succeeded. Without a spill tier this is plain retention
/// eviction. On spill failure the prefix stays in RAM — an event is
/// never unreachable during the handoff.
fn spill_and_apply(spill: Option<&SegmentStore>, store: &mut ReportStore) -> Result<(), CoreError> {
    if let Some(seg) = spill {
        let staged = {
            let (first_seq, slice) = store.over_budget_prefix();
            if slice.is_empty() {
                Ok(0)
            } else {
                seg.spill(first_seq, slice)
            }
        };
        if let Err(e) = staged {
            return Err(CoreError::Durability(format!("segment spill failed: {e}")));
        }
    }
    store.apply_retention();
    Ok(())
}

/// One shard's worker loop: ingest admission chunks, stash future
/// records, close at barriers, drain and exit. The worker owns its
/// [`Tiresias`] outright — no lock is ever taken around shard state.
///
/// A shard error **poisons** the worker: further records are dropped,
/// every subsequent ack repeats the error (the back-end latches the
/// first), and the shard's last good state survives for the final
/// checkpoint — mirroring the serving layer's fatal-error policy.
fn run_worker(
    idx: usize,
    mut shard: Box<Tiresias>,
    shared: &FrontShared,
    acks: &Sender<ShardAck>,
) -> Box<Tiresias> {
    let ring = &shared.rings[idx];
    // Any exit — normal drain, teardown, or a panic unwinding out of a
    // shard call — abandons the ring, so a producer blocked on a full
    // ring (possibly holding the gate's read lock) always unblocks
    // with `false` instead of wedging the whole engine.
    let _unblock_producers = crate::ring::AbandonOnDrop(ring);
    let timeunit = shared.timeunit;
    let mut stash: Vec<(String, u64)> = Vec::new();
    let mut cursor = shard.store().next_seq();
    let mut poison: Option<CoreError> = None;
    // An error is acknowledged exactly once: the back-end latches it as
    // fatal, and the *next* barrier (typically the shutdown drain) then
    // completes cleanly so the shard's last good state still reaches
    // the checkpoint.
    let mut reported = false;
    // `pop` returns `None` only when the back-end was dropped without
    // a drain.
    while let Some(msg) = ring.pop() {
        match msg {
            ShardMsg::Records { wm, recs } => {
                let n = recs.len() as u64;
                if poison.is_none() && shard.current_unit().is_none() {
                    // First traffic on this shard: `wm` is the stream
                    // anchor (any later watermark would have been
                    // preceded by an aligning barrier in ring order).
                    if let Err(e) = shard.advance_to(wm * timeunit) {
                        poison_shard(shared, &mut poison, e);
                    }
                }
                if poison.is_none() {
                    let open = shard.current_unit().expect("aligned above");
                    for (path, t) in recs {
                        if t / timeunit > open {
                            stash.push((path, t));
                        } else if let Err(e) = shard.push_str(&path, t) {
                            poison_shard(shared, &mut poison, e);
                            break;
                        }
                    }
                }
                shared.queued[idx].fetch_sub(n, Ordering::SeqCst);
                update_gauges(idx, &shard, &stash, shared);
            }
            ShardMsg::Barrier { seq, from, target } => {
                if poison.is_none() {
                    let t0 = shared.telem.as_ref().map(|_| Instant::now());
                    if let Err(e) = close_shard(&mut shard, &mut stash, from, target, timeunit) {
                        poison_shard(shared, &mut poison, e);
                    }
                    if let (Some(t0), Some(t)) = (t0, &shared.telem) {
                        t.close.record_duration(t0.elapsed());
                    }
                }
                update_gauges(idx, &shard, &stash, shared);
                let error = if reported { None } else { poison.clone() };
                reported = poison.is_some();
                // A healthy shard reports the closed epoch's per-label
                // loads with its ack — the rebalancer's measurement.
                let loads =
                    if poison.is_none() { shard.top_level_unit_loads() } else { Vec::new() };
                let _ = acks.send(make_ack(
                    seq,
                    &mut shard,
                    &stash,
                    &mut cursor,
                    loads,
                    error,
                    timeunit,
                ));
            }
            ShardMsg::Extract { hash, reply } => {
                // Sent only under the held write gate after this
                // shard's barrier ack: aligned, and nothing in flight.
                // A poisoned shard keeps its last good state instead —
                // it may no longer be aligned with the adopter.
                let state = if poison.is_none() {
                    shard.extract_subtrees(|l| first_segment_hash(l) == hash)
                } else {
                    shard.extract_subtrees(|_| false)
                };
                let mut moved: Vec<(String, u64)> = Vec::new();
                if poison.is_none() {
                    stash.retain_mut(|entry| {
                        let migrate = first_segment_hash(&entry.0) == hash;
                        if migrate {
                            moved.push(std::mem::take(entry));
                        }
                        !migrate
                    });
                }
                update_gauges(idx, &shard, &stash, shared);
                let _ = reply.send(Migration { state, stash: moved });
            }
            ShardMsg::Adopt { migration } => {
                if !migration.state.is_empty() {
                    shard.adopt_subtrees(migration.state);
                }
                stash.extend(migration.stash);
                update_gauges(idx, &shard, &stash, shared);
            }
            ShardMsg::Drain { seq, from, align } => {
                if poison.is_none() {
                    if let Some(align) = align {
                        if let Err(e) = close_shard(&mut shard, &mut stash, from, align, timeunit) {
                            poison_shard(shared, &mut poison, e);
                        }
                    }
                }
                update_gauges(idx, &shard, &stash, shared);
                let error = if reported { None } else { poison.clone() };
                let _ = acks.send(make_ack(
                    seq,
                    &mut shard,
                    &stash,
                    &mut cursor,
                    Vec::new(),
                    error,
                    timeunit,
                ));
                break;
            }
        }
    }
    shard
}

/// Records a shard error and closes admissions engine-wide: a broken
/// shard must not keep acknowledging records it will silently drop, so
/// every handle starts returning [`CoreError::Closed`] immediately —
/// the serving layer sees [`IngestHandle::is_poisoned`] and drains.
/// (Lock-free on purpose: a worker must never wait on the gate, or a
/// producer blocked on this worker's full ring would deadlock it.)
fn poison_shard(shared: &FrontShared, slot: &mut Option<CoreError>, e: CoreError) {
    if slot.is_none() {
        *slot = Some(e);
        shared.poisoned.store(true, Ordering::SeqCst);
        shared.closed.store(true, Ordering::SeqCst);
    }
}

/// Closes units `[from, target)` on one shard: align a never-touched
/// shard to `from`, feed the stashed records whose unit is due (unit
/// order, letting the data close intermediate units exactly as the
/// offline engine's `push_batch` would), then advance to `target`.
fn close_shard(
    shard: &mut Tiresias,
    stash: &mut Vec<(String, u64)>,
    from: u64,
    target: u64,
    timeunit: u64,
) -> Result<(), CoreError> {
    if shard.current_unit().is_none() {
        shard.advance_to(from * timeunit)?;
    }
    stash.sort_by_key(|&(_, t)| t / timeunit);
    let due = stash.partition_point(|&(_, t)| t / timeunit <= target);
    for (path, t) in stash.drain(..due) {
        shard.push_str(&path, t)?;
    }
    shard.advance_to(target * timeunit)
}

fn update_gauges(idx: usize, shard: &Tiresias, stash: &[(String, u64)], shared: &FrontShared) {
    shared.open_records[idx].store(shard.open_records() as u64, Ordering::SeqCst);
    shared.stashed[idx].store(stash.len() as u64, Ordering::SeqCst);
}

fn make_ack(
    seq: u64,
    shard: &mut Tiresias,
    stash: &[(String, u64)],
    cursor: &mut u64,
    loads: Vec<(String, f64)>,
    error: Option<CoreError>,
    timeunit: u64,
) -> ShardAck {
    // Per-shard synthetic root events (level 0) are dropped, exactly as
    // the offline merge drops them (the shard root is not invariant).
    let (_skipped, tail) = shard.store().events_from(*cursor);
    let new: Vec<AnomalyEvent> = tail.iter().filter(|e| e.level >= 1).cloned().collect();
    *cursor = shard.store().next_seq();
    // This ack is the shard store's only consumer: truncate behind the
    // cursor so worker-owned stores stay bounded however long the
    // daemon runs.
    shard.store_mut().discard_through(*cursor);
    ShardAck {
        seq,
        events: new,
        stash_max: stash.iter().map(|&(_, t)| t / timeunit).max(),
        units_processed: shard.units_processed(),
        loads,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TiresiasBuilder;

    fn builder() -> TiresiasBuilder {
        TiresiasBuilder::new()
            .timeunit_secs(900)
            .window_len(32)
            .threshold(5.0)
            .season_length(4)
            .sensitivity(2.0, 5.0)
            .warmup_units(4)
            .ref_levels(2)
    }

    fn burst_batch(paths: &[&str], units: u64, burst_unit: u64) -> Vec<(String, u64)> {
        let mut batch = Vec::new();
        for u in 0..units {
            for (k, p) in paths.iter().enumerate() {
                let count = if u == burst_unit && k == 0 { 80 } else { 8 };
                for i in 0..count {
                    batch.push((p.to_string(), u * 900 + i));
                }
            }
        }
        batch
    }

    fn offline_replay(records: &[(String, u64)], shards: usize, close_to: u64) -> ShardedTiresias {
        let mut engine = builder().shards(shards).build_sharded().unwrap();
        engine.push_batch(records).unwrap();
        engine.advance_to(close_to * 900).unwrap();
        engine
    }

    #[test]
    fn live_matches_offline_replay() {
        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead", "Mail/Bounce"];
        let records = burst_batch(&paths, 10, 9);
        let offline = offline_replay(&records, 4, 10);
        assert!(!offline.anomalies().is_empty(), "the burst is detected");

        let mut live = builder()
            .shards(4)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        let handle = live.handle();
        let mut outcomes = Vec::new();
        // Admit in small chunks, closing progressively like a
        // scheduler would.
        for (i, chunk) in records.chunks(97).enumerate() {
            let mut owned: Vec<(String, u64)> = chunk.to_vec();
            handle.admit_batch(&mut owned, &mut outcomes).unwrap();
            assert!(outcomes.iter().all(|&o| o == Admission::Accepted));
            if i % 3 == 2 {
                let target = chunk.last().unwrap().1 / 900;
                live.close_to(target).unwrap();
            }
        }
        live.close_to(10).unwrap();
        assert_eq!(live.anomalies(), offline.anomalies());
        assert_eq!(live.units_processed(), offline.units_processed());
        assert_eq!(live.watermark(), Some(10));

        let finished = live.finish().unwrap();
        assert_eq!(finished.anomalies(), offline.anomalies());
        assert_eq!(finished.heavy_hitter_paths(), offline.heavy_hitter_paths());
        assert_eq!(finished.tree_paths(), offline.tree_paths());
        assert_eq!(finished.current_unit(), Some(10));
    }

    #[test]
    fn future_records_stash_until_their_unit_opens() {
        let mut live = builder()
            .shards(2)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        let handle = live.handle();
        assert_eq!(handle.admit("a/x", 10).unwrap(), Admission::Accepted);
        assert_eq!(handle.admit("a/x", 5 * 900).unwrap(), Admission::Accepted, "5 units ahead");
        assert_eq!(handle.ahead_max_unit(), Some(5));
        assert!(handle.first_future_age().is_some());
        // Nothing closed yet: the future record is stashed, not fed.
        assert_eq!(live.units_processed(), 0);
        // Closing through the future unit feeds it; intermediate units
        // close as zero-count units exactly like the offline engine.
        live.close_to(5).unwrap();
        assert_eq!(live.units_processed(), 5);
        assert_eq!(handle.ahead_max_unit(), None, "stash fully consumed");
        let offline =
            offline_replay(&[("a/x".to_string(), 10), ("a/x".to_string(), 5 * 900)], 2, 5);
        let finished = live.finish().unwrap();
        assert_eq!(finished.anomalies(), offline.anomalies());
        assert_eq!(finished.units_processed(), offline.units_processed());
    }

    #[test]
    fn late_and_ahead_records_are_counted_exactly() {
        let mut live = builder().shards(2).build_sharded().unwrap().into_live(100).unwrap();
        let handle = live.handle();
        assert_eq!(handle.max_ahead_units(), 100);
        assert_eq!(handle.admit("a/x", 900).unwrap(), Admission::Accepted, "anchors at unit 1");
        assert_eq!(handle.admit("a/x", 10).unwrap(), Admission::Late, "unit 0 precedes anchor");
        assert_eq!(
            handle.admit("a/x", 102 * 900).unwrap(),
            Admission::TooFarAhead,
            "101 units ahead of the open unit exceeds the bound"
        );
        assert_eq!(handle.admit("a/x", 101 * 900).unwrap(), Admission::Accepted, "the boundary");
        live.close_to(2).unwrap();
        assert_eq!(handle.admit("a/x", 950).unwrap(), Admission::Late, "unit 1 closed now");
        assert_eq!(handle.admitted(), 2);
        assert_eq!(handle.late(), 2);
        assert_eq!(handle.ahead(), 1);
        // u64::MAX never anchors and never admits.
        assert_eq!(handle.admit("a/x", u64::MAX).unwrap(), Admission::TooFarAhead);
        drop(live);
        assert!(handle.is_closed());
        assert!(matches!(handle.admit("a/x", 2000), Err(CoreError::Closed)));
    }

    #[test]
    fn idle_shard_aligns_to_the_stream_anchor() {
        // Find two labels on different shards of a 2-shard router.
        let router = ShardRouter::new(2);
        let a = (0..64).map(|i| format!("a{i}/x")).find(|p| router.route(p) == 0).unwrap();
        let b = (0..64).map(|i| format!("b{i}/x")).find(|p| router.route(p) == 1).unwrap();
        let mut records: Vec<(String, u64)> = Vec::new();
        for u in 0..6u64 {
            for i in 0..8 {
                records.push((a.clone(), u * 900 + i));
            }
        }
        // Shard 1 sees nothing until unit 6: it must still have closed
        // units 0..6 as zero-count units, like the offline replay.
        for u in 6..10u64 {
            for i in 0..8 {
                records.push((a.clone(), u * 900 + i));
                records.push((b.clone(), u * 900 + i));
            }
        }
        let offline = offline_replay(&records, 2, 10);

        let mut live = builder()
            .shards(2)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        let handle = live.handle();
        let mut outcomes = Vec::new();
        let split = records.iter().position(|&(_, t)| t >= 6 * 900).unwrap();
        let mut first: Vec<(String, u64)> = records[..split].to_vec();
        handle.admit_batch(&mut first, &mut outcomes).unwrap();
        live.close_to(6).unwrap();
        let mut second: Vec<(String, u64)> = records[split..].to_vec();
        handle.admit_batch(&mut second, &mut outcomes).unwrap();
        live.close_to(10).unwrap();

        let finished = live.finish().unwrap();
        assert_eq!(finished.anomalies(), offline.anomalies());
        assert_eq!(finished.units_processed(), offline.units_processed());
        assert_eq!(finished.tree_paths(), offline.tree_paths());
    }

    #[test]
    fn finished_engine_checkpoints_and_resumes_identically() {
        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead"];
        let records = burst_batch(&paths, 10, 8);
        let split = records.iter().position(|&(_, t)| t >= 6 * 900).unwrap();
        let offline = offline_replay(&records, 4, 10);

        // Phase one: live, drained mid-stream, serialised.
        let mut live = builder()
            .shards(4)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        let handle = live.handle();
        let mut outcomes = Vec::new();
        let mut first: Vec<(String, u64)> = records[..split].to_vec();
        handle.admit_batch(&mut first, &mut outcomes).unwrap();
        live.close_to(4).unwrap();
        let drained = live.finish().unwrap();
        let json = serde_json::to_string(&drained).expect("serialises");
        drop(drained);

        // Phase two: resumed live, fed the rest.
        let resumed: ShardedTiresias = serde_json::from_str(&json).expect("deserialises");
        let mut live = resumed.into_live(DEFAULT_MAX_AHEAD_UNITS).unwrap();
        let handle = live.handle();
        let mut second: Vec<(String, u64)> = records[split..].to_vec();
        handle.admit_batch(&mut second, &mut outcomes).unwrap();
        live.close_to(10).unwrap();
        let finished = live.finish().unwrap();

        assert_eq!(finished.anomalies(), offline.anomalies());
        assert_eq!(finished.heavy_hitter_paths(), offline.heavy_hitter_paths());
        assert_eq!(finished.units_processed(), offline.units_processed());
        assert!(!finished.anomalies().is_empty(), "the burst is detected");
    }

    #[test]
    fn concurrent_handles_agree_with_offline_replay() {
        let paths = ["a/x", "b/y", "c/z", "d/w", "e/v", "f/u"];
        let records = burst_batch(&paths, 8, 7);
        let mut live = builder()
            .shards(4)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        // Anchor deterministically before the race.
        assert_eq!(live.handle().admit(&records[0].0, records[0].1).unwrap(), Admission::Accepted);
        std::thread::scope(|scope| {
            for c in 0..8usize {
                let handle = live.handle();
                let records = &records[1..];
                scope.spawn(move || {
                    let mut outcomes = Vec::new();
                    for chunk in records.iter().skip(c).step_by(8).collect::<Vec<_>>().chunks(13) {
                        let mut owned: Vec<(String, u64)> =
                            chunk.iter().map(|&r| r.clone()).collect();
                        handle.admit_batch(&mut owned, &mut outcomes).unwrap();
                        assert!(outcomes.iter().all(|&o| o == Admission::Accepted));
                    }
                });
            }
        });
        assert_eq!(live.handle().admitted(), records.len() as u64);
        live.close_to(8).unwrap();
        let finished = live.finish().unwrap();
        let offline = offline_replay(&records, 4, 8);
        assert_eq!(finished.anomalies(), offline.anomalies());
        assert_eq!(finished.heavy_hitter_paths(), offline.heavy_hitter_paths());
        assert_eq!(finished.tree_paths(), offline.tree_paths());
    }

    #[test]
    fn gauges_track_rings_and_open_units() {
        let mut live = builder()
            .shards(2)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        let handle = live.handle();
        assert_eq!(handle.shard_count(), 2);
        assert_eq!(handle.timeunit_secs(), 900);
        assert_eq!(handle.ring_depths(), vec![0, 0]);
        handle.admit("a/x", 10).unwrap();
        handle.admit("b/y", 20).unwrap();
        handle.admit("a/x", 2 * 900).unwrap(); // future: stashed
        live.close_to(1).unwrap(); // barrier ⇒ workers fully caught up
        assert_eq!(handle.ring_depths(), vec![0, 0], "rings drained past the barrier");
        assert_eq!(handle.shard_open_records().iter().sum::<u64>(), 0, "open unit reset");
        assert_eq!(handle.stashed_records().iter().sum::<u64>(), 1, "future record held");
        assert!(handle.first_admit_age().is_some());
        assert_eq!(handle.admitted(), 3);
        assert_eq!(live.units_processed(), 1);
        let finished = live.finish().unwrap();
        assert_eq!(finished.current_unit(), Some(2), "drain opened the stashed unit");
    }

    #[test]
    fn absurd_first_timestamps_cannot_anchor_or_overflow() {
        // timeunit 1 s makes unit == timestamp, the worst case for the
        // sentinel/overflow guards.
        let mut live = TiresiasBuilder::new()
            .timeunit_secs(1)
            .window_len(8)
            .threshold(5.0)
            .season_length(4)
            .sensitivity(2.0, 5.0)
            .warmup_units(2)
            .shards(2)
            .build_sharded()
            .unwrap()
            .into_live(10)
            .unwrap();
        let handle = live.handle();
        assert_eq!(
            handle.admit("a/x", u64::MAX).unwrap(),
            Admission::TooFarAhead,
            "a sentinel-range timestamp must not anchor the stream"
        );
        assert_eq!(handle.watermark(), None);
        assert_eq!(handle.ahead(), 1);
        // A sane record then anchors normally and closes still work.
        assert_eq!(handle.admit("a/x", 5).unwrap(), Admission::Accepted);
        assert_eq!(handle.watermark(), Some(5));
        assert_eq!(live.close_to(6).unwrap(), Some(6));
        assert_eq!(live.units_processed(), 1);
    }

    #[test]
    fn empty_engine_finishes_clean() {
        let live = builder()
            .shards(3)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        assert_eq!(live.watermark(), None);
        let finished = live.finish().unwrap();
        assert_eq!(finished.current_unit(), None);
        assert_eq!(finished.units_processed(), 0);
        assert!(finished.anomalies().is_empty());
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tiresias-live-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn wal_replay_reconstructs_the_acked_stream() {
        use crate::wal::{read_wal, WalEntry, WalSyncPolicy, DEFAULT_WAL_SEGMENT_BYTES};

        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead"];
        let records = burst_batch(&paths, 10, 9);
        let dir = tempdir("wal-replay");

        // First life: a durable live engine admits in chunks with
        // interleaved closes, then is dropped without a drain — the
        // crash shape. Everything acked is in the WAL.
        let (wal, rec) =
            Wal::open(&dir, WalSyncPolicy::EveryBatch, DEFAULT_WAL_SEGMENT_BYTES).unwrap();
        assert!(rec.entries.is_empty());
        let mut live = builder()
            .shards(4)
            .build_sharded()
            .unwrap()
            .into_live_durable(DEFAULT_MAX_AHEAD_UNITS, Some(Arc::new(wal)))
            .unwrap();
        let handle = live.handle();
        let mut outcomes = Vec::new();
        for (i, chunk) in records.chunks(101).enumerate() {
            let mut owned: Vec<(String, u64)> = chunk.to_vec();
            handle.admit_batch(&mut owned, &mut outcomes).unwrap();
            if i % 2 == 1 {
                live.close_to(chunk.last().unwrap().1 / 900).unwrap();
            }
        }
        live.close_to(10).unwrap();
        let expected = live.anomalies();
        assert!(!expected.is_empty(), "the burst is detected");
        drop(live);

        // Second life: replay the recovered WAL entries through a
        // fresh live engine, in order — batches re-admit, closes
        // re-close. The merged stream must match exactly.
        let recovered = read_wal(&dir).unwrap();
        assert!(!recovered.repaired(), "clean log");
        let mut live = builder()
            .shards(4)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        let handle = live.handle();
        for entry in recovered.entries {
            match entry {
                WalEntry::Batch { mut records, .. } => {
                    handle.admit_batch(&mut records, &mut outcomes).unwrap();
                    assert!(outcomes.iter().all(|&o| o == Admission::Accepted));
                }
                WalEntry::Close { target, .. } => {
                    live.close_to(target).unwrap();
                }
            }
        }
        assert_eq!(live.anomalies(), expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_append_failure_pauses_admission_without_closing_the_engine() {
        use crate::wal::WalSyncPolicy;

        let dir = tempdir("wal-pause");
        // 1-byte segments force a rotation (a new file in `dir`) on
        // every append, so deleting the directory makes the next
        // append fail like a dying disk would.
        let (wal, _) = Wal::open(&dir, WalSyncPolicy::Never, 1).unwrap();
        let mut live = builder()
            .shards(2)
            .build_sharded()
            .unwrap()
            .into_live_durable(DEFAULT_MAX_AHEAD_UNITS, Some(Arc::new(wal)))
            .unwrap();
        let handle = live.handle();
        let mut outcomes = Vec::new();
        let mut batch = vec![("TV/NoService".to_string(), 5u64)];
        handle.admit_batch(&mut batch, &mut outcomes).unwrap();

        std::fs::remove_dir_all(&dir).unwrap();
        let mut batch = vec![("TV/NoService".to_string(), 6u64)];
        let err = handle.admit_batch(&mut batch, &mut outcomes).unwrap_err();
        assert!(matches!(err, CoreError::WalUnavailable(_)), "{err}");
        assert!(!handle.is_closed(), "a WAL hiccup is not a teardown");
        assert!(!handle.is_poisoned());
        assert!(handle.is_wal_paused());
        assert_eq!(handle.wal_errors(), 1);

        // While paused, batches refuse up front without touching the
        // log (and keep counting).
        let mut batch = vec![("TV/NoService".to_string(), 7u64)];
        let err = handle.admit_batch(&mut batch, &mut outcomes).unwrap_err();
        assert!(matches!(err, CoreError::WalUnavailable(_)), "{err}");
        assert_eq!(handle.wal_errors(), 2);

        // The disk comes back and the serving layer clears the pause:
        // admission resumes on the same live engine — nothing was
        // drained or restarted.
        std::fs::create_dir_all(&dir).unwrap();
        handle.set_wal_paused(false);
        let mut batch = vec![("TV/NoService".to_string(), 8u64)];
        handle.admit_batch(&mut batch, &mut outcomes).unwrap();
        assert_eq!(outcomes, [Admission::Accepted]);
        assert_eq!(handle.admitted(), 2, "only the logged records were acknowledged");
        live.close_to(1).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_spills_to_segments_and_reader_merges_tiers() {
        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead", "Mail/Bounce"];
        // Burst early (unit 6) so its events age past the 2-unit
        // retention budget by the time unit 12 closes — forcing a
        // spill to the archive tier.
        let records = burst_batch(&paths, 12, 6);
        let dir = tempdir("spill");

        // Unbounded reference: every event the stream produces.
        let offline = offline_replay(&records, 4, 12);
        let all_events = offline.anomalies().to_vec();
        assert!(!all_events.is_empty());

        let mut live = builder()
            .shards(4)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        let seg =
            Arc::new(SegmentStore::open(&dir, crate::segments::DEFAULT_SEGMENT_BYTES).unwrap());
        live.set_spill(Arc::clone(&seg));
        live.set_retention(Some(2)).unwrap();
        let reader = live.reader();
        let handle = live.handle();
        let mut outcomes = Vec::new();
        for chunk in records.chunks(257) {
            let mut owned: Vec<(String, u64)> = chunk.to_vec();
            handle.admit_batch(&mut owned, &mut outcomes).unwrap();
            live.close_to(chunk.last().unwrap().1 / 900).unwrap();
        }
        live.close_to(12).unwrap();

        // RAM holds only the retention budget; the rest was spilled,
        // not dropped.
        let (ram_from, ram_len) = reader.with(|s| (s.retained_from(), s.len()));
        assert!(ram_from > 0, "eviction happened");
        assert!(seg.next_seq() > 0, "spill happened");
        assert!(ram_len < all_events.len());

        // The merged query sees the full history, in order, across
        // both tiers — byte-identical to the unbounded replay.
        let merged = reader.query_merged(0, 12, None, None, usize::MAX).unwrap();
        assert_eq!(merged, all_events);

        // Tier boundary is clean: the archive answers only below
        // `retained_from`, RAM only at or above it.
        assert!(merged.iter().filter(|e| e.unit < ram_from).count() > 0);
        let disk_only = reader.query_merged(0, ram_from - 1, None, None, usize::MAX).unwrap();
        assert!(disk_only.iter().all(|e| e.unit < ram_from));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_rebalancing_matches_offline_replay() {
        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead", "Mail/Bounce", "Web/500"];
        // Skewed: the first label dominates, so the adaptive rebalancer
        // has real moves to make at nearly every barrier.
        let mut records: Vec<(String, u64)> = Vec::new();
        for u in 0..12u64 {
            for (k, p) in paths.iter().enumerate() {
                let count = if k == 0 {
                    60
                } else if u == 10 && k == 1 {
                    90
                } else {
                    6
                };
                for i in 0..count {
                    records.push((p.to_string(), u * 900 + i));
                }
            }
        }
        let offline = offline_replay(&records, 4, 12);
        assert!(!offline.anomalies().is_empty(), "the burst is detected");

        let mut live = builder()
            .shards(4)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        live.set_rebalance(RebalanceConfig::enabled().with_threshold(1.05));
        let handle = live.handle();
        let mut outcomes = Vec::new();
        for (i, chunk) in records.chunks(151).enumerate() {
            let mut owned: Vec<(String, u64)> = chunk.to_vec();
            handle.admit_batch(&mut owned, &mut outcomes).unwrap();
            assert!(outcomes.iter().all(|&o| o == Admission::Accepted));
            if i % 2 == 1 {
                live.close_to(chunk.last().unwrap().1 / 900).unwrap();
            }
        }
        live.close_to(12).unwrap();
        assert!(live.rebalances() > 0, "the skew forced moves");
        assert!(live.pinned_labels() > 0);
        assert!(live.shard_balance() >= 1.0);
        assert_eq!(live.anomalies(), offline.anomalies());

        // The reassembled engine checkpoints with the learned placement.
        let finished = live.finish().unwrap();
        assert!(finished.router().pinned_count() > 0);
        assert_eq!(finished.anomalies(), offline.anomalies());
        assert_eq!(finished.heavy_hitter_paths(), offline.heavy_hitter_paths());
        assert_eq!(finished.tree_paths(), offline.tree_paths());
    }

    #[test]
    fn live_pins_transplant_subtrees_and_stashes() {
        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead", "Mail/Bounce"];
        let records = burst_batch(&paths, 10, 9);
        // The reference stream includes the future record the live run
        // admits out of band below (inserted in unit order, as the
        // offline batch contract requires).
        let mut offline_records = records.clone();
        let pos = offline_records.iter().position(|&(_, t)| t >= 7 * 900).unwrap();
        offline_records.insert(pos, ("TV/NoService".to_string(), 7 * 900));
        let offline = offline_replay(&offline_records, 2, 10);

        let mut live = builder()
            .shards(2)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        let handle = live.handle();
        let mut outcomes = Vec::new();
        let split = records.iter().position(|&(_, t)| t >= 5 * 900).unwrap();
        let mut first: Vec<(String, u64)> = records[..split].to_vec();
        handle.admit_batch(&mut first, &mut outcomes).unwrap();
        // A stashed future record for a label about to move migrates
        // with its subtree.
        assert_eq!(handle.admit("TV/NoService", 7 * 900).unwrap(), Admission::Accepted);
        // Consolidate everything onto shard 1 mid-stream.
        for label in ["TV", "Net", "Phone", "Mail"] {
            live.pin_label(label, 1);
        }
        live.close_to(5).unwrap();
        assert!(live.rebalances() > 0);
        assert_eq!(live.pinned_labels(), 4);
        let mut second: Vec<(String, u64)> = records[split..].to_vec();
        handle.admit_batch(&mut second, &mut outcomes).unwrap();
        live.close_to(10).unwrap();

        let finished = live.finish().unwrap();
        assert_eq!(finished.anomalies(), offline.anomalies());
        assert_eq!(finished.heavy_hitter_paths(), offline.heavy_hitter_paths());
        assert_eq!(finished.tree_paths(), offline.tree_paths());
        assert!(!finished.anomalies().is_empty(), "the burst is detected");
    }

    #[test]
    fn close_before_any_record_is_a_noop() {
        let mut live = builder()
            .shards(2)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap();
        assert_eq!(live.close_to(5).unwrap(), None);
        let handle = live.handle();
        handle.admit("a/x", 0).unwrap();
        assert_eq!(live.close_to(0).unwrap(), Some(0), "clamped: nothing below the watermark");
        assert_eq!(live.units_processed(), 0);
    }
}
