//! Crash-safe write-ahead log of admitted work.
//!
//! Every record batch the live front-end **acknowledges** — and every
//! timeunit close the scheduler performs — is appended here as one
//! length-prefixed, CRC32-guarded frame *before* the acknowledgement
//! becomes observable. Restart therefore replays exactly the acked
//! prefix: `checkpoint + WAL replay = the engine state the clients were
//! promised`.
//!
//! # Frame format
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. The payload starts with a
//! kind byte:
//!
//! * `0x01` **Batch** — `seq: u64 LE`, `count: u32 LE`, then per
//!   record `t_secs: u64 LE`, `path_len: u16 LE`, `path: UTF-8 bytes`.
//! * `0x02` **Close** — `seq: u64 LE`, `target_unit: u64 LE` (the
//!   `close_to` argument: close every unit `< target`).
//!
//! Sequence numbers start at 1 and increase by one per frame, across
//! segment rotations; a gap or regression is treated as corruption.
//!
//! # Ordering contract
//!
//! Batch frames are appended while the admission path still holds the
//! front-end's **read gate**, and close frames while `close_to` holds
//! the **write gate** — so the log order is consistent with the
//! watermark-flip order the engine actually executed, and replaying
//! the frames through a live engine reproduces the same late/ahead
//! classification, the same unit placement and the same anomalies.
//!
//! # Recovery
//!
//! [`Wal::open`] scans the `wal-<first_seq>.log` segments in order and
//! stops at the first frame whose length, CRC or sequence number does
//! not check out: the file is truncated at that offset and any later
//! segment files are deleted. A torn tail write (the expected artifact
//! of `kill -9` mid-append) therefore costs at most the frames that
//! were never durably acknowledged — it is tolerated, not fatal.
//!
//! # Sync policy
//!
//! [`WalSyncPolicy`] trades acked throughput against the data-loss
//! window: `every` fsyncs per appended frame (no acked record is ever
//! lost), `interval:<ms>` fsyncs at most that often plus on every
//! rotation (bounded loss window), `none` leaves flushing to the OS.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use tiresias_telemetry::Histogram;

/// Frame kind byte of a batch frame.
const KIND_BATCH: u8 = 0x01;
/// Frame kind byte of a close frame.
const KIND_CLOSE: u8 = 0x02;
/// Byte length of a frame header (`len` + `crc`).
pub const FRAME_HEADER_BYTES: u64 = 8;
/// Upper bound on a single frame payload; anything larger is treated
/// as corruption during recovery (a real batch frame is bounded by the
/// server's flush size, far below this).
const MAX_FRAME_BYTES: u32 = 64 << 20;

/// IEEE CRC-32 (the zlib/PNG polynomial), table-driven. Shared with
/// the segment tier so both on-disk formats carry the same checksum.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// When the WAL flushes appended frames to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSyncPolicy {
    /// `fsync` after every appended frame: an acknowledged record is
    /// never lost, at the cost of one disk flush per batch.
    EveryBatch,
    /// `fsync` at most once per interval (and on segment rotation):
    /// bounded data-loss window, near-`none` throughput.
    Interval(Duration),
    /// Never `fsync` explicitly; the OS flushes when it pleases.
    Never,
}

impl WalSyncPolicy {
    /// Default flush interval of the `interval` policy.
    pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(200);
}

impl std::str::FromStr for WalSyncPolicy {
    type Err = String;

    /// Parses the CLI spelling: `every`, `none`, `interval` or
    /// `interval:<ms>`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "every" => Ok(WalSyncPolicy::EveryBatch),
            "none" => Ok(WalSyncPolicy::Never),
            "interval" => Ok(WalSyncPolicy::Interval(Self::DEFAULT_INTERVAL)),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| WalSyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("invalid interval `{ms}` (milliseconds expected)")),
                None => {
                    Err(format!("unknown sync policy `{other}` (every | interval[:ms] | none)"))
                }
            },
        }
    }
}

impl std::fmt::Display for WalSyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalSyncPolicy::EveryBatch => write!(f, "every"),
            WalSyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            WalSyncPolicy::Never => write!(f, "none"),
        }
    }
}

/// One recovered (or dumped) WAL frame.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// An acknowledged record batch, in admission order.
    Batch {
        /// Frame sequence number.
        seq: u64,
        /// The acked records: `(category path, timestamp seconds)`.
        records: Vec<(String, u64)>,
    },
    /// A timeunit close the scheduler performed.
    Close {
        /// Frame sequence number.
        seq: u64,
        /// The `close_to` target: every unit `< target` closed.
        target: u64,
    },
}

impl WalEntry {
    /// The frame's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalEntry::Batch { seq, .. } | WalEntry::Close { seq, .. } => *seq,
        }
    }
}

/// What [`Wal::open`] found on disk: the intact frame prefix plus an
/// account of any torn tail it repaired.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Every intact frame, in log order.
    pub entries: Vec<WalEntry>,
    /// Bytes truncated off the first corrupt frame's file (0 = clean).
    pub torn_bytes: u64,
    /// The file that carried the corruption, if any.
    pub corrupt_file: Option<PathBuf>,
    /// Segment files deleted because they followed the corruption.
    pub dropped_files: usize,
}

impl WalRecovery {
    /// Highest intact sequence number (0 = empty log).
    pub fn last_seq(&self) -> u64 {
        self.entries.last().map_or(0, WalEntry::seq)
    }

    /// True when recovery repaired a torn tail or dropped files.
    pub fn repaired(&self) -> bool {
        self.corrupt_file.is_some()
    }
}

/// Mutable tail state, guarded by one mutex: append-side only — the
/// hot admission path takes it briefly per *batch*, never per record.
#[derive(Debug)]
struct WalInner {
    file: File,
    /// Bytes written to the current segment file.
    segment_len: u64,
    /// First sequence number of the current segment (names the file).
    segment_first_seq: u64,
    /// Next frame sequence number to assign.
    next_seq: u64,
    /// Last explicit fsync, for the interval policy.
    last_sync: Instant,
    /// Frames appended since the last fsync.
    dirty: bool,
}

/// The append-only write-ahead log. Cheap to share (`Arc<Wal>`);
/// appends serialize on an internal mutex, counters are atomic.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    policy: WalSyncPolicy,
    /// Rotate to a fresh segment file once the current one exceeds
    /// this many bytes.
    segment_bytes: u64,
    inner: Mutex<WalInner>,
    /// Total frame bytes on disk across segments (seeded from the
    /// existing files at open, then grown per append).
    bytes: AtomicU64,
    /// Explicit fsyncs performed.
    fsyncs: AtomicU64,
    /// Highest sequence number appended (0 = nothing yet).
    last_seq: AtomicU64,
    /// Segment files created over the log's lifetime that still exist.
    segments: AtomicU64,
    /// While true, appends are no-ops: set during startup replay so
    /// re-admitting recovered frames does not duplicate them.
    replaying: AtomicBool,
    /// Append-latency histogram (whole frame, including any inline
    /// policy fsync), set once by [`Wal::set_telemetry`]. Unset =
    /// untelemetered: the append path pays nothing.
    t_append: OnceLock<Arc<Histogram>>,
    /// Fsync-latency histogram (every explicit `sync_all`, wherever it
    /// happens: per-batch policy, interval tick, rotation, shutdown).
    t_fsync: OnceLock<Arc<Histogram>>,
}

/// Default WAL segment rotation threshold.
pub const DEFAULT_WAL_SEGMENT_BYTES: u64 = 64 << 20;

fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:016x}.log")
}

/// Parses `wal-<hex>.log` back into its first sequence number.
fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Best-effort directory fsync so file creations/renames survive a
/// crash (ignored on filesystems that refuse to sync directories).
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// The WAL segment files under `dir`, sorted by first sequence number.
fn segment_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(first) = entry.file_name().to_str().and_then(parse_segment_name) {
            files.push((first, entry.path()));
        }
    }
    files.sort_unstable();
    Ok(files)
}

/// Scans one segment file, appending intact frames to `entries`.
/// Returns `Ok(len)` when the whole file checks out, or
/// `Err(valid_prefix_len)` at the first corrupt frame.
fn scan_segment(
    path: &Path,
    expect_seq: &mut u64,
    entries: &mut Vec<WalEntry>,
) -> io::Result<Result<u64, u64>> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let mut off = 0usize;
    loop {
        if off == raw.len() {
            return Ok(Ok(off as u64));
        }
        if raw.len() - off < FRAME_HEADER_BYTES as usize {
            return Ok(Err(off as u64));
        }
        let len = u32::from_le_bytes(raw[off..off + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(raw[off + 4..off + 8].try_into().unwrap());
        let body_start = off + FRAME_HEADER_BYTES as usize;
        if len > MAX_FRAME_BYTES || raw.len() - body_start < len as usize {
            return Ok(Err(off as u64));
        }
        let payload = &raw[body_start..body_start + len as usize];
        if crc32(payload) != crc {
            return Ok(Err(off as u64));
        }
        match decode_payload(payload) {
            Some(entry) if entry.seq() == *expect_seq => {
                *expect_seq += 1;
                entries.push(entry);
                off = body_start + len as usize;
            }
            _ => return Ok(Err(off as u64)),
        }
    }
}

/// Decodes one CRC-verified frame payload; `None` = structurally bad.
fn decode_payload(payload: &[u8]) -> Option<WalEntry> {
    let (&kind, rest) = payload.split_first()?;
    let read_u64 = |b: &[u8], at: usize| -> Option<u64> {
        Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
    };
    match kind {
        KIND_BATCH => {
            let seq = read_u64(rest, 0)?;
            let count = u32::from_le_bytes(rest.get(8..12)?.try_into().ok()?) as usize;
            let mut records = Vec::with_capacity(count);
            let mut at = 12usize;
            for _ in 0..count {
                let t = read_u64(rest, at)?;
                let path_len =
                    u16::from_le_bytes(rest.get(at + 8..at + 10)?.try_into().ok()?) as usize;
                let path = rest.get(at + 10..at + 10 + path_len)?;
                records.push((String::from_utf8(path.to_vec()).ok()?, t));
                at += 10 + path_len;
            }
            (at == rest.len()).then_some(WalEntry::Batch { seq, records })
        }
        KIND_CLOSE => {
            let seq = read_u64(rest, 0)?;
            let target = read_u64(rest, 8)?;
            (rest.len() == 16).then_some(WalEntry::Close { seq, target })
        }
        _ => None,
    }
}

/// Reads a WAL directory without repairing it: the intact frame prefix
/// plus the torn-tail report, files untouched. This is what
/// `tiresias wal-dump` uses.
pub fn read_wal(dir: &Path) -> io::Result<WalRecovery> {
    scan_dir(dir, false)
}

fn scan_dir(dir: &Path, repair: bool) -> io::Result<WalRecovery> {
    let mut recovery = WalRecovery::default();
    let files = segment_files(dir)?;
    let mut expect_seq = match files.first() {
        Some(&(first, _)) => first,
        None => return Ok(recovery),
    };
    for (i, (first, path)) in files.iter().enumerate() {
        // A segment must start where the previous one ended; a gap
        // means the tail files are from a lost future — drop them.
        let boundary_ok = *first == expect_seq;
        let scan = if boundary_ok {
            scan_segment(path, &mut expect_seq, &mut recovery.entries)?
        } else {
            Err(0)
        };
        match scan {
            Ok(_) => {}
            Err(valid_len) => {
                let total = fs::metadata(path)?.len();
                recovery.torn_bytes = total - valid_len;
                recovery.corrupt_file = Some(path.clone());
                recovery.dropped_files = files.len() - i - 1;
                if repair {
                    if valid_len == 0 && !boundary_ok {
                        fs::remove_file(path)?;
                    } else {
                        let f = OpenOptions::new().write(true).open(path)?;
                        f.set_len(valid_len)?;
                        f.sync_all()?;
                    }
                    for (_, later) in &files[i + 1..] {
                        fs::remove_file(later)?;
                    }
                    sync_dir(dir);
                }
                break;
            }
        }
    }
    Ok(recovery)
}

impl Wal {
    /// Opens (creating if needed) the WAL under `dir`, repairing any
    /// torn tail, and returns the log handle plus everything intact on
    /// disk for replay. New appends continue after the last intact
    /// frame.
    pub fn open(
        dir: &Path,
        policy: WalSyncPolicy,
        segment_bytes: u64,
    ) -> io::Result<(Wal, WalRecovery)> {
        fs::create_dir_all(dir)?;
        let recovery = scan_dir(dir, true)?;
        let next_seq = recovery.last_seq() + 1;
        let files = segment_files(dir)?;
        let (segment_first_seq, path, fresh) = match files.last() {
            Some((first, path)) => (*first, path.clone(), false),
            None => (next_seq, dir.join(segment_name(next_seq)), true),
        };
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if fresh {
            sync_dir(dir);
        }
        let segment_len = file.seek(SeekFrom::End(0))?;
        let mut on_disk = 0u64;
        for (_, path) in &files {
            on_disk += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        }
        let wal = Wal {
            dir: dir.to_path_buf(),
            policy,
            segment_bytes: segment_bytes.max(1),
            inner: Mutex::new(WalInner {
                file,
                segment_len,
                segment_first_seq,
                next_seq,
                last_sync: Instant::now(),
                dirty: false,
            }),
            bytes: AtomicU64::new(on_disk),
            fsyncs: AtomicU64::new(0),
            last_seq: AtomicU64::new(next_seq - 1),
            segments: AtomicU64::new(files.len().max(1) as u64),
            replaying: AtomicBool::new(false),
            t_append: OnceLock::new(),
            t_fsync: OnceLock::new(),
        };
        Ok((wal, recovery))
    }

    /// While `true`, every append is a silent no-op — set around the
    /// startup replay so re-admitting recovered frames through the live
    /// engine does not write them a second time.
    pub fn set_replaying(&self, on: bool) {
        self.replaying.store(on, Ordering::SeqCst);
    }

    /// Attaches latency histograms to the log: `append` observes every
    /// frame append (including any policy-driven inline fsync),
    /// `fsync` every explicit flush. First call wins; later calls are
    /// no-ops — the log is shared by `Arc` and instrumented once by
    /// whoever assembles the telemetry registry.
    pub fn set_telemetry(&self, append: Arc<Histogram>, fsync: Arc<Histogram>) {
        let _ = self.t_append.set(append);
        let _ = self.t_fsync.set(fsync);
    }

    /// Appends one batch frame from pre-encoded record bytes (the
    /// admission path encodes records while classifying them, then
    /// logs with a single call). `records` is the concatenation of
    /// `t: u64 LE, path_len: u16 LE, path bytes` blocks. Returns the
    /// frame's sequence number (0 while replaying).
    pub fn append_batch_raw(&self, records: &[u8], count: u32) -> io::Result<u64> {
        if self.replaying.load(Ordering::SeqCst) {
            return Ok(0);
        }
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = inner.next_seq;
        let mut payload = Vec::with_capacity(13 + records.len());
        payload.push(KIND_BATCH);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&count.to_le_bytes());
        payload.extend_from_slice(records);
        self.append_frame(&mut inner, &payload)?;
        Ok(seq)
    }

    /// Appends one batch of `(path, t_secs)` records (convenience for
    /// tests and recovery tooling; the server path uses
    /// [`Wal::append_batch_raw`]).
    pub fn append_batch(&self, records: &[(String, u64)]) -> io::Result<u64> {
        let mut buf = Vec::new();
        for (path, t) in records {
            encode_record(&mut buf, path, *t);
        }
        self.append_batch_raw(&buf, records.len() as u32)
    }

    /// Appends one close frame (`close_to(target)` is about to flip the
    /// watermark). Returns the frame's sequence number (0 while
    /// replaying).
    pub fn append_close(&self, target: u64) -> io::Result<u64> {
        if self.replaying.load(Ordering::SeqCst) {
            return Ok(0);
        }
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = inner.next_seq;
        let mut payload = Vec::with_capacity(17);
        payload.push(KIND_CLOSE);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&target.to_le_bytes());
        self.append_frame(&mut inner, &payload)?;
        Ok(seq)
    }

    fn append_frame(&self, inner: &mut WalInner, payload: &[u8]) -> io::Result<()> {
        let t0 = self.t_append.get().map(|_| Instant::now());
        let result = self.append_frame_inner(inner, payload);
        if let (Some(t0), Some(hist)) = (t0, self.t_append.get()) {
            hist.record_duration(t0.elapsed());
        }
        result
    }

    fn append_frame_inner(&self, inner: &mut WalInner, payload: &[u8]) -> io::Result<()> {
        if inner.segment_len >= self.segment_bytes {
            self.rotate(inner)?;
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        inner.file.write_all(&frame)?;
        inner.segment_len += frame.len() as u64;
        inner.dirty = true;
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.last_seq.store(inner.next_seq, Ordering::SeqCst);
        inner.next_seq += 1;
        match self.policy {
            WalSyncPolicy::EveryBatch => self.sync(inner)?,
            WalSyncPolicy::Interval(d) => {
                if inner.last_sync.elapsed() >= d {
                    self.sync(inner)?;
                }
            }
            WalSyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Closes the current segment (flushed durably regardless of
    /// policy — rotation is rare) and starts `wal-<next_seq>.log`.
    fn rotate(&self, inner: &mut WalInner) -> io::Result<()> {
        self.timed_sync_all(inner)?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let first = inner.next_seq;
        let path = self.dir.join(segment_name(first));
        inner.file = OpenOptions::new().create(true).append(true).open(&path)?;
        sync_dir(&self.dir);
        inner.segment_first_seq = first;
        inner.segment_len = 0;
        inner.last_sync = Instant::now();
        inner.dirty = false;
        self.segments.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&self, inner: &mut WalInner) -> io::Result<()> {
        self.timed_sync_all(inner)?;
        inner.last_sync = Instant::now();
        inner.dirty = false;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// `sync_all` with the fsync histogram around it (when attached).
    fn timed_sync_all(&self, inner: &mut WalInner) -> io::Result<()> {
        match self.t_fsync.get() {
            Some(hist) => {
                let t0 = Instant::now();
                let result = inner.file.sync_all();
                hist.record_duration(t0.elapsed());
                result
            }
            None => inner.file.sync_all(),
        }
    }

    /// Interval-policy housekeeping: flushes pending frames if the
    /// interval elapsed. The server's scheduler calls this every tick
    /// so a quiet log still hits its loss-window bound.
    pub fn maybe_sync(&self) -> io::Result<()> {
        if let WalSyncPolicy::Interval(d) = self.policy {
            let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if inner.dirty && inner.last_sync.elapsed() >= d {
                self.sync(&mut inner)?;
            }
        }
        Ok(())
    }

    /// Flushes everything to stable storage regardless of policy.
    pub fn sync_now(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.dirty {
            self.sync(&mut inner)?;
        }
        Ok(())
    }

    /// Drops WAL segments whose every frame is `≤ upto` — they are
    /// covered by a durably saved checkpoint. The live tail segment is
    /// reset (deleted and recreated empty) when fully consumed.
    pub fn truncate_consumed(&self, upto: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let files = segment_files(&self.dir)?;
        let mut removed = 0u64;
        for window in files.windows(2) {
            let (_, ref path) = window[0];
            let (next_first, _) = window[1];
            // This segment's last frame is next_first - 1.
            if next_first <= upto + 1 {
                fs::remove_file(path)?;
                removed += 1;
            } else {
                break;
            }
        }
        if inner.next_seq <= upto + 1 && inner.segment_len > 0 {
            // The tail itself is fully consumed: restart it empty.
            let old = self.dir.join(segment_name(inner.segment_first_seq));
            let first = inner.next_seq;
            let path = self.dir.join(segment_name(first));
            fs::remove_file(&old)?;
            inner.file = OpenOptions::new().create(true).append(true).open(&path)?;
            inner.segment_first_seq = first;
            inner.segment_len = 0;
            inner.dirty = false;
        }
        sync_dir(&self.dir);
        self.segments.fetch_sub(removed, Ordering::Relaxed);
        Ok(())
    }

    /// Total frame bytes appended by this handle.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Explicit fsyncs performed by this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Highest sequence number ever appended (0 = empty log).
    pub fn last_seq(&self) -> u64 {
        self.last_seq.load(Ordering::SeqCst)
    }

    /// Live WAL segment files.
    pub fn segment_count(&self) -> u64 {
        self.segments.load(Ordering::Relaxed)
    }

    /// The configured sync policy.
    pub fn policy(&self) -> WalSyncPolicy {
        self.policy
    }
}

/// Encodes one record as the batch-frame body block
/// (`t: u64 LE, path_len: u16 LE, path bytes`). The admission path
/// calls this while classifying records so logging is one append.
pub fn encode_record(buf: &mut Vec<u8>, path: &str, t_secs: u64) {
    buf.extend_from_slice(&t_secs.to_le_bytes());
    let bytes = path.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    buf.extend_from_slice(&(len as u16).to_le_bytes());
    buf.extend_from_slice(&bytes[..len]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultFs;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tiresias-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(records: &[(&str, u64)]) -> Vec<(String, u64)> {
        records.iter().map(|(p, t)| (p.to_string(), *t)).collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sync_policy_parses_and_displays() {
        let parse = |s: &str| s.parse::<WalSyncPolicy>();
        assert_eq!(parse("every").unwrap(), WalSyncPolicy::EveryBatch);
        assert_eq!(parse("none").unwrap(), WalSyncPolicy::Never);
        assert_eq!(
            parse("interval").unwrap(),
            WalSyncPolicy::Interval(WalSyncPolicy::DEFAULT_INTERVAL)
        );
        assert_eq!(
            parse("interval:50").unwrap(),
            WalSyncPolicy::Interval(Duration::from_millis(50))
        );
        assert!(parse("interval:x").is_err());
        assert!(parse("sometimes").is_err());
        assert_eq!(parse("interval:50").unwrap().to_string(), "interval:50");
        assert_eq!(WalSyncPolicy::EveryBatch.to_string(), "every");
    }

    #[test]
    fn round_trips_batches_and_closes() {
        let dir = tempdir("roundtrip");
        let (wal, rec) = Wal::open(&dir, WalSyncPolicy::EveryBatch, 1 << 20).unwrap();
        assert!(rec.entries.is_empty());
        assert_eq!(wal.append_batch(&batch(&[("a/x", 5), ("b/y", 7)])).unwrap(), 1);
        assert_eq!(wal.append_close(1).unwrap(), 2);
        assert_eq!(wal.append_batch(&batch(&[("TV/No Service", 900)])).unwrap(), 3);
        assert_eq!(wal.last_seq(), 3);
        assert!(wal.fsyncs() >= 3, "every-batch policy fsyncs per frame");
        drop(wal);

        let (wal, rec) = Wal::open(&dir, WalSyncPolicy::EveryBatch, 1 << 20).unwrap();
        assert!(!rec.repaired());
        assert_eq!(
            rec.entries,
            vec![
                WalEntry::Batch { seq: 1, records: batch(&[("a/x", 5), ("b/y", 7)]) },
                WalEntry::Close { seq: 2, target: 1 },
                WalEntry::Batch { seq: 3, records: batch(&[("TV/No Service", 900)]) },
            ]
        );
        // Appends continue the sequence.
        assert_eq!(wal.append_close(2).unwrap(), 4);
    }

    #[test]
    fn rotates_segments_and_recovers_across_them() {
        let dir = tempdir("rotate");
        // Tiny segment budget: every frame rotates.
        let (wal, _) = Wal::open(&dir, WalSyncPolicy::Never, 8).unwrap();
        for i in 0..5u64 {
            wal.append_batch(&batch(&[("cat/x", i * 10)])).unwrap();
        }
        assert!(wal.segment_count() >= 4, "rotated: {}", wal.segment_count());
        drop(wal);
        let (_, rec) = Wal::open(&dir, WalSyncPolicy::Never, 8).unwrap();
        assert_eq!(rec.entries.len(), 5);
        assert_eq!(rec.last_seq(), 5);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tempdir("torn");
        let (wal, _) = Wal::open(&dir, WalSyncPolicy::EveryBatch, 1 << 20).unwrap();
        wal.append_batch(&batch(&[("a/x", 1)])).unwrap();
        wal.append_batch(&batch(&[("a/y", 2)])).unwrap();
        drop(wal);
        let file = segment_files(&dir).unwrap()[0].1.clone();
        let full = fs::metadata(&file).unwrap().len();
        // Tear the last frame mid-payload, as a crash mid-write would.
        FaultFs::truncate_at(&file, full - 3).unwrap();

        let (wal, rec) = Wal::open(&dir, WalSyncPolicy::EveryBatch, 1 << 20).unwrap();
        assert!(rec.repaired());
        assert_eq!(rec.entries.len(), 1, "only the intact frame survives");
        assert!(rec.torn_bytes > 0, "torn bytes accounted: {rec:?}");
        assert_eq!(rec.corrupt_file.as_deref(), Some(file.as_path()));
        // The log continues from the surviving prefix.
        assert_eq!(wal.append_batch(&batch(&[("a/z", 3)])).unwrap(), 2);
        drop(wal);
        let (_, rec) = Wal::open(&dir, WalSyncPolicy::EveryBatch, 1 << 20).unwrap();
        assert_eq!(rec.entries.len(), 2);
        assert!(!rec.repaired());
    }

    #[test]
    fn bit_flip_truncates_at_corrupt_frame() {
        let dir = tempdir("flip");
        let (wal, _) = Wal::open(&dir, WalSyncPolicy::EveryBatch, 1 << 20).unwrap();
        wal.append_batch(&batch(&[("a/x", 1)])).unwrap();
        wal.append_batch(&batch(&[("a/y", 2)])).unwrap();
        wal.append_batch(&batch(&[("a/z", 3)])).unwrap();
        drop(wal);
        let file = segment_files(&dir).unwrap()[0].1.clone();
        let frames = FaultFs::frame_offsets(&file).unwrap();
        assert_eq!(frames.len(), 3);
        // Corrupt the second frame's payload: frames 2 and 3 are lost,
        // frame 1 survives.
        FaultFs::flip_bit(&file, frames[1].0 + FRAME_HEADER_BYTES + 2, 4).unwrap();
        let (_, rec) = Wal::open(&dir, WalSyncPolicy::EveryBatch, 1 << 20).unwrap();
        assert!(rec.repaired());
        assert_eq!(rec.entries, vec![WalEntry::Batch { seq: 1, records: batch(&[("a/x", 1)]) }]);
    }

    #[test]
    fn replaying_suppresses_appends() {
        let dir = tempdir("replay");
        let (wal, _) = Wal::open(&dir, WalSyncPolicy::EveryBatch, 1 << 20).unwrap();
        wal.set_replaying(true);
        assert_eq!(wal.append_batch(&batch(&[("a/x", 1)])).unwrap(), 0);
        assert_eq!(wal.append_close(1).unwrap(), 0);
        assert_eq!(wal.last_seq(), 0);
        wal.set_replaying(false);
        assert_eq!(wal.append_batch(&batch(&[("a/x", 1)])).unwrap(), 1);
    }

    #[test]
    fn truncate_consumed_drops_checkpointed_segments() {
        let dir = tempdir("consume");
        let (wal, _) = Wal::open(&dir, WalSyncPolicy::Never, 8).unwrap();
        for i in 0..4u64 {
            wal.append_batch(&batch(&[("cat/x", i)])).unwrap();
        }
        let files_before = segment_files(&dir).unwrap().len();
        assert!(files_before >= 3);
        // A checkpoint consumed everything: the dir resets to one
        // empty tail segment and recovery finds nothing to replay.
        wal.truncate_consumed(wal.last_seq()).unwrap();
        assert_eq!(segment_files(&dir).unwrap().len(), 1);
        assert_eq!(wal.append_batch(&batch(&[("cat/y", 99)])).unwrap(), 5);
        drop(wal);
        let (_, rec) = Wal::open(&dir, WalSyncPolicy::Never, 8).unwrap();
        assert_eq!(rec.entries, vec![WalEntry::Batch { seq: 5, records: batch(&[("cat/y", 99)]) }]);
    }

    #[test]
    fn partial_truncate_keeps_unconsumed_tail() {
        let dir = tempdir("partial");
        let (wal, _) = Wal::open(&dir, WalSyncPolicy::Never, 8).unwrap();
        for i in 0..4u64 {
            wal.append_batch(&batch(&[("cat/x", i)])).unwrap();
        }
        wal.truncate_consumed(2).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, WalSyncPolicy::Never, 8).unwrap();
        let seqs: Vec<u64> = rec.entries.iter().map(WalEntry::seq).collect();
        assert_eq!(seqs, vec![3, 4], "frames past the checkpoint survive");
    }

    #[test]
    fn read_wal_reports_without_repairing() {
        let dir = tempdir("readonly");
        let (wal, _) = Wal::open(&dir, WalSyncPolicy::EveryBatch, 1 << 20).unwrap();
        wal.append_batch(&batch(&[("a/x", 1)])).unwrap();
        wal.append_batch(&batch(&[("a/y", 2)])).unwrap();
        drop(wal);
        let file = segment_files(&dir).unwrap()[0].1.clone();
        let full = fs::metadata(&file).unwrap().len();
        FaultFs::truncate_at(&file, full - 1).unwrap();
        let rec = read_wal(&dir).unwrap();
        assert!(rec.repaired());
        assert_eq!(rec.entries.len(), 1);
        // The file was not modified by the read-only scan.
        assert_eq!(fs::metadata(&file).unwrap().len(), full - 1);
    }
}
