//! The engine's runtime-telemetry bundle: one histogram per hot-path
//! stage, shared by `Arc` between the stage that records and the
//! serving layer that exports.
//!
//! Recording is lock-free (`tiresias-telemetry`'s contract) and every
//! stage is timed at *batch* or *unit* granularity — one `Instant`
//! pair per admitted batch, closed unit, WAL append or segment spill —
//! never per record, so the instrumented hot path stays within noise
//! of the bare one (CI gates the tax at 5%, see `BENCH_serve.json`'s
//! `telemetry_tax_pct`).

use std::sync::Arc;

use tiresias_telemetry::{Histogram, Registry};

/// Per-stage latency histograms of one live engine. Cheap to clone
/// (a handful of `Arc`s); values are nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct EngineTelemetry {
    /// Whole-batch admission latency ([`crate::IngestHandle`]'s
    /// `admit_batch`: gate acquire, validation, WAL append, routing
    /// and ring hand-off).
    pub admit: Arc<Histogram>,
    /// Time admission spent blocked on a full shard ring (the
    /// backpressure slow path only; unstalled hand-offs record
    /// nothing).
    pub ring_stall: Arc<Histogram>,
    /// Per-shard timeunit close duration (stash replay + detector
    /// advance on the worker thread).
    pub close: Arc<Histogram>,
    /// Merge duration of one close barrier's acks into the ordered
    /// report store.
    pub merge: Arc<Histogram>,
    /// WAL append latency (batch and close frames, under the admission
    /// gate).
    pub wal_append: Arc<Histogram>,
    /// WAL fsync latency (every policy-driven or explicit sync).
    pub wal_fsync: Arc<Histogram>,
    /// Segment spill latency (evicted report events reaching disk).
    pub spill: Arc<Histogram>,
}

impl EngineTelemetry {
    /// Creates a fresh (all-empty) telemetry bundle.
    pub fn new() -> EngineTelemetry {
        EngineTelemetry::default()
    }

    /// Registers every engine histogram into `registry` under its
    /// exported name.
    pub fn register_into(&self, registry: &Registry) {
        registry.register_histogram(
            "tiresias_admit_batch_seconds",
            "Whole-batch admission latency through the lock-free front-end.",
            &[],
            Arc::clone(&self.admit),
        );
        registry.register_histogram(
            "tiresias_ring_stall_seconds",
            "Time admission spent blocked on a full shard ring (backpressure).",
            &[],
            Arc::clone(&self.ring_stall),
        );
        registry.register_histogram(
            "tiresias_close_unit_seconds",
            "Per-shard timeunit close duration on the worker threads.",
            &[],
            Arc::clone(&self.close),
        );
        registry.register_histogram(
            "tiresias_merge_seconds",
            "Merge duration of closed units into the ordered report store.",
            &[],
            Arc::clone(&self.merge),
        );
        registry.register_histogram(
            "tiresias_wal_append_seconds",
            "Write-ahead-log append latency under the admission gate.",
            &[],
            Arc::clone(&self.wal_append),
        );
        registry.register_histogram(
            "tiresias_wal_fsync_seconds",
            "Write-ahead-log fsync latency.",
            &[],
            Arc::clone(&self.wal_fsync),
        );
        registry.register_histogram(
            "tiresias_spill_seconds",
            "Segment-store spill latency for evicted report events.",
            &[],
            Arc::clone(&self.spill),
        );
    }
}
