//! Tiresias — online anomaly detection for hierarchical operational
//! network data (the end-to-end system of the paper's §IV, Fig. 3).
//!
//! The [`Tiresias`] detector consumes a stream of timestamped
//! [`Record`]s whose categories live in an additive hierarchy, and:
//!
//! 1. classifies them into **timeunits** of size Δ on a sliding window of
//!    ℓ units (Step 1),
//! 2. tracks the **succinct hierarchical heavy hitters** and their time
//!    series with the adaptive ADA algorithm (or the exact STA strawman)
//!    — Step 2, §V,
//! 3. optionally derives **seasonality** from the observed stream via
//!    FFT + wavelet analysis during warm-up (Step 3, §VI),
//! 4. forecasts each heavy hitter with an additive **Holt-Winters**
//!    model and flags an anomaly when the observed count exceeds the
//!    forecast by both a relative (`RT`) and an absolute (`DT`)
//!    threshold (Steps 4–5, Definition 4),
//! 5. records events in a queryable, retention-bounded [`ReportStore`]
//!    (Step 5's database + front-end, reduced to a library API), and
//! 6. keeps consuming new data online (Step 6).
//!
//! The crate also ships the **reference method** the paper compares
//! against in §VII-B — [`ControlChartDetector`], a Shewhart control
//! chart over first-level aggregates — plus the comparison metrics
//! ([`ComparisonReport`], [`ConfusionCounts`]) used by Tables V and VI.
//!
//! # Ingest APIs
//!
//! Three ways in, one pipeline behind them:
//!
//! * [`Tiresias::push_str`] — the **zero-allocation fast path** for
//!   operational feeds: a borrowed `/`-separated category plus a
//!   timestamp. Labels are interned in the tree, warm paths resolve
//!   with a single hash probe, and the open unit is counted into a
//!   recycled dense buffer — no heap allocation per record in steady
//!   state (see `BENCH_ingest.json` at the repository root for the
//!   measured throughput gap).
//! * [`Tiresias::push`] — the same semantics from an owned [`Record`]
//!   (byte-identical results; convenient when paths are already
//!   parsed).
//! * [`Tiresias::ingest_unit`] — whole pre-aggregated timeunits, for
//!   experiments that generate counts directly.
//! * [`Tiresias::push_batch`] — a validated batch of `(path, t)` pairs
//!   through the fast path; the natural unit for operational feeds.
//!
//! # Scaling out: the sharded engine
//!
//! [`ShardedTiresias`] (built with [`TiresiasBuilder::shards`] +
//! [`TiresiasBuilder::build_sharded`]) partitions the detector across N
//! worker shards by a deterministic hash of each record's top-level
//! label, ingests batches through per-shard SPSC ring buffers on scoped
//! worker threads, closes timeunits in parallel, and merges anomalies
//! into one deterministically ordered store. Its output is
//! **shard-count invariant**: 1, 2, 4 or 8 shards produce byte-identical
//! heavy hitter paths and anomaly streams (see the [`sharded`
//! module](ShardedTiresias) docs for the argument, and
//! `BENCH_sharded.json` at the repository root for the scaling curve).
//!
//! # Serving: lock-free concurrent admission
//!
//! For live traffic, [`ShardedTiresias::into_live`] splits the engine
//! into a concurrently shareable front-end — cloneable
//! [`IngestHandle`]s that admit records with `&self` from any number
//! of threads, no engine-wide lock — and the serialized
//! [`LiveSharded`] back-end owning timeunit closes, anomaly merging
//! and the checkpoint lifecycle. An epoch/watermark barrier gives
//! every in-flight push a well-defined timeunit (see the
//! [`live` module](LiveSharded) docs); `tiresias-server` serves its
//! `PUSH` hot path through exactly this split.
//!
//! # Example
//!
//! ```
//! use tiresias_core::{Record, TiresiasBuilder};
//!
//! let mut detector = TiresiasBuilder::new()
//!     .timeunit_secs(900)       // 15-minute units, as in the paper
//!     .window_len(96)
//!     .threshold(5.0)
//!     .season_length(4)
//!     .sensitivity(2.8, 8.0)    // the paper's RT and DT
//!     .build()?;
//!
//! for t in 0..12u64 {
//!     let burst = if t == 11 { 80 } else { 8 };
//!     for i in 0..burst {
//!         detector.push(Record::new("TV/No Service", t * 900 + i))?;
//!     }
//!     detector.advance_to((t + 1) * 900)?;
//! }
//! assert!(detector.anomalies().iter().any(|a| a.path.to_string() == "TV/No Service"));
//! # Ok::<(), tiresias_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anomaly;
mod builder;
mod checkpoint;
mod counts;
mod detector;
mod error;
mod export;
mod fault;
mod live;
pub mod quality;
mod record;
mod reference_method;
mod ring;
mod segments;
mod sharded;
mod store;
mod telem;
mod wal;

pub use anomaly::{is_anomalous, is_drop, AnomalyEvent, AnomalyKind};
pub use builder::{Algorithm, TiresiasBuilder};
pub use checkpoint::{
    load_checkpoint, load_checkpoint_meta, save_checkpoint, save_sharded_checkpoint,
    save_sharded_checkpoint_with_wal, save_single_checkpoint, CheckpointEngine, CHECKPOINT_VERSION,
};
pub use detector::{SubtreeState, Tiresias};
pub use error::CoreError;
pub use export::{events_to_csv, CSV_HEADER};
pub use fault::FaultFs;
pub use live::{Admission, IngestHandle, LiveSharded, ReportReader, DEFAULT_MAX_AHEAD_UNITS};
/// The detection-quality scoring module's pre-rename path (it was
/// `metrics` before runtime telemetry claimed that word).
pub use quality as metrics;
pub use quality::{ComparisonReport, ConfusionCounts};
pub use record::Record;
pub use reference_method::{ControlChartConfig, ControlChartDetector};
pub use segments::{SegmentStore, DEFAULT_SEGMENT_BYTES};
pub use sharded::{RebalanceConfig, ShardRouter, ShardedTiresias};
pub use store::ReportStore;
pub use telem::EngineTelemetry;
pub use wal::{
    encode_record, read_wal, Wal, WalEntry, WalRecovery, WalSyncPolicy, DEFAULT_WAL_SEGMENT_BYTES,
    FRAME_HEADER_BYTES,
};

// Re-export the pieces callers need to configure the detector.
pub use tiresias_hhh::{HhhConfig, MemoryReport, ModelSpec, SplitRule, StageTimings};
pub use tiresias_timeseries::SeasonalFactor;
