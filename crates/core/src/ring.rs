//! A hand-rolled bounded multi-producer ring buffer for the sharded
//! ingest engines.
//!
//! Two consumers-of-one-shard patterns share this buffer:
//!
//! * the **offline batch engine** ([`crate::ShardedTiresias`]): one
//!   router thread produces per-shard chunks, one scoped worker per
//!   shard consumes them (the original SPSC shape);
//! * the **live engine** ([`crate::LiveSharded`]): *many* session
//!   threads produce concurrently through cloned
//!   [`crate::IngestHandle`]s, while one long-running worker per shard
//!   consumes — the multi-producer generalisation this module grew for.
//!
//! The buffer is bounded, so a slow shard applies backpressure to its
//! producers instead of queueing unboundedly; both sides block on
//! condition variables, and either side can end the conversation
//! ([`ShardRing::finish`] from the producing side, [`ShardRing::abandon`]
//! from the consumer) without deadlocking the other.
//!
//! Synchronisation is a `Mutex<VecDeque>` plus two condvars — `VecDeque`
//! *is* a growable ring buffer, the lock serialises concurrent
//! producers for free, and the workspace forbids `unsafe`, so a
//! lock-free atomics ring is off the table. Producers amortise the lock
//! by shipping chunks of many records per push, which makes the
//! per-record synchronisation cost a fraction of a nanosecond.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct State<T> {
    queue: VecDeque<T>,
    /// Producing side finished: `pop` drains the queue, then returns
    /// `None`.
    finished: bool,
    /// Consumer gone (errored out): `push` drops items and reports it.
    abandoned: bool,
}

/// Bounded multi-producer single-consumer ring buffer. See the module
/// docs for the protocol. `push` is `&self` and safe from any number of
/// threads; items from concurrent producers interleave at chunk
/// granularity but each producer's own chunks stay FIFO.
#[derive(Debug)]
pub(crate) struct ShardRing<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> ShardRing<T> {
    /// Creates a ring holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ShardRing {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity.max(1)),
                finished: false,
                abandoned: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues an item, blocking while the ring is full. Returns
    /// `false` (dropping the item) if the consumer has abandoned the
    /// ring — the producer should stop feeding this shard.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("ring lock never poisoned");
        while state.queue.len() >= self.capacity && !state.abandoned {
            state = self.not_full.wait(state).expect("ring lock never poisoned");
        }
        if state.abandoned {
            return false;
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// [`ShardRing::push`] that also reports how long the producer was
    /// blocked on a full ring, in nanoseconds. The clock only starts
    /// when the slow path is entered, so an uncontended hand-off pays
    /// nothing and reports 0. Returns `None` (dropping the item) if
    /// the consumer has abandoned the ring.
    pub fn push_timing_stall(&self, item: T) -> Option<u64> {
        let mut state = self.state.lock().expect("ring lock never poisoned");
        let mut stall = 0u64;
        if state.queue.len() >= self.capacity && !state.abandoned {
            let t0 = std::time::Instant::now();
            while state.queue.len() >= self.capacity && !state.abandoned {
                state = self.not_full.wait(state).expect("ring lock never poisoned");
            }
            stall = t0.elapsed().as_nanos() as u64;
        }
        if state.abandoned {
            return None;
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Some(stall)
    }

    /// Dequeues the next item, blocking while the ring is empty.
    /// Returns `None` once the producing side has called
    /// [`ShardRing::finish`] and the queue is drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("ring lock never poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.finished {
                return None;
            }
            state = self.not_empty.wait(state).expect("ring lock never poisoned");
        }
    }

    /// Producing side: no more items will be pushed; wakes the consumer
    /// so it can drain and exit. With multiple producers the caller
    /// coordinates who declares the end (the live engine instead sends
    /// an in-band drain message and never finishes its rings).
    pub fn finish(&self) {
        let mut state = self.state.lock().expect("ring lock never poisoned");
        state.finished = true;
        drop(state);
        self.not_empty.notify_one();
    }

    /// Consumer side: stops consuming (e.g. after an error). Pending
    /// items are dropped and any blocked or future `push` returns
    /// `false` immediately instead of deadlocking on a full ring.
    pub fn abandon(&self) {
        let mut state = self.state.lock().expect("ring lock never poisoned");
        state.abandoned = true;
        state.queue.clear();
        drop(state);
        self.not_full.notify_all();
    }
}

/// RAII guard abandoning a ring when dropped — placed in a consumer so
/// that *any* exit, including an unwind from a panic mid-chunk, unblocks
/// producers waiting on a full ring instead of deadlocking them.
/// Abandoning after a normal drain (producing side already finished) or
/// after an explicit abandon is harmless: the flag is idempotent.
#[derive(Debug)]
pub(crate) struct AbandonOnDrop<'a, T>(pub &'a ShardRing<T>);

impl<T> Drop for AbandonOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.abandon();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let ring = ShardRing::new(4);
        assert!(ring.push(1));
        assert!(ring.push(2));
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.pop(), Some(2));
        ring.finish();
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let ring = std::sync::Arc::new(ShardRing::new(2));
        let consumer = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(x) = ring.pop() {
                    got.push(x);
                }
                got
            })
        };
        // Pushing far beyond capacity must not lose or reorder items:
        // the producer blocks until the consumer catches up.
        for i in 0..1000 {
            assert!(ring.push(i));
        }
        ring.finish();
        let got = consumer.join().expect("consumer finishes");
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let ring = std::sync::Arc::new(ShardRing::new(4));
        let consumer = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(x) = ring.pop() {
                    got.push(x);
                }
                got
            })
        };
        std::thread::scope(|scope| {
            for p in 0..8u32 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..100u32 {
                        assert!(ring.push(p * 1000 + i));
                    }
                });
            }
        });
        ring.finish();
        let mut got = consumer.join().expect("consumer finishes");
        assert_eq!(got.len(), 800, "every producer's items arrive");
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 800, "no duplicates either");
    }

    #[test]
    fn abandon_unblocks_all_producers() {
        let ring = std::sync::Arc::new(ShardRing::new(1));
        assert!(ring.push(1)); // ring now full
        let producers: Vec<_> = (0..3)
            .map(|i| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || ring.push(2 + i)) // blocks on full ring
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(10));
        ring.abandon();
        for p in producers {
            assert!(!p.join().expect("producer returns"), "push reports abandonment");
        }
        assert!(!ring.push(9), "later pushes fail fast");
    }

    #[test]
    fn finish_drains_remaining_items() {
        let ring = ShardRing::new(8);
        ring.push("a");
        ring.push("b");
        ring.finish();
        assert_eq!(ring.pop(), Some("a"));
        assert_eq!(ring.pop(), Some("b"));
        assert_eq!(ring.pop(), None);
        assert_eq!(ring.pop(), None, "None is sticky");
    }
}
