use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use tiresias_hierarchy::{NodeId, Tree};
use tiresias_timeseries::stats;

/// Configuration of the [`ControlChartDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlChartConfig {
    /// Hierarchy level the chart watches (the paper's reference method
    /// watches level 1, the VHOs).
    pub level: usize,
    /// Trailing window length (timeunits) used to estimate mean and
    /// standard deviation.
    pub window: usize,
    /// Alarm threshold in standard deviations above the mean
    /// (`value > mean + k·σ`).
    pub k: f64,
    /// Minimum samples before the chart may alarm.
    pub min_samples: usize,
}

impl Default for ControlChartConfig {
    fn default() -> Self {
        ControlChartConfig { level: 1, window: 96, k: 3.0, min_samples: 12 }
    }
}

/// The **reference method** of §VII-B: Shewhart control charts applied
/// to the aggregate time series of first-level nodes only.
///
/// This mirrors the practice of the ISP's operational team the paper
/// compares Tiresias against: per-VHO aggregates are monitored with a
/// `mean + k·σ` band, which catches region-wide events but cannot see
/// anomalies hidden below the first level (the paper found 95 % of
/// Tiresias' new anomalies below the VHO level for exactly this reason).
///
/// # Example
///
/// ```
/// use tiresias_core::{ControlChartConfig, ControlChartDetector};
/// use tiresias_hierarchy::HierarchySpec;
///
/// let tree = HierarchySpec::new("SHO").level("VHO", 2).level("IO", 3).build()?;
/// let cfg = ControlChartConfig { level: 1, window: 16, k: 3.0, min_samples: 4 };
/// let mut chart = ControlChartDetector::new(cfg);
/// let vho = tree.find(&["VHO-0"]).unwrap();
/// let io = tree.find(&["VHO-0", "IO-1"]).unwrap();
/// for _ in 0..8 {
///     let mut direct = vec![0.0; tree.len()];
///     direct[io.index()] = 10.0;
///     assert!(chart.push_unit(&tree, &direct).is_empty());
/// }
/// // A region-wide burst trips the chart at the VHO.
/// let mut direct = vec![0.0; tree.len()];
/// direct[io.index()] = 500.0;
/// let alarms = chart.push_unit(&tree, &direct);
/// assert_eq!(alarms, vec![vho]);
/// # Ok::<(), tiresias_hierarchy::HierarchyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ControlChartDetector {
    config: ControlChartConfig,
    /// Trailing aggregate histories, indexed by node.
    history: Vec<VecDeque<f64>>,
    units_seen: u64,
}

impl ControlChartDetector {
    /// Creates a detector.
    pub fn new(config: ControlChartConfig) -> Self {
        ControlChartDetector { config, history: Vec::new(), units_seen: 0 }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ControlChartConfig {
        &self.config
    }

    /// Number of timeunits processed.
    pub fn units_seen(&self) -> u64 {
        self.units_seen
    }

    /// Feeds one timeunit of direct counts; returns the watched nodes
    /// whose aggregate exceeded their control band this unit.
    ///
    /// # Panics
    ///
    /// Panics if `direct.len() < tree.len()`.
    pub fn push_unit(&mut self, tree: &Tree, direct: &[f64]) -> Vec<NodeId> {
        assert!(direct.len() >= tree.len(), "direct counts must cover the tree");
        if self.history.len() < tree.len() {
            self.history.resize_with(tree.len(), VecDeque::new);
        }
        let agg = tiresias_hhh::aggregate_weights(tree, direct);
        let mut alarms = Vec::new();
        for &n in tree.nodes_at_depth(self.config.level) {
            let value = agg[n.index()];
            let hist = &mut self.history[n.index()];
            if hist.len() >= self.config.min_samples {
                let samples: Vec<f64> = hist.iter().copied().collect();
                let mean = stats::mean(&samples).unwrap_or(0.0);
                let sd = stats::std_dev(&samples).unwrap_or(0.0);
                // A degenerate flat history still alarms on any strictly
                // larger value via a tiny floor band.
                let band = mean + self.config.k * sd.max(mean.max(1.0) * 0.05);
                if value > band {
                    alarms.push(n);
                }
            }
            hist.push_back(value);
            if hist.len() > self.config.window {
                hist.pop_front();
            }
        }
        self.units_seen += 1;
        alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiresias_hierarchy::HierarchySpec;

    fn setup() -> (Tree, ControlChartDetector) {
        let tree = HierarchySpec::new("SHO").level("VHO", 3).level("IO", 4).build().unwrap();
        let cfg = ControlChartConfig { level: 1, window: 32, k: 3.0, min_samples: 6 };
        (tree, ControlChartDetector::new(cfg))
    }

    #[test]
    fn no_alarm_during_warmup() {
        let (tree, mut chart) = setup();
        for _ in 0..5 {
            let mut d = vec![0.0; tree.len()];
            d[tree.find(&["VHO-0", "IO-0"]).unwrap().index()] = 1000.0;
            assert!(chart.push_unit(&tree, &d).is_empty());
        }
    }

    #[test]
    fn alarm_on_aggregate_spike() {
        let (tree, mut chart) = setup();
        let io = tree.find(&["VHO-1", "IO-2"]).unwrap();
        let vho = tree.find(&["VHO-1"]).unwrap();
        for i in 0..10 {
            let mut d = vec![0.0; tree.len()];
            d[io.index()] = 10.0 + (i % 3) as f64;
            chart.push_unit(&tree, &d);
        }
        let mut d = vec![0.0; tree.len()];
        d[io.index()] = 300.0;
        assert_eq!(chart.push_unit(&tree, &d), vec![vho]);
    }

    #[test]
    fn small_leaf_spike_is_invisible_at_vho_level() {
        // The structural blindness the paper exploits: a burst that is
        // huge for one IO but small against the VHO aggregate does not
        // trip the chart.
        let (tree, mut chart) = setup();
        let vho0_ios: Vec<NodeId> = tree.children(tree.find(&["VHO-0"]).unwrap()).to_vec();
        // Noisy baseline: the VHO aggregate alternates 320 / 480, so its
        // control band is wide (σ = 80).
        for i in 0..12 {
            let per_io = if i % 2 == 0 { 80.0 } else { 120.0 };
            let mut d = vec![0.0; tree.len()];
            for &io in &vho0_ios {
                d[io.index()] = per_io;
            }
            chart.push_unit(&tree, &d);
        }
        // One IO nearly doubles (220 vs 120) — huge for that IO, but the
        // VHO aggregate (580) stays inside mean + 3σ = 640.
        let mut d = vec![0.0; tree.len()];
        d[vho0_ios[0].index()] = 220.0;
        for &io in &vho0_ios[1..] {
            d[io.index()] = 120.0;
        }
        let alarms = chart.push_unit(&tree, &d);
        assert!(alarms.is_empty(), "leaf-level burst hidden in the aggregate");
    }

    #[test]
    fn watches_only_configured_level() {
        let (tree, mut chart) = setup();
        let io = tree.find(&["VHO-0", "IO-0"]).unwrap();
        for _ in 0..10 {
            let mut d = vec![0.0; tree.len()];
            d[io.index()] = 5.0;
            chart.push_unit(&tree, &d);
        }
        let mut d = vec![0.0; tree.len()];
        d[io.index()] = 500.0;
        for n in chart.push_unit(&tree, &d) {
            assert_eq!(tree.depth(n), 1);
        }
    }

    #[test]
    fn tree_growth_is_tolerated() {
        let (mut tree, mut chart) = setup();
        let mut d = vec![0.0; tree.len()];
        d[tree.find(&["VHO-0", "IO-0"]).unwrap().index()] = 5.0;
        chart.push_unit(&tree, &d);
        tree.insert_path(&["VHO-9", "IO-0"]);
        let d = vec![0.0; tree.len()];
        chart.push_unit(&tree, &d);
        assert_eq!(chart.units_seen(), 2);
    }
}
