//! The sharded multi-core ingest engine.
//!
//! [`ShardedTiresias`] horizontally partitions one logical detector
//! across N worker shards. A deterministic [`ShardRouter`] hashes each
//! record's *top-level* label (no full path resolve) to a shard; each
//! shard owns a complete [`Tiresias`] instance — its own tree, open-unit
//! counts and heavy hitter tracker — and processes its subtrees
//! independently. Timeunit boundaries close per-shard in parallel, and
//! the anomalies of closed units merge into one deterministically
//! ordered, queryable [`ReportStore`].
//!
//! # Why the output is shard-count invariant
//!
//! Every quantity the detector derives for a node of depth ≥ 1 is a
//! pure function of that node's *own subtree* counts:
//!
//! * Definition-2 membership and modified weights are computed by a
//!   bottom-up sweep that only ever crosses top-level boundaries at the
//!   root;
//! * aggregate weights, split statistics and reference series are
//!   per-node;
//! * ADA's `SPLIT`/`MERGE` choreography moves series between parents
//!   and children inside one subtree — except splits *from the root*,
//!   which would leak the root's series (a sum over whichever top-level
//!   subtrees happen to share the shard) downwards. The engine
//!   therefore runs every shard with `HhhConfig::root_isolation`, under
//!   which a first-level node seeds from its reference series or zeros
//!   instead.
//!
//! The per-shard root nodes are thus pure synthetic aggregation points:
//! they are excluded from the merged heavy hitter set and event stream,
//! and everything that *is* reported is independent of how top-level
//! labels are grouped into shards. Running with 1, 2, 4 or 8 shards
//! produces byte-identical unions of shard trees, heavy hitter paths
//! and anomaly streams (`tests/sharded_invariance.rs` proves this
//! property over randomised workloads).
//!
//! The price of that invariance is that the *whole-population* series —
//! the global root the unsharded [`Tiresias`] tracks when traffic is
//! diffuse — has no owner, so root-level (level-0) anomalies are not
//! reported by the sharded engine, and `auto_seasonality` (which
//! analyses the global total) is rejected at build time.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use tiresias_hierarchy::{first_segment_hash, Tree};
use tiresias_sketch::SpaceSaving;

use crate::anomaly::AnomalyEvent;
use crate::builder::TiresiasBuilder;
use crate::detector::Tiresias;
use crate::error::CoreError;
use crate::ring::ShardRing;
use crate::store::ReportStore;

/// Records per chunk handed from the router to a shard worker; the unit
/// of ring-buffer synchronisation. Batching per ~1k records makes the
/// ring's lock cost negligible per record.
const CHUNK_RECORDS: usize = 1024;
/// Chunks a shard ring buffers before the router blocks (backpressure).
const RING_CAPACITY: usize = 8;

/// Deterministic record router: maps a record's top-level label to a
/// shard through an explicit routing table with a hash fallback.
///
/// Unseen labels route by a stable Fx hash of the first non-empty path
/// segment ([`first_segment_hash`]), so the same label maps to the same
/// shard across runs, restarts and checkpoints. Hot labels can be
/// **pinned** to an explicit shard ([`ShardRouter::pin`]) — the
/// adaptive rebalancer's output — and the pinned table persists in
/// checkpoints so a restart resumes with the learned placement. Either
/// way, all records of one top-level subtree land on one shard, which
/// is what lets each shard run a full detector over its subtrees
/// without coordinating with the others.
///
/// # Example
///
/// ```
/// use tiresias_core::ShardRouter;
///
/// let mut router = ShardRouter::new(4);
/// let shard = router.route("TV/No Service");
/// assert!(shard < 4);
/// // Only the top-level label matters.
/// assert_eq!(shard, router.route("TV/Pixelation"));
/// // The root path (no label) deterministically maps to shard 0.
/// assert_eq!(router.route("//"), 0);
/// // Pinning overrides the hash fallback.
/// router.pin("TV", (shard as u32 + 1) % 4);
/// assert_eq!(router.route("TV/Pixelation"), (shard + 1) % 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(from = "RouterRepr", into = "RouterRepr")]
pub struct ShardRouter {
    shards: u32,
    /// Pinned label → shard overrides, sorted by label text. This is
    /// the canonical (persisted) form of the routing table.
    overrides: Vec<(String, u32)>,
    /// First-segment-hash → shard lookup derived from `overrides`,
    /// sorted by hash for the hot path's binary search.
    by_hash: Vec<(u64, u32)>,
}

/// Serialised form of [`ShardRouter`]: the shard count plus the pinned
/// override table (the checkpoint-envelope v4 addition; v3 checkpoints
/// migrate by inserting an empty table). The hash lookup is rebuilt on
/// deserialisation.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RouterRepr {
    shards: u32,
    overrides: Vec<(String, u32)>,
}

impl From<ShardRouter> for RouterRepr {
    fn from(r: ShardRouter) -> Self {
        RouterRepr { shards: r.shards, overrides: r.overrides }
    }
}

impl From<RouterRepr> for ShardRouter {
    fn from(r: RouterRepr) -> Self {
        let mut router = ShardRouter::new(r.shards as usize);
        for (label, shard) in r.overrides {
            router.pin(&label, shard);
        }
        router
    }
}

impl ShardRouter {
    /// Creates a router over `shards` shards (minimum 1) with no pinned
    /// labels.
    pub fn new(shards: usize) -> Self {
        ShardRouter {
            shards: u32::try_from(shards.max(1)).expect("shard count fits in u32"),
            overrides: Vec::new(),
            by_hash: Vec::new(),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard owning `path`'s top-level label.
    #[inline]
    pub fn route(&self, path: &str) -> usize {
        self.route_hash(first_segment_hash(path))
    }

    /// The shard owning the top-level label with first-segment hash `h`
    /// — the half of [`ShardRouter::route`] after path parsing, for
    /// callers that already hold the hash (batch scratch, rebalancer).
    #[inline]
    pub fn route_hash(&self, h: u64) -> usize {
        if !self.by_hash.is_empty() {
            if let Ok(i) = self.by_hash.binary_search_by_key(&h, |&(k, _)| k) {
                return self.by_hash[i].1 as usize;
            }
        }
        // The Fx multiply concentrates its entropy in the high bits,
        // which a plain modulo would ignore — run the 64-bit
        // xor-shift-multiply finaliser (splitmix64's) so similar labels
        // spread over small shard counts too.
        let mut x = h;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x % u64::from(self.shards)) as usize
    }

    /// Pins top-level label `label` to `shard` (clamped to the shard
    /// count), overriding the hash fallback. Pinning the empty label
    /// (the root path) is a no-op: root-path records always take the
    /// deterministic fallback.
    ///
    /// Labels whose first-segment hashes collide share one hash-table
    /// entry and therefore always route — and rebalance — together,
    /// which keeps routing and subtree migration consistent even in
    /// that astronomically unlikely case.
    pub fn pin(&mut self, label: &str, shard: u32) {
        let h = first_segment_hash(label);
        if h == 0 {
            return;
        }
        let shard = shard.min(self.shards - 1);
        match self.overrides.binary_search_by(|(l, _)| l.as_str().cmp(label)) {
            Ok(i) => self.overrides[i].1 = shard,
            Err(i) => self.overrides.insert(i, (label.to_string(), shard)),
        }
        match self.by_hash.binary_search_by_key(&h, |&(k, _)| k) {
            Ok(i) => self.by_hash[i].1 = shard,
            Err(i) => self.by_hash.insert(i, (h, shard)),
        }
    }

    /// The pinned override table, sorted by label text.
    pub fn overrides(&self) -> &[(String, u32)] {
        &self.overrides
    }

    /// Number of pinned labels.
    pub fn pinned_count(&self) -> usize {
        self.overrides.len()
    }
}

/// A tiny per-batch routing cache: a direct-mapped (hash → shard) table
/// that skips the override search and the mixing finaliser for labels
/// repeated within one batch — which, under the Zipfian traffic that
/// motivates adaptive routing, is almost all of them.
pub(crate) struct RouteScratch {
    slots: [(u64, u32); Self::SLOTS],
}

impl RouteScratch {
    const SLOTS: usize = 64;

    pub fn new() -> Self {
        // Hash 0 is the root path, which `route_hash` resolves without
        // a table anyway, so it doubles as the empty-slot sentinel.
        RouteScratch { slots: [(0, 0); Self::SLOTS] }
    }

    /// [`ShardRouter::route`] through the cache.
    #[inline]
    pub fn route(&mut self, router: &ShardRouter, path: &str) -> usize {
        let h = first_segment_hash(path);
        if h == 0 {
            return router.route_hash(0);
        }
        let slot = (h as usize) & (Self::SLOTS - 1);
        let (key, shard) = self.slots[slot];
        if key == h {
            return shard as usize;
        }
        let shard = router.route_hash(h);
        self.slots[slot] = (h, shard as u32);
        shard
    }
}

/// Configuration of the skew-adaptive label→shard rebalancer.
///
/// When enabled, the engine measures per-top-label load every epoch
/// (timeunit close), folds the hot labels into a bounded
/// [`SpaceSaving`](tiresias_sketch::SpaceSaving) sketch, and — at the
/// epoch barrier, the only point where no admission is in flight —
/// greedily pins the hottest labels of the most loaded shard onto the
/// least loaded one until the projected worst/mean load ratio drops to
/// `threshold`. Subtree detector state moves with the label, so output
/// stays byte-identical to static routing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebalanceConfig {
    /// Master switch; `false` keeps routing fully static.
    pub enabled: bool,
    /// Rebalance until worst/mean projected shard load ≤ this (≥ 1.0;
    /// lower is more aggressive).
    pub threshold: f64,
    /// Budget of label moves applied per epoch barrier (moving a label
    /// transplants its whole subtree's tracker state, so the work is
    /// bounded per close).
    pub max_moves_per_epoch: usize,
    /// Ceiling on the pinned override table; beyond it no new labels
    /// are pinned (existing pins may still be repointed).
    pub max_overrides: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            enabled: false,
            threshold: 1.15,
            max_moves_per_epoch: 4,
            max_overrides: 512,
        }
    }
}

impl RebalanceConfig {
    /// An enabled config with the default aggressiveness.
    pub fn enabled() -> Self {
        RebalanceConfig { enabled: true, ..RebalanceConfig::default() }
    }

    /// Sets the worst/mean threshold (clamped to ≥ 1.0).
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = if threshold.is_finite() { threshold.max(1.0) } else { 1.15 };
        self
    }
}

/// Greedy rebalancing plan: moves the hottest labels off the most
/// loaded shard onto the least loaded one until the projected
/// worst/mean ratio reaches `cfg.threshold`, the per-epoch move budget
/// is spent, or no single move improves the worst shard. Deterministic:
/// ties break toward the lower shard index and the lexicographically
/// smaller label.
///
/// `loads` is the per-epoch load (records attributed to the label's
/// subtree) of every candidate label; labels not listed keep their
/// current route. Returns `(label, target_shard)` moves.
pub(crate) fn plan_rebalance(
    loads: &[(String, f64)],
    router: &ShardRouter,
    cfg: &RebalanceConfig,
) -> Vec<(String, u32)> {
    let n = router.shards();
    if n < 2 || loads.is_empty() {
        return Vec::new();
    }
    // Candidate labels sorted hottest-first (label text breaks ties so
    // the plan is independent of input order).
    let mut labels: Vec<(&str, f64, usize)> = loads
        .iter()
        .filter(|(label, load)| *load > 0.0 && !label.is_empty())
        .map(|(label, load)| (label.as_str(), *load, router.route(label)))
        .collect();
    labels.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(b.0))
    });
    let mut shard_load = vec![0.0f64; n];
    for &(_, load, shard) in &labels {
        shard_load[shard] += load;
    }
    let total: f64 = shard_load.iter().sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let mean = total / n as f64;
    let budget = cfg.max_moves_per_epoch.max(1);
    let headroom = cfg.max_overrides.saturating_sub(router.pinned_count());
    let mut moves: Vec<(String, u32)> = Vec::new();
    while moves.len() < budget.min(headroom) {
        let worst = (0..n)
            .max_by(|&a, &b| {
                shard_load[a].partial_cmp(&shard_load[b]).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("n >= 2");
        if shard_load[worst] <= cfg.threshold * mean {
            break;
        }
        let target = (0..n)
            .min_by(|&a, &b| {
                shard_load[a].partial_cmp(&shard_load[b]).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("n >= 2");
        // Hottest label on the worst shard whose move strictly shrinks
        // the maximum (the target must not become the new worst).
        let pick = labels.iter().position(|&(_, load, shard)| {
            shard == worst && shard_load[target] + load < shard_load[worst]
        });
        let Some(i) = pick else { break };
        let (label, load, _) = labels[i];
        shard_load[worst] -= load;
        shard_load[target] += load;
        labels[i].2 = target;
        moves.push((label.to_string(), target as u32));
    }
    moves
}

/// Per-epoch rebalancing state shared by the offline engine's barrier
/// hook and the live back-end's `close_to`: the recency-weighted
/// hot-label sketch, the applied-move counter and the measured balance
/// gauge. Runtime state, never checkpointed — only the learned
/// placement (the router's override table) persists.
#[derive(Debug, Clone, Default)]
pub(crate) struct Balancer {
    /// Recency-weighted hot-label sketch (keyed by first-segment hash),
    /// aged by one `halve` per epoch; only labels it monitors are
    /// eligible for pinning, which bounds override-table churn to
    /// labels that are persistently hot.
    hot_labels: SpaceSaving,
    /// Label moves applied so far (monotone counter, telemetry).
    pub rebalances: u64,
    /// Worst/mean per-shard load ratio of the last measured epoch
    /// (1.0 = perfectly balanced; 0.0 = not yet measured).
    pub last_balance: f64,
}

impl Balancer {
    /// Folds one closed epoch's per-label subtree loads into the
    /// balance gauge and the hot-label sketch, and returns the moves a
    /// greedy rebalance would apply (empty when `cfg` is disabled).
    pub fn measure(
        &mut self,
        mut loads: Vec<(String, f64)>,
        router: &ShardRouter,
        cfg: &RebalanceConfig,
    ) -> Vec<(String, u32)> {
        let mut shard_load = vec![0.0f64; router.shards()];
        for (label, load) in &loads {
            shard_load[router.route(label)] += load;
        }
        let total: f64 = shard_load.iter().sum();
        if total > 0.0 {
            let worst = shard_load.iter().cloned().fold(0.0f64, f64::max);
            self.last_balance = worst / (total / shard_load.len() as f64);
        }
        if !cfg.enabled {
            return Vec::new();
        }
        if self.hot_labels.capacity() == 0 {
            self.hot_labels = SpaceSaving::new(cfg.max_overrides.max(64));
        }
        // Age, then fold this epoch in: the sketch tracks
        // recency-weighted hot labels across epochs.
        self.hot_labels.halve();
        for (label, load) in &loads {
            let weight = load.round() as u64;
            if weight > 0 {
                self.hot_labels.add(first_segment_hash(label), weight);
            }
        }
        // Only persistently hot labels are move candidates.
        loads.retain(|(label, _)| self.hot_labels.contains(first_segment_hash(label)));
        plan_rebalance(&loads, router, cfg)
    }
}

/// The sharded multi-core ingest engine: N parallel [`Tiresias`] shards
/// behind one deterministic router, with shard-count-invariant output.
///
/// Records enter through the batched [`ShardedTiresias::push_batch`]
/// (or the single-record [`ShardedTiresias::push_str`]); each batch is
/// routed by top-level label, streamed through bounded SPSC ring
/// buffers to one scoped worker thread per shard, and closed timeunits
/// are processed by all shards in parallel. Anomalies from closed units
/// are merged into a single [`ReportStore`] ordered by `(unit, path)` —
/// an order that does not depend on the shard count (see the
/// [module docs](self) for why the whole output is invariant).
///
/// The engine (all shards, the router and the merged store) serialises
/// with serde exactly like the single-shard detector, so a sharded
/// deployment checkpoints and resumes mid-stream.
///
/// # Example
///
/// ```
/// use tiresias_core::TiresiasBuilder;
///
/// let mut engine = TiresiasBuilder::new()
///     .timeunit_secs(900)       // 15-minute units, as in the paper
///     .window_len(96)
///     .threshold(5.0)
///     .season_length(4)
///     .sensitivity(2.8, 8.0)    // the paper's RT and DT
///     .warmup_units(8)
///     .shards(4)
///     .build_sharded()?;
///
/// let mut batch: Vec<(String, u64)> = Vec::new();
/// for t in 0..12u64 {
///     let burst = if t == 11 { 80 } else { 8 };
///     for i in 0..burst {
///         batch.push(("TV/No Service".to_string(), t * 900 + i));
///     }
/// }
/// engine.push_batch(&batch)?;
/// engine.advance_to(12 * 900)?;
/// assert!(engine.anomalies().iter().any(|a| a.path.to_string() == "TV/No Service"));
/// # Ok::<(), tiresias_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedTiresias {
    builder: TiresiasBuilder,
    router: ShardRouter,
    shards: Vec<Tiresias>,
    /// The merged report store. It owns the report tree the merged
    /// events' node ids live in, grown in merge order (deterministic,
    /// hence shard-count invariant) and containing only reported paths,
    /// not the full ingested hierarchy.
    store: ReportStore,
    /// Per-shard store sequence number up to which events were merged
    /// (shard stores are truncated behind it, so they stay bounded).
    merged: Vec<u64>,
    /// Events collected from shards but not yet releasable (their unit
    /// is still open somewhere).
    pending: Vec<AnomalyEvent>,
    /// Global watermark: the open (not yet closed) timeunit.
    open_unit: Option<u64>,
    /// `false` processes batches on the calling thread, shard by shard
    /// (used by benchmarks to measure per-shard cost without timeslice
    /// interference; output is identical either way).
    threaded: bool,
    /// Per-shard cumulative ingest busy time in nanoseconds.
    busy_nanos: Vec<u64>,
    /// Cumulative router busy time (validation + routing) in
    /// nanoseconds.
    router_nanos: u64,
    /// Skew-adaptive rebalancer knobs. Runtime policy, not state: a
    /// resumed checkpoint re-applies the serving configuration, so only
    /// the *learned placement* (the router's override table) persists.
    #[serde(skip)]
    rebalance: RebalanceConfig,
    /// Explicit `pin_label` requests awaiting the next epoch barrier.
    #[serde(skip)]
    pending_pins: Vec<(String, u32)>,
    /// The hot-label sketch, move counter and balance gauge.
    #[serde(skip)]
    bal: Balancer,
    /// `units_processed` at the last epoch measurement, so a barrier
    /// that closed no unit does not re-measure.
    #[serde(skip)]
    measured_units: u64,
}

/// The engine's state decomposed into the pieces the live
/// front-end/back-end split redistributes: the shards move onto
/// long-running worker threads, routing moves into the shareable
/// [`crate::IngestHandle`], and the merge state stays with the
/// exclusive [`crate::LiveSharded`] back-end.
pub(crate) struct ShardedParts {
    pub builder: TiresiasBuilder,
    pub router: ShardRouter,
    pub shards: Vec<Tiresias>,
    pub store: ReportStore,
    pub pending: Vec<AnomalyEvent>,
    pub open_unit: Option<u64>,
    pub busy_nanos: Vec<u64>,
    pub router_nanos: u64,
    pub rebalance: RebalanceConfig,
}

impl ShardedTiresias {
    pub(crate) fn from_builder(builder: TiresiasBuilder) -> Result<Self, CoreError> {
        if builder.auto_seasonality.is_some() {
            return Err(CoreError::InvalidConfig(
                "auto_seasonality analyses the whole-population total, which no single shard \
                 observes; resolve the season up front (season_length / model) for sharded \
                 ingestion"
                    .into(),
            ));
        }
        let n = builder.shards.max(1);
        // Root isolation keeps every depth ≥ 1 series a function of its
        // own subtree — the invariance property documented on the
        // module. The builder itself keeps the caller's flags so a
        // checkpoint round-trips the exact configuration.
        let mut shard_builder = builder.clone();
        shard_builder.root_isolation = true;
        let shards = (0..n)
            .map(|_| shard_builder.clone().build())
            .collect::<Result<Vec<Tiresias>, CoreError>>()?;
        let store = ReportStore::with_root(builder.root_label.clone());
        Ok(ShardedTiresias {
            router: ShardRouter::new(n),
            shards,
            store,
            merged: vec![0; n],
            pending: Vec::new(),
            open_unit: None,
            threaded: true,
            busy_nanos: vec![0; n],
            router_nanos: 0,
            builder,
            rebalance: RebalanceConfig::default(),
            pending_pins: Vec::new(),
            bal: Balancer::default(),
            measured_units: 0,
        })
    }

    /// Decomposes the engine for the live front-end/back-end split.
    pub(crate) fn into_parts(self) -> ShardedParts {
        ShardedParts {
            builder: self.builder,
            router: self.router,
            shards: self.shards,
            store: self.store,
            pending: self.pending,
            open_unit: self.open_unit,
            busy_nanos: self.busy_nanos,
            router_nanos: self.router_nanos,
            rebalance: self.rebalance,
        }
    }

    /// Reassembles an engine from live parts (the inverse of
    /// [`ShardedTiresias::into_parts`], used by
    /// [`crate::LiveSharded::finish`] so a drained live engine
    /// checkpoints in the exact same format as the offline one).
    pub(crate) fn from_parts(parts: ShardedParts) -> Self {
        let merged = parts.shards.iter().map(|s| s.store().next_seq()).collect();
        ShardedTiresias {
            builder: parts.builder,
            router: parts.router,
            shards: parts.shards,
            store: parts.store,
            merged,
            pending: parts.pending,
            open_unit: parts.open_unit,
            threaded: true,
            busy_nanos: parts.busy_nanos,
            router_nanos: parts.router_nanos,
            rebalance: parts.rebalance,
            pending_pins: Vec::new(),
            bal: Balancer::default(),
            measured_units: 0,
        }
    }

    /// Converts this engine into the concurrently shareable live form:
    /// a [`crate::LiveSharded`] back-end whose cloneable
    /// [`crate::IngestHandle`]s admit records from any number of
    /// threads without an engine-wide lock. `max_ahead_units` bounds
    /// how far ahead of the open timeunit a record may be (see
    /// [`crate::DEFAULT_MAX_AHEAD_UNITS`]).
    ///
    /// # Errors
    ///
    /// Propagates shard errors from aligning a mid-stream engine.
    pub fn into_live(self, max_ahead_units: u64) -> Result<crate::LiveSharded, CoreError> {
        crate::LiveSharded::from_engine(self, max_ahead_units, None, true)
    }

    /// [`ShardedTiresias::into_live`] with a write-ahead log attached:
    /// every admitted batch and every close barrier is appended to
    /// `wal` under the live engine's epoch gate before it takes
    /// effect, so a crash-interrupted run replays to exactly the acked
    /// state. Pass `None` for a WAL-less live engine (identical to
    /// [`ShardedTiresias::into_live`]).
    ///
    /// # Errors
    ///
    /// Propagates shard errors from aligning a mid-stream engine.
    pub fn into_live_durable(
        self,
        max_ahead_units: u64,
        wal: Option<std::sync::Arc<crate::Wal>>,
    ) -> Result<crate::LiveSharded, CoreError> {
        crate::LiveSharded::from_engine(self, max_ahead_units, wal, true)
    }

    /// [`ShardedTiresias::into_live_durable`] with hot-path telemetry
    /// switched off: no latency histograms exist and admission performs
    /// no clock reads — the baseline the benchmark compares the
    /// instrumented engine against (`telemetry_tax_pct`).
    ///
    /// # Errors
    ///
    /// Propagates shard errors from aligning a mid-stream engine.
    pub fn into_live_untelemetered(
        self,
        max_ahead_units: u64,
        wal: Option<std::sync::Arc<crate::Wal>>,
    ) -> Result<crate::LiveSharded, CoreError> {
        crate::LiveSharded::from_engine(self, max_ahead_units, wal, false)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.router.shards()
    }

    /// The router mapping top-level labels to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Sets the skew-adaptive rebalancer policy (takes effect at the
    /// next epoch barrier). Policy is runtime configuration and is not
    /// checkpointed — only the learned placement (the router's override
    /// table) persists.
    pub fn set_rebalance(&mut self, config: RebalanceConfig) {
        self.rebalance = config;
    }

    /// The active rebalancer policy.
    pub fn rebalance_config(&self) -> RebalanceConfig {
        self.rebalance
    }

    /// Requests that top-level label `label` be owned by `shard`. The
    /// move — routing-table pin plus subtree state transplant — is
    /// applied at the next epoch barrier (the next
    /// [`ShardedTiresias::push_batch`] / [`ShardedTiresias::advance_to`]
    /// / [`ShardedTiresias::close_current_unit`]), the only points
    /// where all shards are aligned. Output is unaffected: the moved
    /// subtree's detector state moves with it.
    pub fn pin_label(&mut self, label: &str, shard: usize) {
        self.pending_pins.push((label.to_string(), shard as u32));
    }

    /// Label moves applied so far (explicit pins that changed ownership
    /// plus automatic rebalances).
    pub fn rebalances(&self) -> u64 {
        self.bal.rebalances
    }

    /// Worst/mean per-shard load ratio of the last measured epoch
    /// (1.0 = perfectly balanced, 0.0 = not yet measured).
    pub fn shard_balance(&self) -> f64 {
        self.bal.last_balance
    }

    /// Measures the closed epoch's per-label loads, applies pending
    /// explicit pins, and — when adaptive rebalancing is enabled —
    /// greedily moves hot labels off the worst shard. Called at every
    /// epoch barrier, after events merge: all shards are aligned on the
    /// same open unit and processed-unit count there, which is the
    /// transplant contract of [`Tiresias::adopt_subtrees`].
    fn maybe_rebalance(&mut self) {
        let mut moves = std::mem::take(&mut self.pending_pins);
        let units = self.units_processed();
        if units > self.measured_units && self.shards.len() > 1 {
            self.measured_units = units;
            let mut loads: Vec<(String, f64)> = Vec::new();
            for shard in &self.shards {
                loads.extend(shard.top_level_unit_loads());
            }
            moves.extend(self.bal.measure(loads, &self.router, &self.rebalance));
        }
        for (label, shard) in moves {
            self.move_label(&label, shard);
        }
    }

    /// Pins `label` to `shard` and transplants its subtree state (and
    /// that of any hash-colliding sibling label, which necessarily
    /// routes with it) from its current owner. No-op when the label
    /// already lives there or has never been seen.
    fn move_label(&mut self, label: &str, shard: u32) {
        let h = first_segment_hash(label);
        if h == 0 {
            return;
        }
        let to = (shard as usize).min(self.shards.len() - 1);
        let from = self.router.route_hash(h);
        self.router.pin(label, to as u32);
        if from == to {
            return;
        }
        let state = self.shards[from].extract_subtrees(|l| first_segment_hash(l) == h);
        if state.is_empty() {
            return;
        }
        self.shards[to].adopt_subtrees(state);
        self.bal.rebalances += 1;
    }

    /// Read-only access to the per-shard detectors (shard trees, heavy
    /// hitters, timings, …). Node ids are shard-local.
    pub fn shards(&self) -> &[Tiresias] {
        &self.shards
    }

    /// The currently open (not yet closed) timeunit index.
    pub fn current_unit(&self) -> Option<u64> {
        self.open_unit
    }

    /// Timeunit size Δ in seconds.
    pub fn timeunit_secs(&self) -> u64 {
        self.builder.timeunit_secs
    }

    /// Records counted into the currently open timeunit, summed across
    /// shards — a non-blocking accounting hook for schedulers and
    /// metrics (no worker threads are involved).
    pub fn open_unit_records(&self) -> f64 {
        self.shards.iter().map(Tiresias::open_records).sum()
    }

    /// Per-shard record counts of the currently open timeunit — the
    /// per-shard queue-depth view a serving layer reports.
    pub fn shard_open_records(&self) -> Vec<f64> {
        self.shards.iter().map(Tiresias::open_records).collect()
    }

    /// Explicitly closes the currently open timeunit on every shard —
    /// the clock-driven close a wall-clock scheduler performs when a
    /// unit's real-time window (plus any grace period) has elapsed,
    /// rather than waiting for a record of a later unit to arrive.
    ///
    /// Returns the unit that was closed, or `None` if no unit was open
    /// (no data has ever arrived). Newly final anomalies are merged
    /// into [`ShardedTiresias::anomalies`] before returning.
    ///
    /// # Errors
    ///
    /// Propagates shard errors (tracker construction at the warm-up
    /// boundary).
    pub fn close_current_unit(&mut self) -> Result<Option<u64>, CoreError> {
        let Some(open) = self.open_unit else {
            return Ok(None);
        };
        self.advance_to((open + 1) * self.builder.timeunit_secs)?;
        Ok(Some(open))
    }

    /// Timeunits fully processed (including warm-up). Between batches
    /// every shard agrees; mid-stream laggards make this the minimum.
    pub fn units_processed(&self) -> u64 {
        self.shards.iter().map(Tiresias::units_processed).min().unwrap_or(0)
    }

    /// `true` once every shard's warm-up completed and detection is
    /// active.
    pub fn is_warmed_up(&self) -> bool {
        self.shards.iter().all(Tiresias::is_warmed_up)
    }

    /// The merged anomaly stream, ordered by `(unit, path)` — complete
    /// through the last closed unit as of the last
    /// [`ShardedTiresias::push_batch`] / [`ShardedTiresias::advance_to`]
    /// call. Event node ids refer to [`ShardedTiresias::tree`].
    pub fn anomalies(&self) -> &[AnomalyEvent] {
        self.store.events()
    }

    /// The queryable merged report store.
    pub fn store(&self) -> &ReportStore {
        &self.store
    }

    /// Mutable access to the merged store (e.g. for
    /// [`ReportStore::dedup_ancestors`] or
    /// [`ReportStore::set_retention`]).
    pub fn store_mut(&mut self) -> &mut ReportStore {
        &mut self.store
    }

    /// The tree the merged events' node ids refer to. It contains the
    /// reported paths (grown in merge order), not the full ingested
    /// hierarchy — use [`ShardedTiresias::shards`] for the shard trees.
    pub fn tree(&self) -> &Tree {
        self.store.tree()
    }

    /// The union of the shards' current heavy hitter sets as category
    /// paths, sorted; per-shard synthetic roots are excluded. Paths are
    /// the stable cross-shard identity (node ids are shard-local).
    pub fn heavy_hitter_paths(&self) -> Vec<tiresias_hierarchy::CategoryPath> {
        let mut paths: Vec<_> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.heavy_hitters()
                    .into_iter()
                    .filter(|&n| n != s.tree().root())
                    .map(|n| s.tree().path_of(n))
                    .collect::<Vec<_>>()
            })
            .collect();
        paths.sort();
        paths
    }

    /// The union of every shard tree's node paths, sorted; per-shard
    /// synthetic roots are excluded. Together with
    /// [`ShardedTiresias::heavy_hitter_paths`] and the merged store,
    /// this is the engine's grouping-independent output identity: the
    /// invariance tests and the scaling bench compare exactly these
    /// three across shard counts.
    pub fn tree_paths(&self) -> Vec<tiresias_hierarchy::CategoryPath> {
        let mut paths: Vec<_> = self
            .shards
            .iter()
            .flat_map(|s| {
                let tree = s.tree();
                tree.iter()
                    .filter(|&n| n != tree.root())
                    .map(|n| tree.path_of(n))
                    .collect::<Vec<_>>()
            })
            .collect();
        paths.sort();
        paths
    }

    /// Per-shard cumulative busy time spent ingesting records and
    /// closing timeunits (excludes ring-buffer waits). On a machine
    /// with ≥ N free cores the wall-clock cost of a batch approaches
    /// `max(router_busy, max(shard_busy))`.
    pub fn shard_busy(&self) -> Vec<Duration> {
        self.busy_nanos.iter().map(|&n| Duration::from_nanos(n)).collect()
    }

    /// Cumulative router busy time (batch validation + routing +
    /// ring-buffer hand-off).
    pub fn router_busy(&self) -> Duration {
        Duration::from_nanos(self.router_nanos)
    }

    /// Selects threaded (default) or sequential batch processing.
    /// Sequential mode runs the same per-shard work on the calling
    /// thread — byte-identical output, useful for benchmarking the
    /// per-shard critical path without timeslice interference and for
    /// single-core hosts.
    pub fn set_threaded(&mut self, threaded: bool) {
        self.threaded = threaded;
    }

    /// `true` iff batches are processed on worker threads.
    pub fn is_threaded(&self) -> bool {
        self.threaded
    }

    /// Ingests one record — routed to its shard, no worker threads.
    ///
    /// Anomalies of units this record closes become visible in
    /// [`ShardedTiresias::anomalies`] after the next
    /// [`ShardedTiresias::push_batch`] or
    /// [`ShardedTiresias::advance_to`] call (merging waits until every
    /// shard has closed the unit). Prefer `push_batch` for throughput.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfOrder`] if `t_secs` falls before the
    /// engine's open timeunit, and propagates shard errors.
    pub fn push_str(&mut self, path: &str, t_secs: u64) -> Result<(), CoreError> {
        let unit = t_secs / self.builder.timeunit_secs;
        match self.open_unit {
            None => self.align_shards(unit)?,
            Some(open) if unit < open => {
                return Err(CoreError::OutOfOrder {
                    timestamp: t_secs,
                    open_unit_start: open * self.builder.timeunit_secs,
                });
            }
            Some(open) if unit > open => self.open_unit = Some(unit),
            Some(_) => {}
        }
        let shard = self.router.route(path);
        self.shards[shard].push_str(path, t_secs)
    }

    /// Ingests a batch of `(path, timestamp)` records — the sharded hot
    /// path.
    ///
    /// The batch is validated up front (timestamps must not precede the
    /// open timeunit; on error *nothing* is ingested), then routed by
    /// top-level label and streamed chunk-wise through bounded SPSC
    /// rings to one scoped worker thread per shard. Workers ingest
    /// concurrently and close timeunit boundaries in parallel; the
    /// final boundary of the batch is broadcast so every shard — even
    /// one that received no records — advances to the same open unit.
    /// Newly closed units' anomalies are then merged into the ordered
    /// store.
    ///
    /// Routing, interner lookups and ring synchronisation are amortised
    /// per batch; batches of a few thousand records or more make the
    /// per-record overhead negligible (see `BENCH_sharded.json`'s batch
    /// sweep).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfOrder`] (before ingesting anything) if
    /// a record's timestamp precedes the engine's open timeunit or an
    /// earlier record of the same batch, and propagates shard errors.
    pub fn push_batch<S: AsRef<str> + Sync>(
        &mut self,
        records: &[(S, u64)],
    ) -> Result<(), CoreError> {
        if records.is_empty() {
            self.merge_events();
            return Ok(());
        }
        let t0 = Instant::now();
        let timeunit = self.builder.timeunit_secs;
        // Whole-batch validation: the stream must be in order exactly as
        // the unsharded detector requires, independent of routing.
        let watermark = crate::detector::validate_batch_order(self.open_unit, timeunit, records)?;
        let final_unit = watermark.expect("non-empty batch produced a watermark");
        self.router_nanos += t0.elapsed().as_nanos() as u64;
        if self.open_unit.is_none() {
            // First data: open the same unit on every shard, exactly as
            // the unsharded detector opens at its first record.
            self.align_shards(records[0].1 / timeunit)?;
        }
        if self.threaded {
            self.run_batch_threaded(records, final_unit)?;
        } else {
            self.run_batch_sequential(records, final_unit)?;
        }
        self.open_unit = Some(final_unit);
        self.merge_events();
        self.maybe_rebalance();
        Ok(())
    }

    /// Advances the clock to `t_secs` on every shard in parallel,
    /// closing every timeunit that ends at or before it (including
    /// empty ones), then merges the newly closed units' anomalies.
    ///
    /// # Errors
    ///
    /// Propagates shard errors (tracker construction at the warm-up
    /// boundary).
    pub fn advance_to(&mut self, t_secs: u64) -> Result<(), CoreError> {
        let target = t_secs / self.builder.timeunit_secs;
        let Some(open) = self.open_unit else {
            self.align_shards(target)?;
            return Ok(());
        };
        // Never move a shard backwards relative to the global watermark:
        // laggards catch up to `open` even when `target` is older.
        let target = target.max(open);
        let target_secs = target * self.builder.timeunit_secs;
        if self.threaded && self.shards.len() > 1 {
            let busy = &mut self.busy_nanos;
            let shards = &mut self.shards;
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .zip(busy.iter_mut())
                    .map(|(shard, busy_slot)| {
                        scope.spawn(move || {
                            let t0 = Instant::now();
                            let result = shard.advance_to(target_secs);
                            *busy_slot += t0.elapsed().as_nanos() as u64;
                            result
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard close worker never panics"))
                    .collect::<Result<Vec<()>, CoreError>>()
            })?;
        } else {
            for (shard, busy_slot) in self.shards.iter_mut().zip(self.busy_nanos.iter_mut()) {
                let t0 = Instant::now();
                shard.advance_to(target_secs)?;
                *busy_slot += t0.elapsed().as_nanos() as u64;
            }
        }
        self.open_unit = Some(target);
        self.merge_events();
        self.maybe_rebalance();
        Ok(())
    }

    /// Opens timeunit `unit` on every shard (no units close; shards are
    /// all still empty or at an earlier open unit).
    fn align_shards(&mut self, unit: u64) -> Result<(), CoreError> {
        let t = unit * self.builder.timeunit_secs;
        for shard in &mut self.shards {
            shard.advance_to(t)?;
        }
        self.open_unit = Some(unit);
        Ok(())
    }

    /// Threaded batch execution: one scoped worker per shard pulls
    /// index chunks from its SPSC ring while the router partitions the
    /// batch on the calling thread.
    fn run_batch_threaded<S: AsRef<str> + Sync>(
        &mut self,
        records: &[(S, u64)],
        final_unit: u64,
    ) -> Result<(), CoreError> {
        let n = self.shards.len();
        let router = &self.router;
        let advance_secs = final_unit * self.builder.timeunit_secs;
        let rings: Vec<ShardRing<Vec<u32>>> =
            (0..n).map(|_| ShardRing::new(RING_CAPACITY)).collect();
        let busy = &mut self.busy_nanos;
        let shards = &mut self.shards;
        let router_nanos = &mut self.router_nanos;
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .zip(rings.iter())
                .zip(busy.iter_mut())
                .map(|((shard, ring), busy_slot)| {
                    scope.spawn(move || -> Result<(), CoreError> {
                        // Any exit — drain, error, or a panic unwinding
                        // out of push_str — abandons the ring, so the
                        // router can never stay blocked on a full ring
                        // whose consumer is gone.
                        let _unblock_router = crate::ring::AbandonOnDrop(ring);
                        let mut busy_local = Duration::ZERO;
                        let work = loop {
                            let Some(chunk) = ring.pop() else { break Ok(()) };
                            let t0 = Instant::now();
                            let mut result = Ok(());
                            for i in chunk {
                                let (path, t) = &records[i as usize];
                                if let Err(e) = shard.push_str(path.as_ref(), *t) {
                                    result = Err(e);
                                    break;
                                }
                            }
                            busy_local += t0.elapsed();
                            if result.is_err() {
                                // Unblock the router before bailing out.
                                ring.abandon();
                                break result;
                            }
                        };
                        // Broadcast boundary: every shard ends the batch
                        // at the same open unit, closing its share of
                        // the passed units in parallel.
                        let work = work.and_then(|()| {
                            let t0 = Instant::now();
                            let r = shard.advance_to(advance_secs);
                            busy_local += t0.elapsed();
                            r
                        });
                        *busy_slot += busy_local.as_nanos() as u64;
                        work
                    })
                })
                .collect();

            // Route on the calling thread, overlapping the workers.
            let t0 = Instant::now();
            let mut scratch = RouteScratch::new();
            let mut chunks: Vec<Vec<u32>> = vec![Vec::with_capacity(CHUNK_RECORDS); n];
            for (i, (path, _)) in records.iter().enumerate() {
                let shard = scratch.route(router, path.as_ref());
                let chunk = &mut chunks[shard];
                chunk.push(i as u32);
                if chunk.len() >= CHUNK_RECORDS {
                    let full = std::mem::replace(chunk, Vec::with_capacity(CHUNK_RECORDS));
                    // `false` = the worker abandoned after an error; keep
                    // routing so the remaining shards finish normally.
                    let _ = rings[shard].push(full);
                }
            }
            for (ring, chunk) in rings.iter().zip(chunks) {
                if !chunk.is_empty() {
                    let _ = ring.push(chunk);
                }
                ring.finish();
            }
            *router_nanos += t0.elapsed().as_nanos() as u64;

            handles
                .into_iter()
                .map(|h| h.join().expect("shard ingest worker never panics"))
                .collect::<Result<Vec<()>, CoreError>>()
        })?;
        Ok(())
    }

    /// Sequential batch execution: identical routing and per-shard
    /// record order, processed shard-by-shard on the calling thread.
    fn run_batch_sequential<S: AsRef<str> + Sync>(
        &mut self,
        records: &[(S, u64)],
        final_unit: u64,
    ) -> Result<(), CoreError> {
        let n = self.shards.len();
        let advance_secs = final_unit * self.builder.timeunit_secs;
        let t0 = Instant::now();
        let router = &self.router;
        let mut scratch = RouteScratch::new();
        let mut routed: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, (path, _)) in records.iter().enumerate() {
            routed[scratch.route(router, path.as_ref())].push(i as u32);
        }
        self.router_nanos += t0.elapsed().as_nanos() as u64;
        for ((shard, indices), busy_slot) in
            self.shards.iter_mut().zip(&routed).zip(self.busy_nanos.iter_mut())
        {
            let t0 = Instant::now();
            let mut work = Ok(());
            for &i in indices {
                let (path, t) = &records[i as usize];
                if let Err(e) = shard.push_str(path.as_ref(), *t) {
                    work = Err(e);
                    break;
                }
            }
            let work = work.and_then(|()| shard.advance_to(advance_secs));
            *busy_slot += t0.elapsed().as_nanos() as u64;
            work?;
        }
        Ok(())
    }

    /// Collects newly stored events from every shard and releases — in
    /// `(unit, path)` order, re-homed onto the report tree — all events
    /// of units that every shard has closed. Per-shard synthetic root
    /// events (level 0) are dropped: the shard root aggregates only the
    /// top-level labels that happen to share the shard, so its series
    /// is not shard-count invariant (see the module docs).
    fn merge_events(&mut self) {
        for (shard, cursor) in self.shards.iter_mut().zip(self.merged.iter_mut()) {
            let (_skipped, tail) = shard.store().events_from(*cursor);
            for event in tail {
                if event.level >= 1 {
                    self.pending.push(event.clone());
                }
            }
            let next = shard.store().next_seq();
            *cursor = next;
            // The shard-internal store's only consumer is this merge:
            // truncating behind the cursor keeps every shard store
            // bounded by construction, whatever the retention budget.
            shard.store_mut().discard_through(next);
        }
        // A unit still open on any shard may yet produce events there;
        // only strictly older units are final.
        let release_before =
            self.shards.iter().map(|s| s.current_unit().unwrap_or(0)).min().unwrap_or(0);
        // No `(unit, path)` duplicates exist across shards (a unit
        // reports a path at most once, and a path lives on one shard),
        // so the order is total and an unstable sort is safe; comparing
        // fields directly skips the tuple construction of the obvious
        // `(a.unit, &a.path).cmp(..)` in this O(n log n) inner loop.
        self.pending.sort_unstable_by(|a, b| a.unit.cmp(&b.unit).then_with(|| a.path.cmp(&b.path)));
        let releasable = self
            .pending
            .iter()
            .position(|e| e.unit >= release_before)
            .unwrap_or(self.pending.len());
        for event in self.pending.drain(..releasable) {
            // The store re-homes each event's node onto its report tree.
            self.store.insert(event);
        }
        if release_before > 0 {
            // Everything below the slowest shard's open unit is final:
            // record the close so the retention budget can evict.
            self.store.note_closed(release_before - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TiresiasBuilder;

    fn builder() -> TiresiasBuilder {
        TiresiasBuilder::new()
            .timeunit_secs(900)
            .window_len(32)
            .threshold(5.0)
            .season_length(4)
            .sensitivity(2.0, 5.0)
            .warmup_units(4)
            .ref_levels(2)
    }

    fn burst_batch(paths: &[&str], units: u64, burst_unit: u64) -> Vec<(String, u64)> {
        let mut batch = Vec::new();
        for u in 0..units {
            for (k, p) in paths.iter().enumerate() {
                let count = if u == burst_unit && k == 0 { 80 } else { 8 };
                for i in 0..count {
                    batch.push((p.to_string(), u * 900 + i));
                }
            }
        }
        batch
    }

    #[test]
    fn router_is_deterministic_and_top_level_only() {
        let r = ShardRouter::new(8);
        assert_eq!(r.route("a/b/c"), r.route("a/zzz"));
        assert_eq!(r.route("a/b/c"), r.route("/a//b"));
        let spread: std::collections::HashSet<usize> =
            (0..64).map(|i| r.route(&format!("label-{i}/x"))).collect();
        assert!(spread.len() > 4, "64 labels spread over several of 8 shards");
        assert_eq!(ShardRouter::new(0).shards(), 1, "clamped to one shard");
    }

    #[test]
    fn detects_like_the_single_detector() {
        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead", "Mail/Bounce"];
        let batch = burst_batch(&paths, 10, 9);
        let mut engine = builder().shards(4).build_sharded().unwrap();
        engine.push_batch(&batch).unwrap();
        engine.advance_to(10 * 900).unwrap();
        assert!(engine.is_warmed_up());
        assert_eq!(engine.units_processed(), 10);
        let events = engine.anomalies();
        assert_eq!(events.len(), 1, "exactly the injected burst: {events:?}");
        assert_eq!(events[0].path.to_string(), "TV/NoService");
        assert_eq!(events[0].unit, 9);
        // The event's node id lives in the report tree.
        assert_eq!(engine.tree().path_of(events[0].node), events[0].path);
    }

    #[test]
    fn threaded_and_sequential_agree() {
        let paths = ["a/x", "b/y", "c/z", "d/w", "e/v"];
        let batch = burst_batch(&paths, 8, 7);
        let mut threaded = builder().shards(4).build_sharded().unwrap();
        let mut sequential = builder().shards(4).build_sharded().unwrap();
        sequential.set_threaded(false);
        assert!(threaded.is_threaded() && !sequential.is_threaded());
        for chunk in batch.chunks(97) {
            threaded.push_batch(chunk).unwrap();
            sequential.push_batch(chunk).unwrap();
        }
        threaded.advance_to(9 * 900).unwrap();
        sequential.advance_to(9 * 900).unwrap();
        assert_eq!(threaded.anomalies(), sequential.anomalies());
        assert_eq!(threaded.heavy_hitter_paths(), sequential.heavy_hitter_paths());
        assert_eq!(threaded.units_processed(), sequential.units_processed());
    }

    #[test]
    fn batches_are_rejected_atomically_when_out_of_order() {
        let mut engine = builder().shards(2).build_sharded().unwrap();
        engine.push_batch(&[("a/x", 5000u64)]).unwrap();
        let units_before = engine.units_processed();
        // Second record regresses below the open unit: nothing ingests.
        let err = engine.push_batch(&[("a/x", 5100u64), ("b/y", 100u64)]).unwrap_err();
        assert!(matches!(err, CoreError::OutOfOrder { .. }));
        assert_eq!(engine.units_processed(), units_before);
        // The engine remains usable.
        engine.push_batch(&[("b/y", 5200u64)]).unwrap();
    }

    #[test]
    fn push_str_merges_on_next_advance() {
        let mut engine = builder().shards(3).build_sharded().unwrap();
        for u in 0..6u64 {
            for i in 0..30 {
                engine.push_str("hot/leaf", u * 900 + i).unwrap();
            }
        }
        for i in 0..300 {
            engine.push_str("hot/leaf", 6 * 900 + i).unwrap();
        }
        engine.advance_to(7 * 900).unwrap();
        assert_eq!(engine.anomalies().len(), 1);
        assert_eq!(engine.anomalies()[0].unit, 6);
        let hh = engine.heavy_hitter_paths();
        assert!(hh.iter().any(|p| p.to_string() == "hot/leaf"), "{hh:?}");
    }

    #[test]
    fn out_of_order_push_str_is_rejected() {
        let mut engine = builder().shards(2).build_sharded().unwrap();
        engine.push_str("a", 5000).unwrap();
        engine.advance_to(9000).unwrap();
        let err = engine.push_str("a", 100).unwrap_err();
        assert!(matches!(err, CoreError::OutOfOrder { .. }));
    }

    #[test]
    fn empty_batches_and_gaps_are_harmless() {
        let mut engine = builder().shards(2).build_sharded().unwrap();
        engine.push_batch::<String>(&[]).unwrap();
        engine.push_batch(&[("a/x", 0u64)]).unwrap();
        // Jump 5 units ahead: the gap closes as zero units everywhere.
        engine.push_batch(&[("a/x", 6 * 900u64)]).unwrap();
        assert_eq!(engine.units_processed(), 6);
        // advance_to with an older timestamp never regresses.
        engine.advance_to(0).unwrap();
        assert_eq!(engine.current_unit(), Some(6));
    }

    #[test]
    fn auto_seasonality_is_rejected() {
        let err = builder().auto_seasonality(2).shards(2).build_sharded().unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
        assert!(err.to_string().contains("auto_seasonality"));
    }

    #[test]
    fn clock_driven_close_and_accounting() {
        let mut engine = builder().shards(2).build_sharded().unwrap();
        assert_eq!(engine.close_current_unit().unwrap(), None, "nothing open yet");
        engine.push_batch(&[("a/x", 10u64), ("b/y", 20u64)]).unwrap();
        assert_eq!(engine.timeunit_secs(), 900);
        assert_eq!(engine.open_unit_records(), 2.0);
        assert_eq!(engine.shard_open_records().iter().sum::<f64>(), 2.0);
        assert_eq!(engine.close_current_unit().unwrap(), Some(0));
        assert_eq!(engine.current_unit(), Some(1));
        assert_eq!(engine.open_unit_records(), 0.0, "open counts reset at close");
        assert_eq!(engine.units_processed(), 1);
    }

    #[test]
    fn busy_accounting_accumulates() {
        let mut engine = builder().shards(2).build_sharded().unwrap();
        engine.push_batch(&burst_batch(&["a/x", "b/y"], 4, 99)).unwrap();
        assert!(engine.router_busy() > Duration::ZERO);
        assert_eq!(engine.shard_busy().len(), 2);
        assert!(engine.shard_busy().iter().any(|&d| d > Duration::ZERO));
    }

    #[test]
    fn checkpoint_round_trips_mid_stream() {
        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead"];
        let batch = burst_batch(&paths, 10, 8);
        let split_at = batch.iter().position(|&(_, t)| t >= 6 * 900).unwrap();

        let mut reference = builder().shards(4).build_sharded().unwrap();
        reference.push_batch(&batch).unwrap();
        reference.advance_to(10 * 900).unwrap();

        let mut first_half = builder().shards(4).build_sharded().unwrap();
        first_half.push_batch(&batch[..split_at]).unwrap();
        let json = serde_json::to_string(&first_half).expect("serialises");
        drop(first_half);
        let mut resumed: ShardedTiresias = serde_json::from_str(&json).expect("deserialises");
        resumed.push_batch(&batch[split_at..]).unwrap();
        resumed.advance_to(10 * 900).unwrap();

        assert_eq!(reference.anomalies(), resumed.anomalies());
        assert_eq!(reference.heavy_hitter_paths(), resumed.heavy_hitter_paths());
        assert_eq!(reference.units_processed(), resumed.units_processed());
        assert!(!reference.anomalies().is_empty(), "the burst is detected");
    }

    #[test]
    fn router_overrides_round_trip_through_serde() {
        let mut r = ShardRouter::new(4);
        let native = r.route("TV/x");
        r.pin("TV", ((native + 1) % 4) as u32);
        r.pin("Net", 3);
        r.pin("", 2); // root label: ignored
        assert_eq!(r.pinned_count(), 2);
        assert_eq!(r.route("TV/anything"), (native + 1) % 4);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("overrides"), "table is the persisted form: {json}");
        let back: ShardRouter = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r, "overrides and rebuilt hash index round-trip");
        assert_eq!(back.route("TV/anything"), (native + 1) % 4);
        // Re-pinning repoints rather than duplicating.
        r.pin("TV", 0);
        assert_eq!(r.pinned_count(), 2);
        assert_eq!(r.route("TV/x"), 0);
    }

    #[test]
    fn plan_rebalance_moves_hot_labels_until_threshold() {
        let router = ShardRouter::new(4);
        // Everything on one shard: three hot labels plus a tail.
        let hot_shard = router.route("hot0/x");
        let mut loads: Vec<(String, f64)> = Vec::new();
        let mut name = 0usize;
        let mut labels_on_hot = Vec::new();
        while labels_on_hot.len() < 6 {
            let label = format!("hot{name}");
            name += 1;
            if router.route(&format!("{label}/x")) == hot_shard {
                labels_on_hot.push(label);
            }
        }
        for (i, l) in labels_on_hot.iter().enumerate() {
            loads.push((l.clone(), 100.0 - i as f64));
        }
        let cfg = RebalanceConfig::enabled().with_threshold(1.2);
        let moves = plan_rebalance(&loads, &router, &cfg);
        assert!(!moves.is_empty());
        assert!(moves.len() <= cfg.max_moves_per_epoch);
        // Deterministic: same inputs, same plan — and input order is
        // irrelevant.
        let mut shuffled = loads.clone();
        shuffled.reverse();
        assert_eq!(moves, plan_rebalance(&shuffled, &router, &cfg));
        // Every move strictly improves: re-planning after applying the
        // moves to a router leaves the worst shard at or under its
        // pre-move load.
        let mut pinned = router.clone();
        for (label, shard) in &moves {
            pinned.pin(label, *shard);
        }
        let load_of = |r: &ShardRouter| {
            let mut per = [0.0f64; 4];
            for (l, w) in &loads {
                per[r.route(l)] += w;
            }
            per.iter().cloned().fold(0.0f64, f64::max)
        };
        assert!(load_of(&pinned) < load_of(&router));
        // A balanced load plans nothing.
        let balanced: Vec<(String, f64)> = (0..4).map(|s| (format!("s{s}"), 10.0)).collect();
        let spread_router = ShardRouter::new(1);
        assert!(plan_rebalance(&balanced, &spread_router, &cfg).is_empty(), "one shard");
    }

    #[test]
    fn adaptive_rebalancing_is_byte_identical_to_static_routing() {
        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead", "Mail/Bounce", "Web/500"];
        // Heavy skew: the first label dominates.
        let mut batch: Vec<(String, u64)> = Vec::new();
        for u in 0..12u64 {
            for (k, p) in paths.iter().enumerate() {
                let count = if k == 0 {
                    60
                } else if u == 10 && k == 1 {
                    90
                } else {
                    6
                };
                for i in 0..count {
                    batch.push((p.to_string(), u * 900 + i));
                }
            }
        }
        let mut fixed = builder().shards(4).build_sharded().unwrap();
        let mut adaptive = builder().shards(4).build_sharded().unwrap();
        adaptive.set_rebalance(RebalanceConfig::enabled().with_threshold(1.05));
        assert!(adaptive.rebalance_config().enabled);
        for chunk in batch.chunks(217) {
            fixed.push_batch(chunk).unwrap();
            adaptive.push_batch(chunk).unwrap();
        }
        fixed.advance_to(12 * 900).unwrap();
        adaptive.advance_to(12 * 900).unwrap();
        assert!(adaptive.rebalances() > 0, "the skew forced moves");
        assert!(adaptive.shard_balance() >= 1.0);
        assert!(adaptive.router().pinned_count() > 0);
        assert_eq!(fixed.anomalies(), adaptive.anomalies());
        assert_eq!(fixed.heavy_hitter_paths(), adaptive.heavy_hitter_paths());
        assert_eq!(fixed.tree_paths(), adaptive.tree_paths());
        assert!(!fixed.anomalies().is_empty(), "the burst is detected");
    }

    #[test]
    fn explicit_pins_apply_at_the_next_barrier_without_changing_output() {
        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead"];
        let batch = burst_batch(&paths, 10, 8);
        let split = batch.iter().position(|&(_, t)| t >= 5 * 900).unwrap();
        let mut fixed = builder().shards(4).build_sharded().unwrap();
        fixed.push_batch(&batch).unwrap();
        fixed.advance_to(10 * 900).unwrap();

        let mut pinned = builder().shards(4).build_sharded().unwrap();
        pinned.push_batch(&batch[..split]).unwrap();
        // Mid-stream, move every label onto shard 0; the transplants
        // happen at the next batch's barrier.
        for label in ["TV", "Net", "Phone"] {
            pinned.pin_label(label, 0);
        }
        pinned.push_batch(&batch[split..]).unwrap();
        pinned.advance_to(10 * 900).unwrap();
        for label in ["TV", "Net", "Phone"] {
            assert_eq!(pinned.router().route(&format!("{label}/x")), 0);
        }
        assert!(pinned.rebalances() > 0, "at least one pin changed ownership");
        assert_eq!(fixed.anomalies(), pinned.anomalies());
        assert_eq!(fixed.heavy_hitter_paths(), pinned.heavy_hitter_paths());
        assert_eq!(fixed.tree_paths(), pinned.tree_paths());
        assert!(!fixed.anomalies().is_empty(), "the burst is detected");
    }

    #[test]
    fn pinned_placement_survives_a_checkpoint() {
        let paths = ["TV/NoService", "Net/Slow", "Phone/Dead"];
        let batch = burst_batch(&paths, 6, 99);
        let mut engine = builder().shards(4).build_sharded().unwrap();
        engine.set_rebalance(RebalanceConfig::enabled().with_threshold(1.0));
        engine.push_batch(&batch).unwrap();
        engine.advance_to(6 * 900).unwrap();
        let pins = engine.router().overrides().to_vec();
        let json = serde_json::to_string(&engine).unwrap();
        let resumed: ShardedTiresias = serde_json::from_str(&json).unwrap();
        assert_eq!(resumed.router().overrides(), pins.as_slice());
        // Policy is runtime config and intentionally not persisted.
        assert!(!resumed.rebalance_config().enabled);
    }
}
