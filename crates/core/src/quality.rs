//! Detection-*quality* scoring: confusion counts and detector-vs-
//! detector comparison reports (the paper's Tables V and VI).
//!
//! Nothing here measures the daemon's runtime behaviour — that is
//! `tiresias-telemetry`'s job ("metrics" in this workspace always
//! means runtime telemetry). This module scores how well one detector
//! reproduces another's anomaly verdicts: ADA against the exact STA
//! strawman, or Tiresias against the Shewhart control-chart reference
//! method.

use serde::{Deserialize, Serialize};

use tiresias_hierarchy::CategoryPath;

/// Standard confusion counts used when one detector serves as ground
/// truth for another (the paper's Table V: ADA scored against STA).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionCounts {
    /// Flagged by both.
    pub true_positives: usize,
    /// Flagged only by the candidate.
    pub false_positives: usize,
    /// Flagged only by the ground truth.
    pub false_negatives: usize,
    /// Flagged by neither.
    pub true_negatives: usize,
}

impl ConfusionCounts {
    /// Accumulates one scored case.
    pub fn record(&mut self, truth: bool, candidate: bool) {
        match (truth, candidate) {
            (true, true) => self.true_positives += 1,
            (false, true) => self.false_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Total scored cases.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }

    /// `(TP + TN) / total`, 1.0 when no cases were scored.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / self.total() as f64
        }
    }

    /// `TP / (TP + FP)`, 1.0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            1.0
        } else {
            self.true_positives as f64 / flagged as f64
        }
    }

    /// `TP / (TP + FN)`, 1.0 when the truth holds no positives.
    pub fn recall(&self) -> f64 {
        let truth = self.true_positives + self.false_negatives;
        if truth == 0 {
            1.0
        } else {
            self.true_positives as f64 / truth as f64
        }
    }
}

/// One located anomaly in the §VII-B comparison: where and when.
pub type LocatedAnomaly = (CategoryPath, u64);

/// The paper's §VII-B comparison of Tiresias against an incomplete
/// reference anomaly set, with its location-cover semantics:
///
/// * **TA** (true alarm): a reference anomaly matched by a Tiresias
///   anomaly in the same timeunit at the same node *or any descendant*
///   (Tiresias locating the event with finer granularity still counts),
/// * **MA** (missed anomaly): a reference anomaly with no such match,
/// * **NA** (new anomaly): a Tiresias anomaly unrelated to every
///   reference anomaly,
/// * **TN** (true negative): an examined-but-unflagged case unrelated to
///   every reference anomaly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// Reference anomalies Tiresias confirmed (possibly deeper).
    pub true_alarms: usize,
    /// Reference anomalies Tiresias missed.
    pub missed_anomalies: usize,
    /// Tiresias anomalies unknown to the reference method.
    pub new_anomalies: usize,
    /// Unflagged cases unrelated to any reference anomaly.
    pub true_negatives: usize,
}

impl ComparisonReport {
    /// Scores Tiresias against a reference set.
    ///
    /// * `reference` — the reference anomalies (location, timeunit),
    /// * `tiresias` — Tiresias' anomalies,
    /// * `negatives` — the cases Tiresias examined but did not flag
    ///   (heavy hitters without an alarm).
    pub fn score(
        reference: &[LocatedAnomaly],
        tiresias: &[LocatedAnomaly],
        negatives: &[LocatedAnomaly],
    ) -> Self {
        let covers = |r: &LocatedAnomaly, t: &LocatedAnomaly| -> bool {
            r.1 == t.1 && r.0.is_ancestor_or_equal(&t.0)
        };
        let mut report = ComparisonReport::default();
        for r in reference {
            if tiresias.iter().any(|t| covers(r, t)) {
                report.true_alarms += 1;
            } else {
                report.missed_anomalies += 1;
            }
        }
        for t in tiresias {
            if !reference.iter().any(|r| covers(r, t)) {
                report.new_anomalies += 1;
            }
        }
        for n in negatives {
            if !reference.iter().any(|r| covers(r, n)) {
                report.true_negatives += 1;
            }
        }
        report
    }

    /// Type 1 — overall agreement:
    /// `(TA + TN) / (TA + TN + MA + NA)`.
    pub fn type1(&self) -> f64 {
        let total =
            self.true_alarms + self.true_negatives + self.missed_anomalies + self.new_anomalies;
        if total == 0 {
            1.0
        } else {
            (self.true_alarms + self.true_negatives) as f64 / total as f64
        }
    }

    /// Type 2 — reference coverage: `TA / (TA + MA)`.
    pub fn type2(&self) -> f64 {
        let total = self.true_alarms + self.missed_anomalies;
        if total == 0 {
            1.0
        } else {
            self.true_alarms as f64 / total as f64
        }
    }

    /// Type 3 — negative agreement: `TN / (TN + NA)`.
    pub fn type3(&self) -> f64 {
        let total = self.true_negatives + self.new_anomalies;
        if total == 0 {
            1.0
        } else {
            self.true_negatives as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(s: &str) -> CategoryPath {
        s.parse().unwrap()
    }

    #[test]
    fn confusion_scores() {
        let mut c = ConfusionCounts::default();
        c.record(true, true);
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!(c.total(), 5);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_confusion_is_perfect() {
        let c = ConfusionCounts::default();
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn descendant_match_counts_as_true_alarm() {
        // The reference saw the VHO; Tiresias localised the IO below it.
        let reference = vec![(path("vho1"), 10u64)];
        let tiresias = vec![(path("vho1/io3"), 10u64)];
        let r = ComparisonReport::score(&reference, &tiresias, &[]);
        assert_eq!(r.true_alarms, 1);
        assert_eq!(r.missed_anomalies, 0);
        assert_eq!(r.new_anomalies, 0);
    }

    #[test]
    fn wrong_unit_or_branch_is_new_anomaly() {
        let reference = vec![(path("vho1"), 10u64)];
        let tiresias = vec![(path("vho1/io3"), 11u64), (path("vho2"), 10u64)];
        let r = ComparisonReport::score(&reference, &tiresias, &[]);
        assert_eq!(r.true_alarms, 0);
        assert_eq!(r.missed_anomalies, 1);
        assert_eq!(r.new_anomalies, 2);
    }

    #[test]
    fn negatives_related_to_reference_are_not_true_negatives() {
        let reference = vec![(path("vho1"), 10u64)];
        let negatives = vec![(path("vho1/io1"), 10u64), (path("vho2"), 10u64)];
        let r = ComparisonReport::score(&reference, &[], &negatives);
        // vho1/io1 is covered by the reference anomaly → not a TN.
        assert_eq!(r.true_negatives, 1);
        assert_eq!(r.missed_anomalies, 1);
    }

    #[test]
    fn type_metrics_match_formulas() {
        let r = ComparisonReport {
            true_alarms: 10,
            missed_anomalies: 1,
            new_anomalies: 2,
            true_negatives: 30,
        };
        assert!((r.type1() - 40.0 / 43.0).abs() < 1e-12);
        assert!((r.type2() - 10.0 / 11.0).abs() < 1e-12);
        assert!((r.type3() - 30.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_perfect() {
        let r = ComparisonReport::default();
        assert_eq!(r.type1(), 1.0);
        assert_eq!(r.type2(), 1.0);
        assert_eq!(r.type3(), 1.0);
    }
}
