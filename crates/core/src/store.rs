//! The retained report store — the library form of the paper's report
//! database behind the query/front-end layer (Fig. 3(f)).
//!
//! [`ReportStore`] replaces the linear-scan `Vec` the result path used
//! to end in. Events are kept in `(unit, path)` merge order over a flat
//! arena addressed by **global sequence numbers** (stable across
//! eviction), with two secondary indexes maintained on insert:
//!
//! * **per-unit blocks** — one `(unit, start_seq)` mark per closed
//!   timeunit with events, so [`ReportStore::in_time_range`] binary
//!   searches to a contiguous slice: O(log n + k);
//! * **a path-prefix index** reusing the hierarchy interner — the store
//!   owns a report [`Tree`]; every inserted event is re-homed onto it
//!   and appended to its node's posting list, so
//!   [`ReportStore::under`] resolves the prefix to a subtree and merges
//!   postings instead of scanning every event.
//!
//! The store is **bounded**: [`ReportStore::set_retention`] caps how
//! many closed timeunits of history are retained; closing a unit
//! ([`ReportStore::note_closed`]) evicts the oldest blocks beyond the
//! budget. Sequence numbers keep advancing across eviction, so
//! broadcast cursors ([`ReportStore::events_from`]) detect exactly how
//! much history they missed. Retained history serialises with the rest
//! of the engine state and survives a checkpoint round-trip; legacy
//! checkpoints holding the old `{"events": [...]}` store shape load
//! unchanged (the indexes rebuild from the event list).

use serde::{Deserialize, Serialize, Value};

use tiresias_hierarchy::{CategoryPath, Tree};

use crate::anomaly::AnomalyEvent;

/// Queryable, bounded store of detected anomalies.
///
/// # Example
///
/// ```
/// use tiresias_core::{AnomalyEvent, ReportStore};
///
/// let mut store = ReportStore::new();
/// store.insert(AnomalyEvent {
///     node: tiresias_hierarchy::Tree::new("All").root(), // re-homed on insert
///     path: "VHO-1/IO-2".parse().unwrap(),
///     level: 2,
///     unit: 10,
///     time_secs: 9000,
///     actual: 60.0,
///     forecast: 10.0,
///     kind: tiresias_core::AnomalyKind::Spike,
/// });
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.in_time_range(9, 11).count(), 1);
/// let prefix: tiresias_hierarchy::CategoryPath = "VHO-1".parse().unwrap();
/// assert_eq!(store.under(&prefix).count(), 1);
/// assert_eq!(store.query(0, 20, Some(&prefix), None, 10).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReportStore {
    /// The report tree: interner of every retained reported path. Event
    /// node ids refer to this tree.
    tree: Tree,
    /// Retained events in `(unit, path)` merge order; index `i` holds
    /// global sequence `first_seq + i`.
    events: Vec<AnomalyEvent>,
    /// Global sequence number of `events[0]` (seqs below it were
    /// evicted).
    first_seq: u64,
    /// One `(unit, start_seq)` mark per retained unit with events,
    /// ascending by unit.
    units: Vec<(u64, u64)>,
    /// Posting lists, parallel to the tree arena: ascending global seqs
    /// of the events reported at that exact node.
    postings: Vec<Vec<u64>>,
    /// Newest timeunit recorded as closed (drives retention).
    last_closed: Option<u64>,
    /// Retention budget in closed timeunits (`None` = unbounded).
    retain_units: Option<u64>,
    /// Events evicted so far (monotone gauge).
    evicted_events: u64,
    /// First unit whose events are guaranteed retained: everything
    /// older was (or would have been) evicted.
    evicted_before: u64,
}

impl Default for ReportStore {
    fn default() -> Self {
        ReportStore::new()
    }
}

impl ReportStore {
    /// Creates an empty, unbounded store (report-tree root `All`).
    pub fn new() -> Self {
        ReportStore::with_root("All")
    }

    /// Creates an empty store whose report tree uses the given root
    /// label.
    pub fn with_root(root_label: impl Into<String>) -> Self {
        ReportStore {
            tree: Tree::new(root_label),
            events: Vec::new(),
            first_seq: 0,
            units: Vec::new(),
            postings: Vec::new(),
            last_closed: None,
            retain_units: None,
            evicted_events: 0,
            evicted_before: 0,
        }
    }

    /// Sets the retention budget: how many closed timeunits of history
    /// to keep (`None` = unbounded). Applies immediately.
    pub fn set_retention(&mut self, units: Option<u64>) {
        self.retain_units = units;
        self.evict_over_budget();
    }

    /// Sets the retention budget **without** applying it — the
    /// spill-aware variant of [`ReportStore::set_retention`] for the
    /// two-phase handoff: any immediately over-budget history stays in
    /// place until [`ReportStore::over_budget_prefix`] has been
    /// persisted elsewhere and [`ReportStore::apply_retention`] frees
    /// it.
    pub fn set_retention_deferred(&mut self, units: Option<u64>) {
        self.retain_units = units;
    }

    /// The configured retention budget.
    pub fn retention(&self) -> Option<u64> {
        self.retain_units
    }

    /// The tree the stored events' node ids refer to (reported paths
    /// only, grown in insertion order).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Appends an event, re-homing its node id onto the report tree and
    /// updating both indexes. Events must arrive in nondecreasing unit
    /// order (the merge order every engine produces).
    pub fn insert(&mut self, mut event: AnomalyEvent) {
        event.node = self.tree.insert_category(&event.path);
        if self.units.last().is_some_and(|&(u, _)| event.unit < u) {
            // Out-of-order insert — impossible through the engines,
            // which merge in unit order, but reachable through direct
            // store use. Restore the sorted-blocks invariant the
            // binary-searched queries rely on: stable-resort by unit
            // (within-unit insertion order is preserved) and rebuild
            // the indexes. Sequence cursors taken before this call
            // are invalidated.
            self.events.push(event);
            self.events.sort_by_key(|e| e.unit);
            self.rebuild_index();
            return;
        }
        if self.postings.len() < self.tree.len() {
            self.postings.resize(self.tree.len(), Vec::new());
        }
        let seq = self.next_seq();
        if self.units.last().map(|&(u, _)| u) != Some(event.unit) {
            self.units.push((event.unit, seq));
        }
        self.postings[event.node.index()].push(seq);
        self.events.push(event);
    }

    /// Records that every unit up to and including `unit` is closed,
    /// then evicts the oldest blocks beyond the retention budget.
    pub fn note_closed(&mut self, unit: u64) {
        if self.last_closed.is_none_or(|c| unit > c) {
            self.last_closed = Some(unit);
        }
        self.evict_over_budget();
    }

    /// The close half of [`ReportStore::note_closed`] **without** the
    /// eviction: advances the close watermark and nothing else. The
    /// durable pipeline uses it for the two-phase spill handoff —
    /// record the close, stage the over-budget prefix with
    /// [`ReportStore::over_budget_prefix`], hand it to the segment
    /// tier, and only then free it with
    /// [`ReportStore::apply_retention`] — so an evicted event is never
    /// dropped before it is durably archived.
    pub fn record_closed(&mut self, unit: u64) {
        if self.last_closed.is_none_or(|c| unit > c) {
            self.last_closed = Some(unit);
        }
    }

    /// Stages the eviction the current budget calls for, without
    /// performing it: the global sequence of the first over-budget
    /// event and the contiguous run of whole-unit blocks that
    /// [`ReportStore::apply_retention`] would free right now. Empty
    /// when the store is within budget.
    pub fn over_budget_prefix(&self) -> (u64, &[AnomalyEvent]) {
        let (Some(budget), Some(closed)) = (self.retain_units, self.last_closed) else {
            return (self.first_seq, &[]);
        };
        let cutoff = (closed + 1).saturating_sub(budget);
        let k = self.units.partition_point(|&(u, _)| u < cutoff);
        let boundary = self.units.get(k).map_or_else(|| self.next_seq(), |&(_, s)| s);
        (self.first_seq, &self.events[..(boundary - self.first_seq) as usize])
    }

    /// Applies the retention budget: evicts the blocks
    /// [`ReportStore::over_budget_prefix`] reported (the second phase
    /// of the spill handoff; equivalent to the eviction
    /// [`ReportStore::note_closed`] performs inline).
    pub fn apply_retention(&mut self) {
        self.evict_over_budget();
    }

    /// The newest timeunit recorded as closed.
    pub fn last_closed_unit(&self) -> Option<u64> {
        self.last_closed
    }

    /// The earliest unit whose events are guaranteed retained; queries
    /// below it may observe evicted (missing) history.
    pub fn retained_from(&self) -> u64 {
        self.evicted_before
    }

    /// Number of retained units that hold at least one event.
    pub fn retained_unit_count(&self) -> usize {
        self.units.len()
    }

    /// Events evicted by the retention budget so far.
    pub fn evicted_events(&self) -> u64 {
        self.evicted_events
    }

    /// Global sequence number of the oldest retained event.
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Global sequence number the next inserted event will get (equals
    /// the lifetime event count).
    pub fn next_seq(&self) -> u64 {
        self.first_seq + self.events.len() as u64
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All retained events in `(unit, path)` order.
    pub fn events(&self) -> &[AnomalyEvent] {
        &self.events
    }

    /// Drops every event below global sequence `seq` — the "consumed"
    /// truncation a pipeline stage applies after it has copied a
    /// prefix elsewhere (the sharded merge uses it to keep the
    /// shard-internal stores bounded by construction: a shard store
    /// holds only the events its merge has not yet collected,
    /// independent of any retention budget). Unlike retention
    /// eviction this needs no unit alignment; a partially consumed
    /// unit block keeps its tail.
    pub fn discard_through(&mut self, seq: u64) {
        let seq = seq.clamp(self.first_seq, self.next_seq());
        let n = (seq - self.first_seq) as usize;
        if n == 0 {
            return;
        }
        // A mark's block ends where the next one starts (the append
        // horizon for the last); it is fully consumed iff that end is
        // at or below `seq`. Computed before anything mutates.
        let block_end = |i: usize, units: &[(u64, u64)], next_seq: u64| {
            units.get(i + 1).map_or(next_seq, |&(_, s)| s)
        };
        let next_seq = self.next_seq();
        let fully_dropped = (0..self.units.len())
            .take_while(|&i| block_end(i, &self.units, next_seq) <= seq)
            .count();
        if let Some(&(unit, _)) = fully_dropped.checked_sub(1).and_then(|i| self.units.get(i)) {
            self.evicted_before = self.evicted_before.max(unit + 1);
        }
        let mut affected: Vec<usize> = self.events[..n].iter().map(|e| e.node.index()).collect();
        affected.sort_unstable();
        affected.dedup();
        for idx in affected {
            let cut = self.postings[idx].partition_point(|&s| s < seq);
            self.postings[idx].drain(..cut);
        }
        self.events.drain(..n);
        self.first_seq = seq;
        self.evicted_events += n as u64;
        self.units.drain(..fully_dropped);
        // A partially consumed block's mark advances to its first
        // surviving event.
        if let Some(first) = self.units.first_mut() {
            first.1 = first.1.max(seq);
        }
    }

    /// The global sequence of the first retained event at or after
    /// `unit` (the store's append horizon when no such block exists) —
    /// lets a unit-scoped cursor skip the non-matching prefix instead
    /// of scanning it.
    pub fn seq_lower_bound(&self, unit: u64) -> u64 {
        let idx = self.units.partition_point(|&(u, _)| u < unit);
        self.units.get(idx).map_or_else(|| self.next_seq(), |&(_, s)| s)
    }

    /// The retained events at or after global sequence `seq`, plus how
    /// many requested events were already evicted (`0` in the common
    /// case). The cursor primitive behind live broadcast and catch-up.
    pub fn events_from(&self, seq: u64) -> (u64, &[AnomalyEvent]) {
        let skipped = self.first_seq.saturating_sub(seq);
        let start = (seq.max(self.first_seq) - self.first_seq) as usize;
        (skipped, &self.events[start.min(self.events.len())..])
    }

    /// The retained global-seq window `[lo, hi)` covering units
    /// `[from_unit, to_unit)`.
    fn seq_range(&self, from_unit: u64, to_unit: u64) -> (u64, u64) {
        let lo_idx = self.units.partition_point(|&(u, _)| u < from_unit);
        let hi_idx = self.units.partition_point(|&(u, _)| u < to_unit);
        let lo = self.units.get(lo_idx).map_or_else(|| self.next_seq(), |&(_, s)| s);
        let hi = self.units.get(hi_idx).map_or_else(|| self.next_seq(), |&(_, s)| s);
        (lo, hi)
    }

    fn by_seq(&self, seq: u64) -> &AnomalyEvent {
        &self.events[(seq - self.first_seq) as usize]
    }

    /// Events whose timeunit lies in `[from_unit, to_unit)` — a binary
    /// search to a contiguous block range, O(log n + k).
    pub fn in_time_range(
        &self,
        from_unit: u64,
        to_unit: u64,
    ) -> impl Iterator<Item = &AnomalyEvent> {
        let (lo, hi) = self.seq_range(from_unit, to_unit);
        let lo = (lo - self.first_seq) as usize;
        let hi = (hi - self.first_seq) as usize;
        self.events[lo..hi].iter()
    }

    /// Events at or under the given category prefix (the drill-down
    /// query an operator runs on a suspicious region), answered from
    /// the prefix index: the prefix resolves to a report-tree node and
    /// the subtree's posting lists merge in sequence order.
    pub fn under<'a>(
        &'a self,
        prefix: &CategoryPath,
    ) -> impl Iterator<Item = &'a AnomalyEvent> + 'a {
        self.subtree_seqs(prefix, 0, u64::MAX).into_iter().map(|seq| self.by_seq(seq))
    }

    /// Ascending seqs of every event under `prefix` within the seq
    /// window `[lo, hi)`; empty when the prefix was never reported.
    fn subtree_seqs(&self, prefix: &CategoryPath, lo: u64, hi: u64) -> Vec<u64> {
        let Some(node) = self.tree.find_category(prefix) else {
            return Vec::new();
        };
        let mut seqs: Vec<u64> = Vec::new();
        for n in self.tree.subtree(node) {
            if let Some(list) = self.postings.get(n.index()) {
                let a = list.partition_point(|&s| s < lo);
                let b = list.partition_point(|&s| s < hi);
                seqs.extend_from_slice(&list[a..b]);
            }
        }
        seqs.sort_unstable();
        seqs
    }

    /// Events at an exact hierarchy level (1 = first level below the
    /// root).
    pub fn at_level(&self, level: usize) -> impl Iterator<Item = &AnomalyEvent> {
        self.events.iter().filter(move |e| e.level == level)
    }

    /// The combined read-path query: events with unit in
    /// `[from_unit, to_unit]` (inclusive, the wire convention), at or
    /// under `prefix` if given, at exactly `level` if given, truncated
    /// to `limit`. Results come back in `(unit, path)` order.
    pub fn query(
        &self,
        from_unit: u64,
        to_unit: u64,
        prefix: Option<&CategoryPath>,
        level: Option<usize>,
        limit: usize,
    ) -> Vec<&AnomalyEvent> {
        let to_excl = to_unit.saturating_add(1);
        let level_ok = |e: &AnomalyEvent| level.is_none_or(|l| e.level == l);
        match prefix {
            Some(p) if !p.is_root() => {
                let (lo, hi) = self.seq_range(from_unit, to_excl);
                self.subtree_seqs(p, lo, hi)
                    .into_iter()
                    .map(|seq| self.by_seq(seq))
                    .filter(|e| level_ok(e))
                    .take(limit)
                    .collect()
            }
            _ => {
                self.in_time_range(from_unit, to_excl).filter(|e| level_ok(e)).take(limit).collect()
            }
        }
    }

    /// Removes events that have an ancestor event in the same timeunit
    /// (the "simple data aggregation" the paper applies to new-anomaly
    /// cases in §VII-B), returning the number removed. Rebuilds the
    /// indexes; sequence-number cursors taken before the call are
    /// invalidated.
    pub fn dedup_ancestors(&mut self) -> usize {
        let before = self.events.len();
        let events = std::mem::take(&mut self.events);
        self.events = events
            .iter()
            .filter(|e| {
                !events.iter().any(|other| {
                    other.unit == e.unit
                        && other.path != e.path
                        && e.path.is_ancestor_or_equal(&other.path)
                })
            })
            .cloned()
            .collect();
        self.rebuild_index();
        before - self.events.len()
    }

    /// Iterates over all retained events.
    pub fn iter(&self) -> std::slice::Iter<'_, AnomalyEvent> {
        self.events.iter()
    }

    /// Evicts whole unit blocks older than `last_closed + 1 − budget`.
    fn evict_over_budget(&mut self) {
        let (Some(budget), Some(closed)) = (self.retain_units, self.last_closed) else {
            return;
        };
        let cutoff = (closed + 1).saturating_sub(budget);
        if cutoff <= self.evicted_before && self.units.first().is_none_or(|&(u, _)| u >= cutoff) {
            self.evicted_before = self.evicted_before.max(cutoff);
            return;
        }
        let k = self.units.partition_point(|&(u, _)| u < cutoff);
        let boundary = self.units.get(k).map_or_else(|| self.next_seq(), |&(_, s)| s);
        let n = (boundary - self.first_seq) as usize;
        if n > 0 {
            // Trim each affected node's posting-list head: the drained
            // events' seqs are exactly the postings below `boundary`.
            let mut affected: Vec<usize> =
                self.events[..n].iter().map(|e| e.node.index()).collect();
            affected.sort_unstable();
            affected.dedup();
            for idx in affected {
                let cut = self.postings[idx].partition_point(|&s| s < boundary);
                self.postings[idx].drain(..cut);
            }
            self.events.drain(..n);
            self.units.drain(..k);
            self.first_seq = boundary;
            self.evicted_events += n as u64;
        }
        self.evicted_before = self.evicted_before.max(cutoff);
    }

    /// Recomputes the unit blocks and posting lists from the retained
    /// event list (used by deserialisation and
    /// [`ReportStore::dedup_ancestors`]).
    fn rebuild_index(&mut self) {
        self.units.clear();
        self.postings = vec![Vec::new(); self.tree.len()];
        for (i, e) in self.events.iter().enumerate() {
            let seq = self.first_seq + i as u64;
            if self.units.last().map(|&(u, _)| u) != Some(e.unit) {
                self.units.push((e.unit, seq));
            }
            self.postings[e.node.index()].push(seq);
        }
    }
}

impl PartialEq for ReportStore {
    /// Observable-state equality: retained events (paths compare, node
    /// ids are store-local), sequence position, close/retention state.
    /// The tree is derived from the event history and not compared.
    fn eq(&self, other: &Self) -> bool {
        self.first_seq == other.first_seq
            && self.last_closed == other.last_closed
            && self.retain_units == other.retain_units
            && self.evicted_events == other.evicted_events
            && self.evicted_before == other.evicted_before
            && self.events.len() == other.events.len()
            && self.events.iter().zip(&other.events).all(|(a, b)| {
                (&a.path, a.unit, a.time_secs, a.level, a.actual, a.forecast, a.kind)
                    == (&b.path, b.unit, b.time_secs, b.level, b.actual, b.forecast, b.kind)
            })
    }
}

impl Extend<AnomalyEvent> for ReportStore {
    fn extend<I: IntoIterator<Item = AnomalyEvent>>(&mut self, iter: I) {
        for event in iter {
            self.insert(event);
        }
    }
}

impl<'a> IntoIterator for &'a ReportStore {
    type Item = &'a AnomalyEvent;
    type IntoIter = std::slice::Iter<'a, AnomalyEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl Serialize for ReportStore {
    fn to_value(&self) -> Value {
        let opt = |v: Option<u64>| v.map_or(Value::Null, Value::U64);
        Value::Map(vec![
            ("tree".to_string(), self.tree.to_value()),
            ("events".to_string(), self.events.to_value()),
            ("first_seq".to_string(), Value::U64(self.first_seq)),
            ("last_closed".to_string(), opt(self.last_closed)),
            ("retain_units".to_string(), opt(self.retain_units)),
            ("evicted_events".to_string(), Value::U64(self.evicted_events)),
            ("evicted_before".to_string(), Value::U64(self.evicted_before)),
        ])
    }
}

impl<'de> Deserialize<'de> for ReportStore {
    /// Rebuilds the store from its serialised form. The indexes are
    /// never serialised; they rebuild here. Legacy stores — the old
    /// `{"events": [...]}` shape with no tree or retention state —
    /// load too: the report tree and unit marks are reconstructed from
    /// the event list.
    fn from_value(value: &Value) -> Result<Self, serde::DeError> {
        let events: Vec<AnomalyEvent> = Deserialize::from_value(value.field("events")?)?;
        let opt_u64 = |name: &str| -> Result<Option<u64>, serde::DeError> {
            match value.field(name) {
                Ok(Value::Null) | Err(_) => Ok(None),
                Ok(Value::U64(v)) => Ok(Some(*v)),
                Ok(Value::I64(v)) if *v >= 0 => Ok(Some(*v as u64)),
                Ok(other) => {
                    Err(serde::DeError::new(format!("{name}: expected unit, got {}", other.kind())))
                }
            }
        };
        let mut tree = match value.field("tree") {
            Ok(t) => Tree::from_value(t)?,
            // Legacy store: rebuild the tree from the events. The root
            // label is not recorded in that shape, so it defaults to
            // `All` — cosmetic only (the root never appears in event
            // paths or query results).
            Err(_) => Tree::new("All"),
        };
        // Re-homing is idempotent on a serialised tree (every path is
        // already interned) and builds the tree outright for legacy
        // stores.
        let mut events = events;
        for e in &mut events {
            e.node = tree.insert_category(&e.path);
        }
        let last_closed = match value.field("last_closed") {
            Ok(_) => opt_u64("last_closed")?,
            // Legacy store (field absent entirely): events only exist
            // for closed units, so derive the close watermark.
            Err(_) => events.last().map(|e| e.unit),
        };
        let mut store = ReportStore {
            tree,
            events,
            first_seq: opt_u64("first_seq")?.unwrap_or(0),
            units: Vec::new(),
            postings: Vec::new(),
            last_closed,
            retain_units: opt_u64("retain_units")?,
            evicted_events: opt_u64("evicted_events")?.unwrap_or(0),
            evicted_before: opt_u64("evicted_before")?.unwrap_or(0),
        };
        store.rebuild_index();
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(path: &str, unit: u64) -> AnomalyEvent {
        let p: CategoryPath = path.parse().unwrap();
        AnomalyEvent {
            node: Tree::new("r").root(), // re-homed by insert
            path: p,
            level: path.split('/').count(),
            unit,
            time_secs: unit * 900,
            actual: 50.0,
            forecast: 5.0,
            kind: crate::anomaly::AnomalyKind::Spike,
        }
    }

    #[test]
    fn time_range_query() {
        let mut s = ReportStore::new();
        for u in 0..10 {
            s.insert(event("a", u));
        }
        assert_eq!(s.in_time_range(3, 6).count(), 3);
        assert_eq!(s.in_time_range(10, 20).count(), 0);
        assert_eq!(s.retained_unit_count(), 10);
    }

    #[test]
    fn prefix_query_covers_descendants() {
        let mut s = ReportStore::new();
        s.insert(event("vho1/io2", 1));
        s.insert(event("vho1", 2));
        s.insert(event("vho2", 3));
        let prefix: CategoryPath = "vho1".parse().unwrap();
        assert_eq!(s.under(&prefix).count(), 2);
        let root = CategoryPath::root();
        assert_eq!(s.under(&root).count(), 3);
        let unseen: CategoryPath = "never-reported".parse().unwrap();
        assert_eq!(s.under(&unseen).count(), 0);
        // Events are re-homed onto the store's own tree.
        for e in s.iter() {
            assert_eq!(s.tree().path_of(e.node), e.path);
        }
    }

    #[test]
    fn level_query() {
        let mut s = ReportStore::new();
        s.insert(event("a", 1));
        s.insert(event("a/b", 1));
        s.insert(event("a/b/c", 1));
        assert_eq!(s.at_level(1).count(), 1);
        assert_eq!(s.at_level(2).count(), 1);
        assert_eq!(s.at_level(9).count(), 0);
    }

    #[test]
    fn combined_query_filters_and_limits() {
        let mut s = ReportStore::new();
        for u in 0..6u64 {
            s.insert(event("tv/no-service", u));
            s.insert(event("tv/pixelation", u));
            s.insert(event("net/slow", u));
        }
        let tv: CategoryPath = "tv".parse().unwrap();
        assert_eq!(s.query(1, 2, Some(&tv), None, 100).len(), 4, "inclusive unit range");
        assert_eq!(s.query(1, 2, Some(&tv), Some(2), 100).len(), 4);
        assert_eq!(s.query(1, 2, Some(&tv), Some(1), 100).len(), 0);
        assert_eq!(s.query(0, 99, None, None, 5).len(), 5, "limit truncates");
        let ordered = s.query(0, 99, Some(&tv), None, 100);
        assert!(ordered.windows(2).all(|w| (w[0].unit, &w[0].path) <= (w[1].unit, &w[1].path)));
    }

    #[test]
    fn dedup_keeps_most_specific() {
        let mut s = ReportStore::new();
        s.insert(event("a", 1)); // ancestor of a/b at same unit
        s.insert(event("a/b", 1));
        s.insert(event("a", 2)); // different unit: kept
        let removed = s.dedup_ancestors();
        assert_eq!(removed, 1);
        assert_eq!(s.len(), 2);
        assert!(s.iter().any(|e| e.path.to_string() == "a/b"));
        assert!(s.iter().any(|e| e.unit == 2));
        // Indexes were rebuilt.
        assert_eq!(s.in_time_range(1, 2).count(), 1);
        let a: CategoryPath = "a".parse().unwrap();
        assert_eq!(s.under(&a).count(), 2);
    }

    #[test]
    fn retention_evicts_oldest_closed_units() {
        let mut s = ReportStore::new();
        s.set_retention(Some(3));
        for u in 0..10u64 {
            s.insert(event("a/x", u));
            s.insert(event("b/y", u));
            s.note_closed(u);
        }
        assert_eq!(s.last_closed_unit(), Some(9));
        assert_eq!(s.retained_from(), 7, "units 7..=9 retained under a 3-unit budget");
        assert_eq!(s.len(), 6);
        assert_eq!(s.evicted_events(), 14);
        assert_eq!(s.first_seq(), 14);
        assert_eq!(s.next_seq(), 20);
        assert_eq!(s.in_time_range(0, 7).count(), 0, "evicted history is gone");
        assert_eq!(s.in_time_range(7, 10).count(), 6);
        let a: CategoryPath = "a".parse().unwrap();
        assert_eq!(s.under(&a).count(), 3, "prefix index pruned with the events");
        // Cursor behind the eviction horizon reports what it missed.
        let (skipped, tail) = s.events_from(10);
        assert_eq!(skipped, 4);
        assert_eq!(tail.len(), 6);
    }

    #[test]
    fn zero_budget_retains_nothing_closed() {
        let mut s = ReportStore::new();
        s.set_retention(Some(0));
        s.insert(event("a", 0));
        s.note_closed(0);
        assert!(s.is_empty());
        assert_eq!(s.retained_from(), 1);
    }

    #[test]
    fn two_phase_eviction_never_makes_events_unreachable() {
        // The spill handoff: record the close, stage the over-budget
        // prefix, archive it elsewhere, then free it. At every step
        // each event must be reachable — in the staged slice or
        // through a query — and the staged slice must be exactly what
        // apply_retention later frees.
        let mut s = ReportStore::new();
        s.set_retention(Some(2));
        let mut archived: Vec<AnomalyEvent> = Vec::new();
        for u in 0..8u64 {
            s.insert(event("a/x", u));
            s.insert(event("b/y", u));
            s.record_closed(u);
            // Between record_closed and apply_retention nothing was
            // freed yet: the full history minus prior evictions is
            // still queryable.
            let (first, staged) = s.over_budget_prefix();
            assert_eq!(first, s.first_seq());
            let visible = s.query(0, 99, None, None, 1000).len() as u64 + archived.len() as u64;
            assert_eq!(visible, (u + 1) * 2, "no event unreachable during the handoff");
            // Hand the staged prefix to the archive...
            archived.extend(staged.iter().cloned());
            let staged_len = staged.len();
            let next_first = first + staged_len as u64;
            // ...and only then free it.
            s.apply_retention();
            assert_eq!(s.first_seq(), next_first, "exactly the staged slice was freed");
            // Archive + RAM still cover every event ever inserted,
            // with no overlap.
            assert_eq!(archived.len() as u64, s.first_seq());
            assert_eq!(archived.len() + s.len(), ((u + 1) * 2) as usize);
        }
        // The staged/applied pair behaves identically to note_closed.
        let mut reference = ReportStore::new();
        reference.set_retention(Some(2));
        for u in 0..8u64 {
            reference.insert(event("a/x", u));
            reference.insert(event("b/y", u));
            reference.note_closed(u);
        }
        assert_eq!(s, reference);
    }

    #[test]
    fn over_budget_prefix_is_empty_within_budget() {
        let mut s = ReportStore::new();
        s.insert(event("a", 0));
        s.record_closed(0);
        let (first, staged) = s.over_budget_prefix();
        assert_eq!((first, staged.len()), (0, 0), "unbounded store stages nothing");
        s.set_retention(Some(8));
        let (_, staged) = s.over_budget_prefix();
        assert!(staged.is_empty(), "within budget stages nothing");
    }

    #[test]
    fn retention_change_applies_immediately() {
        let mut s = ReportStore::new();
        for u in 0..8u64 {
            s.insert(event("a", u));
            s.note_closed(u);
        }
        assert_eq!(s.len(), 8);
        s.set_retention(Some(2));
        assert_eq!(s.retention(), Some(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.retained_from(), 6);
    }

    #[test]
    fn discard_through_truncates_consumed_prefix() {
        let mut s = ReportStore::new();
        for u in 0..4u64 {
            s.insert(event("a/x", u));
            s.insert(event("b/y", u));
        }
        // Consume 3 events: units 0 fully, unit 1 partially.
        s.discard_through(3);
        assert_eq!(s.first_seq(), 3);
        assert_eq!(s.next_seq(), 8);
        assert_eq!(s.len(), 5);
        assert_eq!(s.retained_from(), 1, "unit 0 fully consumed");
        assert_eq!(s.in_time_range(0, 1).count(), 0);
        assert_eq!(s.in_time_range(1, 2).count(), 1, "unit 1 keeps its tail");
        assert_eq!(s.in_time_range(2, 4).count(), 4);
        let b: CategoryPath = "b".parse().unwrap();
        assert_eq!(s.under(&b).count(), 3, "postings pruned with the prefix");
        assert_eq!(s.seq_lower_bound(2), 4);
        // Idempotent / out-of-range tolerant.
        s.discard_through(1);
        assert_eq!(s.len(), 5);
        s.discard_through(u64::MAX);
        assert!(s.is_empty());
        assert_eq!(s.first_seq(), 8);
        // Appending continues with fresh unit blocks.
        s.insert(event("a/x", 9));
        assert_eq!(s.in_time_range(9, 10).count(), 1);
    }

    #[test]
    fn out_of_order_insert_keeps_queries_correct() {
        // Only reachable through direct store use — the engines merge
        // in unit order — but it must degrade to a resort, not to a
        // corrupted binary-search index.
        let mut s = ReportStore::new();
        s.insert(event("a", 5));
        s.insert(event("b", 3));
        s.insert(event("a", 7));
        assert_eq!(s.in_time_range(3, 4).count(), 1);
        assert_eq!(s.in_time_range(0, 8).count(), 3);
        assert_eq!(s.seq_lower_bound(4), 1, "unit-5 block starts after the resorted unit-3 event");
        let a: CategoryPath = "a".parse().unwrap();
        assert_eq!(s.under(&a).count(), 2);
        assert_eq!(s.query(5, 7, Some(&a), None, 10).len(), 2);
    }

    #[test]
    fn extend_and_iterate() {
        let mut s = ReportStore::new();
        s.extend([event("a", 1), event("b", 2)]);
        assert_eq!(s.len(), 2);
        assert_eq!((&s).into_iter().count(), 2);
    }

    #[test]
    fn serde_round_trips_retained_history() {
        let mut s = ReportStore::new();
        s.set_retention(Some(4));
        for u in 0..9u64 {
            s.insert(event("tv/no-service", u));
            s.note_closed(u);
        }
        let json = serde_json::to_string(&s).expect("serialises");
        let restored: ReportStore = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(restored, s);
        assert_eq!(restored.first_seq(), s.first_seq());
        assert_eq!(restored.retention(), Some(4));
        assert_eq!(restored.last_closed_unit(), Some(8));
        let tv: CategoryPath = "tv".parse().unwrap();
        assert_eq!(restored.under(&tv).count(), 4);
    }

    #[test]
    fn legacy_event_list_stores_still_load() {
        // The pre-refactor EventStore shape: just an event list.
        let mut reference = ReportStore::new();
        reference.insert(event("tv/no-service", 3));
        reference.insert(event("net/slow", 5));
        let events_json = serde_json::to_string(&reference.events().to_vec()).expect("serialises");
        let legacy = format!("{{\"events\":{events_json}}}");
        let restored: ReportStore = serde_json::from_str(&legacy).expect("legacy shape loads");
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.last_closed_unit(), Some(5), "derived from the newest event");
        assert_eq!(restored.retention(), None);
        let tv: CategoryPath = "tv".parse().unwrap();
        assert_eq!(restored.under(&tv).count(), 1);
        assert_eq!(restored.in_time_range(3, 4).count(), 1);
    }
}
