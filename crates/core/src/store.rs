use serde::{Deserialize, Serialize};

use tiresias_hierarchy::CategoryPath;

use crate::anomaly::AnomalyEvent;

/// Queryable store of detected anomalies — the library-API substitute
/// for the paper's report database and Web front-end (Fig. 3(f)).
///
/// # Example
///
/// ```
/// use tiresias_core::{AnomalyEvent, EventStore};
/// use tiresias_hierarchy::Tree;
///
/// let mut tree = Tree::new("All");
/// let vho = tree.insert_path(&["VHO-1"]);
/// let mut store = EventStore::new();
/// store.insert(AnomalyEvent {
///     node: vho,
///     path: "VHO-1".parse().unwrap(),
///     level: 1,
///     unit: 10,
///     time_secs: 9000,
///     actual: 60.0,
///     forecast: 10.0,
///     kind: tiresias_core::AnomalyKind::Spike,
/// });
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.in_time_range(9, 11).count(), 1);
/// let prefix: tiresias_hierarchy::CategoryPath = "VHO-1".parse().unwrap();
/// assert_eq!(store.under(&prefix).count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventStore {
    events: Vec<AnomalyEvent>,
}

impl EventStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        EventStore { events: Vec::new() }
    }

    /// Appends an event.
    pub fn insert(&mut self, event: AnomalyEvent) {
        self.events.push(event);
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no events are stored.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events in insertion (time) order.
    pub fn events(&self) -> &[AnomalyEvent] {
        &self.events
    }

    /// Events whose timeunit lies in `[from_unit, to_unit)`.
    pub fn in_time_range(
        &self,
        from_unit: u64,
        to_unit: u64,
    ) -> impl Iterator<Item = &AnomalyEvent> {
        self.events.iter().filter(move |e| e.unit >= from_unit && e.unit < to_unit)
    }

    /// Events at or under the given category prefix (the drill-down
    /// query an operator runs on a suspicious region).
    pub fn under<'a>(
        &'a self,
        prefix: &'a CategoryPath,
    ) -> impl Iterator<Item = &'a AnomalyEvent> + 'a {
        self.events.iter().filter(move |e| prefix.is_ancestor_or_equal(&e.path))
    }

    /// Events at an exact hierarchy level (1 = first level below the
    /// root).
    pub fn at_level(&self, level: usize) -> impl Iterator<Item = &AnomalyEvent> {
        self.events.iter().filter(move |e| e.level == level)
    }

    /// Removes events that have an ancestor event in the same timeunit
    /// (the "simple data aggregation" the paper applies to new-anomaly
    /// cases in §VII-B), returning the number removed.
    pub fn dedup_ancestors(&mut self) -> usize {
        let before = self.events.len();
        let events = std::mem::take(&mut self.events);
        let kept: Vec<AnomalyEvent> = events
            .iter()
            .filter(|e| {
                !events.iter().any(|other| {
                    other.unit == e.unit
                        && other.path != e.path
                        && e.path.is_ancestor_or_equal(&other.path)
                })
            })
            .cloned()
            .collect();
        self.events = kept;
        before - self.events.len()
    }

    /// Iterates over all events.
    pub fn iter(&self) -> std::slice::Iter<'_, AnomalyEvent> {
        self.events.iter()
    }
}

impl Extend<AnomalyEvent> for EventStore {
    fn extend<I: IntoIterator<Item = AnomalyEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a EventStore {
    type Item = &'a AnomalyEvent;
    type IntoIter = std::slice::Iter<'a, AnomalyEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiresias_hierarchy::Tree;

    fn event(tree: &mut Tree, path: &str, unit: u64) -> AnomalyEvent {
        let p: CategoryPath = path.parse().unwrap();
        let node = tree.insert_category(&p);
        AnomalyEvent {
            node,
            path: p,
            level: path.split('/').count(),
            unit,
            time_secs: unit * 900,
            actual: 50.0,
            forecast: 5.0,
            kind: crate::anomaly::AnomalyKind::Spike,
        }
    }

    #[test]
    fn time_range_query() {
        let mut t = Tree::new("r");
        let mut s = EventStore::new();
        for u in 0..10 {
            s.insert(event(&mut t, "a", u));
        }
        assert_eq!(s.in_time_range(3, 6).count(), 3);
        assert_eq!(s.in_time_range(10, 20).count(), 0);
    }

    #[test]
    fn prefix_query_covers_descendants() {
        let mut t = Tree::new("r");
        let mut s = EventStore::new();
        s.insert(event(&mut t, "vho1/io2", 1));
        s.insert(event(&mut t, "vho1", 2));
        s.insert(event(&mut t, "vho2", 3));
        let prefix: CategoryPath = "vho1".parse().unwrap();
        assert_eq!(s.under(&prefix).count(), 2);
        let root = CategoryPath::root();
        assert_eq!(s.under(&root).count(), 3);
    }

    #[test]
    fn level_query() {
        let mut t = Tree::new("r");
        let mut s = EventStore::new();
        s.insert(event(&mut t, "a", 1));
        s.insert(event(&mut t, "a/b", 1));
        s.insert(event(&mut t, "a/b/c", 1));
        assert_eq!(s.at_level(1).count(), 1);
        assert_eq!(s.at_level(2).count(), 1);
        assert_eq!(s.at_level(9).count(), 0);
    }

    #[test]
    fn dedup_keeps_most_specific() {
        let mut t = Tree::new("r");
        let mut s = EventStore::new();
        s.insert(event(&mut t, "a", 1)); // ancestor of a/b at same unit
        s.insert(event(&mut t, "a/b", 1));
        s.insert(event(&mut t, "a", 2)); // different unit: kept
        let removed = s.dedup_ancestors();
        assert_eq!(removed, 1);
        assert_eq!(s.len(), 2);
        assert!(s.iter().any(|e| e.path.to_string() == "a/b"));
        assert!(s.iter().any(|e| e.unit == 2));
    }

    #[test]
    fn extend_and_iterate() {
        let mut t = Tree::new("r");
        let mut s = EventStore::new();
        s.extend([event(&mut t, "a", 1), event(&mut t, "b", 2)]);
        assert_eq!(s.len(), 2);
        assert_eq!((&s).into_iter().count(), 2);
    }
}
