use serde::{Deserialize, Serialize};

use tiresias_hierarchy::CategoryPath;

/// One operational record: a hierarchical category plus the time it was
/// logged — the paper's stream element `s_i = (k_i, t_i)` (§III).
///
/// # Example
///
/// ```
/// use tiresias_core::Record;
///
/// let r = Record::new("TV/TV No Service/No Pic No Sound", 1_275_380_000);
/// assert_eq!(r.path.depth(), 3);
/// assert_eq!(r.timestamp_secs, 1_275_380_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Record {
    /// Category path within the additive hierarchy (a leaf for
    /// well-formed operational data).
    pub path: CategoryPath,
    /// Record time in seconds (epoch of the caller's choosing).
    pub timestamp_secs: u64,
}

impl Record {
    /// Creates a record from a `/`-separated category string.
    pub fn new(path: &str, timestamp_secs: u64) -> Self {
        Record { path: path.parse().expect("category paths parse infallibly"), timestamp_secs }
    }

    /// Creates a record from an existing [`CategoryPath`].
    pub fn from_path(path: CategoryPath, timestamp_secs: u64) -> Self {
        Record { path, timestamp_secs }
    }

    /// The timeunit this record falls into for unit size `delta_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `delta_secs` is zero.
    pub fn unit(&self, delta_secs: u64) -> u64 {
        assert!(delta_secs > 0, "timeunit size must be positive");
        self.timestamp_secs / delta_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_classification() {
        let r = Record::new("a/b", 1800);
        assert_eq!(r.unit(900), 2);
        assert_eq!(r.unit(3600), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_delta_panics() {
        Record::new("a", 0).unit(0);
    }

    #[test]
    fn from_path_round_trip() {
        let p: CategoryPath = "x/y".parse().unwrap();
        let r = Record::from_path(p.clone(), 7);
        assert_eq!(r.path, p);
    }
}
