use std::error::Error;
use std::fmt;

use tiresias_hhh::HhhError;
use tiresias_hierarchy::HierarchyError;

/// Errors produced by the Tiresias detector.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The builder configuration was invalid.
    InvalidConfig(String),
    /// A record's timestamp fell before the currently open timeunit.
    OutOfOrder {
        /// The offending timestamp (seconds).
        timestamp: u64,
        /// Start of the currently open timeunit (seconds).
        open_unit_start: u64,
    },
    /// A checkpoint failed to parse, migrate or restore.
    Checkpoint(String),
    /// The live engine is closed (draining for shutdown); no further
    /// records are admitted.
    Closed,
    /// A durability operation (WAL append or segment spill) failed;
    /// the engine refuses further admissions rather than acknowledge
    /// records it can no longer make durable. Carries the rendered
    /// `io::Error` (which is neither `Clone` nor `PartialEq`).
    Durability(String),
    /// The write-ahead log cannot currently append (a failed write or
    /// fsync): the batch was refused **before** anything was enqueued,
    /// and nothing was acknowledged. Unlike [`CoreError::Durability`]
    /// this is recoverable — the engine stays live and admission
    /// resumes as soon as appends succeed again, so a disk hiccup
    /// costs refused batches, not an outage.
    WalUnavailable(String),
    /// An error bubbled up from the heavy hitter tracker.
    Hhh(HhhError),
    /// An error bubbled up from the hierarchy.
    Hierarchy(HierarchyError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            CoreError::OutOfOrder { timestamp, open_unit_start } => write!(
                f,
                "record timestamp {timestamp} precedes the open timeunit starting at {open_unit_start}"
            ),
            CoreError::Checkpoint(why) => write!(f, "checkpoint error: {why}"),
            CoreError::Closed => {
                write!(f, "the live engine is closed; no further records are admitted")
            }
            CoreError::Durability(why) => write!(f, "durability error: {why}"),
            CoreError::WalUnavailable(why) => {
                write!(f, "wal unavailable: {why}; batch refused, admission will resume")
            }
            CoreError::Hhh(e) => write!(f, "heavy hitter tracker error: {e}"),
            CoreError::Hierarchy(e) => write!(f, "hierarchy error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Hhh(e) => Some(e),
            CoreError::Hierarchy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HhhError> for CoreError {
    fn from(e: HhhError) -> Self {
        CoreError::Hhh(e)
    }
}

impl From<HierarchyError> for CoreError {
    fn from(e: HierarchyError) -> Self {
        CoreError::Hierarchy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
        let e = CoreError::OutOfOrder { timestamp: 5, open_unit_start: 900 };
        assert!(e.to_string().contains("900"));
        let e = CoreError::from(HierarchyError::EmptyLabel);
        assert!(e.source().is_some());
    }
}
