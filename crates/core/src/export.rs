//! Plain-text export of detected anomalies — the machine-readable side
//! of the paper's report database (Fig. 3(f)), without pulling in a
//! serialisation dependency.

use std::fmt::Write as _;

use crate::anomaly::AnomalyEvent;
use crate::store::ReportStore;

/// CSV header matching [`events_to_csv`].
pub const CSV_HEADER: &str = "unit,time_secs,level,path,kind,actual,forecast,ratio,excess";

fn escape_csv(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialises events to CSV (with header), one row per anomaly.
///
/// # Example
///
/// ```
/// use tiresias_core::{events_to_csv, AnomalyEvent, ReportStore};
/// use tiresias_hierarchy::Tree;
///
/// let mut tree = Tree::new("All");
/// let n = tree.insert_path(&["TV"]);
/// let mut store = ReportStore::new();
/// store.insert(AnomalyEvent {
///     node: n,
///     path: "TV".parse().unwrap(),
///     level: 1,
///     unit: 3,
///     time_secs: 2700,
///     actual: 42.0,
///     forecast: 6.0,
///     kind: tiresias_core::AnomalyKind::Spike,
/// });
/// let csv = events_to_csv(store.events());
/// assert!(csv.lines().nth(1).unwrap().starts_with("3,2700,1,TV,spike,42"));
/// ```
pub fn events_to_csv(events: &[AnomalyEvent]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for e in events {
        let ratio = if e.forecast > 0.0 {
            format!("{:.4}", e.actual / e.forecast)
        } else {
            "inf".to_string()
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.4},{:.4},{},{:.4}",
            e.unit,
            e.time_secs,
            e.level,
            escape_csv(&e.path.to_string()),
            e.kind,
            e.actual,
            e.forecast,
            ratio,
            e.excess()
        );
    }
    out
}

impl ReportStore {
    /// Serialises the retained events to CSV (see [`events_to_csv`]).
    pub fn to_csv(&self) -> String {
        events_to_csv(self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiresias_hierarchy::Tree;

    fn event(path: &str, unit: u64) -> AnomalyEvent {
        let mut tree = Tree::new("r");
        let p: tiresias_hierarchy::CategoryPath = path.parse().unwrap();
        let node = tree.insert_category(&p);
        AnomalyEvent {
            node,
            path: p,
            level: 1,
            unit,
            time_secs: unit * 900,
            actual: 30.0,
            forecast: 10.0,
            kind: crate::anomaly::AnomalyKind::Spike,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = events_to_csv(&[event("a", 1), event("b", 2)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].contains(",a,"));
        assert!(lines[2].contains(",b,"));
    }

    #[test]
    fn commas_in_paths_are_quoted() {
        let csv = events_to_csv(&[event("a,b", 1)]);
        assert!(csv.contains("\"a,b\""));
    }

    #[test]
    fn zero_forecast_serialises_inf() {
        let mut e = event("a", 1);
        e.forecast = 0.0;
        let csv = events_to_csv(&[e]);
        assert!(csv.contains(",inf,"));
    }

    #[test]
    fn store_to_csv_round_trip_count() {
        let mut store = ReportStore::new();
        for u in 0..5 {
            store.insert(event("x", u));
        }
        assert_eq!(store.to_csv().lines().count(), 6);
    }
}
