//! Deterministic fault injection for the durability tests.
//!
//! Real crashes corrupt files in a small number of ways: a torn tail
//! (the write reached the page cache but only a prefix reached the
//! platter), flipped bits (media errors), and lost writes (an fsync
//! that never happened). [`FaultFs`] reproduces each of those at a
//! **chosen byte offset**, so recovery tests are exact rather than
//! probabilistic: truncate the WAL three bytes into its last frame and
//! the test knows precisely which acked prefix must survive.
//!
//! A dropped fsync is emulated deterministically rather than hooked:
//! run the writer with [`crate::WalSyncPolicy::Never`] and then
//! truncate at a frame boundary of your choosing — byte-for-byte the
//! state a crash leaves when the page cache never flushed.

use std::fs::OpenOptions;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

use crate::wal::FRAME_HEADER_BYTES;

/// Deterministic file-corruption toolbox (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct FaultFs;

impl FaultFs {
    /// Truncates `path` to exactly `len` bytes — the torn-tail shape a
    /// crash mid-append leaves behind.
    pub fn truncate_at(path: &Path, len: u64) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    /// Flips bit `bit` (0..=7) of the byte at `offset` — a media
    /// corruption the CRC must catch.
    pub fn flip_bit(path: &Path, offset: u64, bit: u8) -> io::Result<()> {
        let mut f = OpenOptions::new().read(true).write(true).open(path)?;
        let mut byte = [0u8; 1];
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(&mut byte)?;
        byte[0] ^= 1 << (bit & 7);
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(&byte)?;
        f.sync_all()
    }

    /// Overwrites `len` bytes at `offset` with zeros — a lost sector.
    pub fn zero_range(path: &Path, offset: u64, len: u64) -> io::Result<()> {
        let mut f = OpenOptions::new().write(true).open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(&vec![0u8; len as usize])?;
        f.sync_all()
    }

    /// Lists the frame boundaries of a length-prefixed log file as
    /// `(offset, total_frame_len)` pairs, walking the `[len][crc]`
    /// headers without validating payloads. Lets a test aim a fault at
    /// "3 bytes into frame k" instead of guessing offsets. Stops at
    /// the first header that runs past the end of the file.
    pub fn frame_offsets(path: &Path) -> io::Result<Vec<(u64, u64)>> {
        let mut raw = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut raw)?;
        let mut frames = Vec::new();
        let mut off = 0usize;
        while raw.len() - off >= FRAME_HEADER_BYTES as usize {
            let len = u32::from_le_bytes(raw[off..off + 4].try_into().unwrap()) as usize;
            let total = FRAME_HEADER_BYTES as usize + len;
            if raw.len() - off < total {
                break;
            }
            frames.push((off as u64, total as u64));
            off += total;
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempfile(tag: &str, content: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "tiresias-fault-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn truncate_flip_and_zero_are_exact() {
        let path = tempfile("ops", &[0u8; 16]);
        FaultFs::truncate_at(&path, 10).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 10);
        FaultFs::flip_bit(&path, 3, 0).unwrap();
        FaultFs::flip_bit(&path, 3, 7).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[3], 0b1000_0001);
        FaultFs::zero_range(&path, 2, 4).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[2..6], &[0, 0, 0, 0]);
    }

    #[test]
    fn frame_offsets_walk_headers() {
        // Two frames: payloads of 3 and 5 bytes, bogus CRCs (the
        // walker reads lengths only).
        let mut raw = Vec::new();
        raw.extend_from_slice(&3u32.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        raw.extend_from_slice(b"abc");
        raw.extend_from_slice(&5u32.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        raw.extend_from_slice(b"defgh");
        raw.extend_from_slice(&9u32.to_le_bytes()); // torn header
        let path = tempfile("frames", &raw);
        let frames = FaultFs::frame_offsets(&path).unwrap();
        assert_eq!(frames, vec![(0, 11), (11, 13)]);
    }
}
