//! Disk-backed retention tier: closed timeunits evicted from the RAM
//! [`crate::ReportStore`] spill here instead of vanishing.
//!
//! The store keeps the newest `--retain-units` closed units in RAM;
//! everything older moves into append-only **segment files**, one
//! frame per evicted unit, preserving the store's global `(unit, path)`
//! event order. Queries and `SUBSCRIBE FROM` replays reach this tier
//! through the same [`crate::ReportReader`] API — history past the RAM
//! budget is served transparently, just slower.
//!
//! # On-disk layout
//!
//! ```text
//! segments/
//!   seg-<first_seq:016x>.log   frames, append-only
//!   seg-<first_seq:016x>.idx   JSON block index (rebuildable)
//! ```
//!
//! Each `.log` frame is `[len: u32 LE][crc32: u32 LE][payload]` — the
//! same envelope as the WAL — with payload
//! `unit: u64 LE, first_seq: u64 LE, count: u32 LE, events JSON`. The
//! sidecar `.idx` persists the per-block metadata **including the
//! distinct category paths of the block** (the path-posting index), so
//! a prefix query prunes whole blocks without touching their JSON; a
//! missing or stale sidecar is rebuilt from the log on open.
//!
//! # Sequence discipline
//!
//! Events carry their position in the store's global sequence: a block
//! tagged `first_seq = s` holds the events at sequences
//! `s .. s + count`. The tier tracks `next_seq` — everything below it
//! is durably archived — and silently skips re-spills of already
//! archived sequences, which makes crash-replay idempotent: RAM and
//! disk coverage stay disjoint (`segments own [.., next_seq)`, RAM owns
//! `[next_seq, ..)`), so merged reads never duplicate an event.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use tiresias_telemetry::Histogram;

use serde::{Deserialize, Serialize};

use crate::anomaly::AnomalyEvent;
use crate::wal::{crc32, sync_dir, FRAME_HEADER_BYTES};

/// Default segment-file rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 << 20;

/// Per-block metadata, persisted in the `.idx` sidecar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BlockMeta {
    /// Frame offset in the `.log` file.
    off: u64,
    /// Whole frame length (header + payload).
    len: u64,
    /// The evicted timeunit this block holds.
    unit: u64,
    /// Store sequence of the block's first event.
    first_seq: u64,
    /// Event count.
    count: u64,
    /// Distinct category paths in the block (the posting index).
    paths: Vec<String>,
}

/// The `.idx` sidecar body.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct IdxFile {
    blocks: Vec<BlockMeta>,
}

#[derive(Debug)]
struct SegFile {
    path: PathBuf,
    len: u64,
    blocks: Vec<BlockMeta>,
}

#[derive(Debug, Default)]
struct SegInner {
    files: Vec<SegFile>,
    /// Everything below this store sequence is durably archived.
    next_seq: u64,
    bytes: u64,
}

/// The on-disk retention tier (see the module docs). Shared as
/// `Arc<SegmentStore>`: spills serialize on the write lock, queries
/// run under the read lock.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    segment_bytes: u64,
    inner: RwLock<SegInner>,
    /// Spill-latency histogram, set once by
    /// [`SegmentStore::set_telemetry`]. Unset = untelemetered.
    t_spill: OnceLock<Arc<Histogram>>,
}

fn log_name(first_seq: u64) -> String {
    format!("seg-{first_seq:016x}.log")
}

fn parse_log_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    u64::from_str_radix(hex, 16).ok()
}

fn idx_path(log: &Path) -> PathBuf {
    log.with_extension("idx")
}

/// One scanned frame: block metadata minus the paths (which need the
/// JSON body) plus the payload byte range.
struct ScannedFrame {
    off: u64,
    len: u64,
    unit: u64,
    first_seq: u64,
    count: u64,
    json_start: usize,
    json_end: usize,
}

/// Walks a `.log` file verifying every frame header and CRC. Returns
/// the intact frames and the valid prefix length (shorter than the
/// file when the tail is torn).
fn scan_log(raw: &[u8]) -> (Vec<ScannedFrame>, u64) {
    let mut frames = Vec::new();
    let mut off = 0usize;
    loop {
        if raw.len() - off < FRAME_HEADER_BYTES as usize {
            return (frames, off as u64);
        }
        let len = u32::from_le_bytes(raw[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(raw[off + 4..off + 8].try_into().unwrap());
        let body = off + FRAME_HEADER_BYTES as usize;
        if len < 20 || raw.len() - body < len {
            return (frames, off as u64);
        }
        let payload = &raw[body..body + len];
        if crc32(payload) != crc {
            return (frames, off as u64);
        }
        frames.push(ScannedFrame {
            off: off as u64,
            len: (FRAME_HEADER_BYTES as usize + len) as u64,
            unit: u64::from_le_bytes(payload[0..8].try_into().unwrap()),
            first_seq: u64::from_le_bytes(payload[8..16].try_into().unwrap()),
            count: u32::from_le_bytes(payload[16..20].try_into().unwrap()) as u64,
            json_start: body + 20,
            json_end: body + len,
        });
        off = body + len;
    }
}

fn decode_events(json: &[u8]) -> io::Result<Vec<AnomalyEvent>> {
    let text = std::str::from_utf8(json)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "segment block is not UTF-8"))?;
    serde_json::from_str::<Vec<AnomalyEvent>>(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("segment block JSON: {e}")))
}

/// `true` when `path` is `prefix` itself or below it in the hierarchy
/// (the same subtree rule the RAM store's `PREFIX` queries apply).
fn under_prefix(path: &str, prefix: &str) -> bool {
    path == prefix
        || (path.len() > prefix.len()
            && path.starts_with(prefix)
            && path.as_bytes()[prefix.len()] == b'/')
}

impl SegmentStore {
    /// Opens (creating if needed) the segment directory: every frame's
    /// CRC is verified, a torn tail left by a crash mid-spill is
    /// truncated away, and missing or stale `.idx` sidecars are rebuilt
    /// from the log bodies.
    pub fn open(dir: &Path, segment_bytes: u64) -> io::Result<SegmentStore> {
        fs::create_dir_all(dir)?;
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(first) = entry.file_name().to_str().and_then(parse_log_name) {
                names.push((first, entry.path()));
            }
        }
        names.sort_unstable();
        let mut inner = SegInner::default();
        for (_first_seq, path) in names {
            let mut raw = Vec::new();
            File::open(&path)?.read_to_end(&mut raw)?;
            let (frames, valid_len) = scan_log(&raw);
            if valid_len < raw.len() as u64 {
                // Torn spill tail: the evicting store kept those events
                // in RAM (spill errors never free), so dropping the
                // tail loses nothing that was promised durable.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid_len)?;
                f.sync_all()?;
            }
            if frames.is_empty() {
                fs::remove_file(&path)?;
                let _ = fs::remove_file(idx_path(&path));
                continue;
            }
            let blocks = load_or_rebuild_idx(&path, &raw, &frames)?;
            inner.bytes += valid_len;
            inner.next_seq = inner.next_seq.max(blocks.last().map_or(0, |b| b.first_seq + b.count));
            inner.files.push(SegFile { path, len: valid_len, blocks });
        }
        sync_dir(dir);
        Ok(SegmentStore {
            dir: dir.to_path_buf(),
            segment_bytes: segment_bytes.max(1),
            inner: RwLock::new(inner),
            t_spill: OnceLock::new(),
        })
    }

    /// Attaches a spill-latency histogram (each non-empty [`Self::spill`]
    /// call observes its whole duration, fsync included). First call
    /// wins; later calls are no-ops.
    pub fn set_telemetry(&self, spill: Arc<Histogram>) {
        let _ = self.t_spill.set(spill);
    }

    /// Archives an evicted, `(unit, path)`-ordered event run whose
    /// first event sits at store sequence `first_seq`. Already archived
    /// sequences (below the tier's `next_seq`) are skipped, making
    /// replayed evictions idempotent. Returns the number of events
    /// newly written; the data is fsynced before this returns.
    pub fn spill(&self, first_seq: u64, events: &[AnomalyEvent]) -> io::Result<usize> {
        let t0 = self.t_spill.get().map(|_| Instant::now());
        let result = self.spill_inner(first_seq, events);
        if let (Some(t0), Some(hist)) = (t0, self.t_spill.get()) {
            // An all-skipped (idempotent replay) spill is a no-op and
            // would only skew the latency profile downwards.
            if !matches!(result, Ok(0)) {
                hist.record_duration(t0.elapsed());
            }
        }
        result
    }

    fn spill_inner(&self, first_seq: u64, events: &[AnomalyEvent]) -> io::Result<usize> {
        let mut inner = self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let skip = inner.next_seq.saturating_sub(first_seq).min(events.len() as u64) as usize;
        let events = &events[skip..];
        let first_seq = first_seq + skip as u64;
        if events.is_empty() {
            return Ok(0);
        }
        // One frame per unit: split the run at unit boundaries.
        let mut groups: Vec<(u64, u64, &[AnomalyEvent])> = Vec::new();
        let mut start = 0usize;
        for i in 1..=events.len() {
            if i == events.len() || events[i].unit != events[start].unit {
                groups.push((events[start].unit, first_seq + start as u64, &events[start..i]));
                start = i;
            }
        }
        // Pick the write target: the newest file while it has budget,
        // else a fresh one named after the run's first sequence.
        let rotate = inner.files.last().is_none_or(|f| f.len >= self.segment_bytes);
        if rotate {
            let path = self.dir.join(log_name(first_seq));
            File::create(&path)?.sync_all()?;
            sync_dir(&self.dir);
            inner.files.push(SegFile { path, len: 0, blocks: Vec::new() });
        }
        let file = inner.files.last_mut().expect("write target exists");
        let mut handle = OpenOptions::new().append(true).open(&file.path)?;
        let mut written = 0u64;
        for (unit, seq, group) in &groups {
            let json = serde_json::to_string(*group)
                .map_err(|e| io::Error::other(format!("event serialisation: {e}")))?;
            let mut payload = Vec::with_capacity(20 + json.len());
            payload.extend_from_slice(&unit.to_le_bytes());
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.extend_from_slice(&(group.len() as u32).to_le_bytes());
            payload.extend_from_slice(json.as_bytes());
            let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES as usize + payload.len());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(&payload).to_le_bytes());
            frame.extend_from_slice(&payload);
            handle.write_all(&frame)?;
            let mut paths: Vec<String> = group.iter().map(|e| e.path.to_string()).collect();
            paths.dedup(); // (unit, path) order ⇒ duplicates adjacent
            file.blocks.push(BlockMeta {
                off: file.len + written,
                len: frame.len() as u64,
                unit: *unit,
                first_seq: *seq,
                count: group.len() as u64,
                paths,
            });
            written += frame.len() as u64;
        }
        handle.sync_all()?;
        file.len += written;
        // The sidecar is a rebuildable cache: persist best-effort.
        let _ = write_idx(&file.path, &file.blocks);
        inner.bytes += written;
        inner.next_seq = first_seq + events.len() as u64;
        Ok(events.len())
    }

    /// Queries the archived history: events with `unit` in
    /// `[from, to]`, optionally restricted to a category subtree and an
    /// exact level, capped at `limit`. Blocks are pruned by the
    /// persisted unit tags and path postings before any JSON decode.
    pub fn query(
        &self,
        from: u64,
        to: u64,
        prefix: Option<&str>,
        level: Option<usize>,
        limit: usize,
    ) -> io::Result<Vec<AnomalyEvent>> {
        let inner = self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = Vec::new();
        'files: for file in &inner.files {
            for block in &file.blocks {
                if block.unit < from || block.unit > to {
                    continue;
                }
                if let Some(p) = prefix {
                    if !block.paths.iter().any(|bp| under_prefix(bp, p)) {
                        continue;
                    }
                }
                for e in read_block(&file.path, block)? {
                    if let Some(p) = prefix {
                        if !under_prefix(&e.path.to_string(), p) {
                            continue;
                        }
                    }
                    if level.is_some_and(|l| e.level != l) {
                        continue;
                    }
                    out.push(e);
                    if out.len() >= limit {
                        break 'files;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Reads up to `max` archived events starting at store sequence
    /// `seq` (skipping forward if `seq` predates the archive). Returns
    /// the actual starting sequence and the events — the
    /// `SUBSCRIBE FROM` replay path for history the RAM store already
    /// evicted. Empty when `seq` is at or past the archived horizon.
    pub fn read_from_seq(&self, seq: u64, max: usize) -> io::Result<(u64, Vec<AnomalyEvent>)> {
        let inner = self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = Vec::new();
        let mut start = None;
        'files: for file in &inner.files {
            for block in &file.blocks {
                if block.first_seq + block.count <= seq {
                    continue;
                }
                let events = read_block(&file.path, block)?;
                let skip = seq.saturating_sub(block.first_seq) as usize;
                for (i, e) in events.into_iter().enumerate().skip(skip) {
                    start.get_or_insert(block.first_seq + i as u64);
                    out.push(e);
                    if out.len() >= max {
                        break 'files;
                    }
                }
            }
        }
        Ok((start.unwrap_or(seq), out))
    }

    /// The oldest archived timeunit (`None` = empty archive).
    pub fn first_unit(&self) -> Option<u64> {
        let inner = self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.files.first().and_then(|f| f.blocks.first()).map(|b| b.unit)
    }

    /// One past the highest archived store sequence (0 = empty).
    pub fn next_seq(&self) -> u64 {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner).next_seq
    }

    /// Segment files on disk.
    pub fn file_count(&self) -> usize {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner).files.len()
    }

    /// Archived unit blocks (each evicted unit is exactly one block).
    pub fn block_count(&self) -> usize {
        let inner = self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.files.iter().map(|f| f.blocks.len()).sum()
    }

    /// Total log bytes on disk.
    pub fn bytes(&self) -> u64 {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner).bytes
    }
}

/// Reads and CRC-verifies one block's events.
fn read_block(path: &Path, block: &BlockMeta) -> io::Result<Vec<AnomalyEvent>> {
    let mut f = File::open(path)?;
    f.seek(SeekFrom::Start(block.off))?;
    let mut frame = vec![0u8; block.len as usize];
    f.read_exact(&mut frame)?;
    let crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
    let payload = &frame[FRAME_HEADER_BYTES as usize..];
    if crc32(payload) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("segment block at {}:{} failed its CRC", path.display(), block.off),
        ));
    }
    decode_events(&payload[20..])
}

/// Uses the `.idx` sidecar when it matches the scanned log exactly;
/// otherwise rebuilds the metadata (decoding each block's JSON for the
/// path postings) and rewrites the sidecar.
fn load_or_rebuild_idx(
    log: &Path,
    raw: &[u8],
    frames: &[ScannedFrame],
) -> io::Result<Vec<BlockMeta>> {
    let sidecar = idx_path(log);
    if let Ok(text) = fs::read_to_string(&sidecar) {
        if let Ok(idx) = serde_json::from_str::<IdxFile>(&text) {
            let matches = idx.blocks.len() == frames.len()
                && idx.blocks.iter().zip(frames).all(|(b, f)| {
                    b.off == f.off
                        && b.len == f.len
                        && b.unit == f.unit
                        && b.first_seq == f.first_seq
                        && b.count == f.count
                });
            if matches {
                return Ok(idx.blocks);
            }
        }
    }
    let mut blocks = Vec::with_capacity(frames.len());
    for f in frames {
        let events = decode_events(&raw[f.json_start..f.json_end])?;
        let mut paths: Vec<String> = events.iter().map(|e| e.path.to_string()).collect();
        paths.dedup();
        blocks.push(BlockMeta {
            off: f.off,
            len: f.len,
            unit: f.unit,
            first_seq: f.first_seq,
            count: f.count,
            paths,
        });
    }
    let _ = write_idx(log, &blocks);
    Ok(blocks)
}

/// Atomically replaces the `.idx` sidecar (tmp + rename).
fn write_idx(log: &Path, blocks: &[BlockMeta]) -> io::Result<()> {
    let idx = IdxFile { blocks: blocks.to_vec() };
    let json = serde_json::to_string(&idx)
        .map_err(|e| io::Error::other(format!("index serialisation: {e}")))?;
    let path = idx_path(log);
    let tmp = path.with_extension("idx.tmp");
    fs::write(&tmp, json)?;
    fs::rename(&tmp, &path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyKind;
    use crate::fault::FaultFs;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tiresias-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn event(unit: u64, path: &str) -> AnomalyEvent {
        AnomalyEvent {
            node: tiresias_hierarchy::Tree::new("All").root(),
            path: path.parse().unwrap(),
            level: path.split('/').count(),
            unit,
            time_secs: unit * 900,
            actual: 50.0,
            forecast: 5.0,
            kind: AnomalyKind::Spike,
        }
    }

    /// Three units' worth of ordered evicted events.
    fn run() -> Vec<AnomalyEvent> {
        vec![
            event(0, "a/x"),
            event(0, "b/y"),
            event(1, "a/x"),
            event(2, "TV/No Service"),
            event(2, "b/y"),
        ]
    }

    #[test]
    fn spill_query_and_reopen_round_trip() {
        let dir = tempdir("roundtrip");
        let seg = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(seg.spill(0, &run()).unwrap(), 5);
        assert_eq!(seg.next_seq(), 5);
        assert_eq!(seg.block_count(), 3, "one block per unit");
        assert_eq!(seg.first_unit(), Some(0));

        let all = seg.query(0, 10, None, None, 100).unwrap();
        assert_eq!(all, run(), "order and content preserved");
        let ranged = seg.query(1, 2, None, None, 100).unwrap();
        assert_eq!(ranged.len(), 3);
        let pruned = seg.query(0, 10, Some("b"), None, 100).unwrap();
        assert_eq!(pruned.iter().map(|e| e.unit).collect::<Vec<_>>(), vec![0, 2]);
        let leveled = seg.query(0, 10, None, Some(2), 2).unwrap();
        assert_eq!(leveled.len(), 2, "limit respected");
        drop(seg);

        let seg = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(seg.next_seq(), 5);
        assert_eq!(seg.query(0, 10, None, None, 100).unwrap(), run());
    }

    #[test]
    fn respills_below_next_seq_are_skipped() {
        let dir = tempdir("dedupe");
        let seg = SegmentStore::open(&dir, 1 << 20).unwrap();
        seg.spill(0, &run()).unwrap();
        // A crash-replay re-evicts the same prefix plus one new unit.
        let mut again = run();
        again.push(event(3, "a/x"));
        assert_eq!(seg.spill(0, &again).unwrap(), 1, "only the new event lands");
        assert_eq!(seg.next_seq(), 6);
        assert_eq!(seg.query(0, 10, None, None, 100).unwrap().len(), 6);
    }

    #[test]
    fn rotation_splits_spills_across_files() {
        let dir = tempdir("rotate");
        let seg = SegmentStore::open(&dir, 1).unwrap(); // rotate every spill
        seg.spill(0, &run()[0..2]).unwrap();
        seg.spill(2, &run()[2..]).unwrap();
        assert_eq!(seg.file_count(), 2);
        drop(seg);
        let seg = SegmentStore::open(&dir, 1).unwrap();
        assert_eq!(seg.file_count(), 2);
        assert_eq!(seg.query(0, 10, None, None, 100).unwrap(), run());
    }

    #[test]
    fn read_from_seq_replays_the_archive() {
        let dir = tempdir("replay");
        let seg = SegmentStore::open(&dir, 1 << 20).unwrap();
        seg.spill(0, &run()).unwrap();
        let (start, events) = seg.read_from_seq(0, 100).unwrap();
        assert_eq!((start, events.len()), (0, 5));
        let (start, events) = seg.read_from_seq(3, 100).unwrap();
        assert_eq!(start, 3);
        assert_eq!(events, run()[3..].to_vec());
        let (start, events) = seg.read_from_seq(2, 2).unwrap();
        assert_eq!((start, events.len()), (2, 2), "max respected");
        let (_, events) = seg.read_from_seq(99, 10).unwrap();
        assert!(events.is_empty(), "past the horizon");
    }

    #[test]
    fn torn_spill_tail_is_truncated_on_open() {
        let dir = tempdir("torn");
        let seg = SegmentStore::open(&dir, 1 << 20).unwrap();
        seg.spill(0, &run()).unwrap();
        drop(seg);
        let log = dir.join(log_name(0));
        let frames = FaultFs::frame_offsets(&log).unwrap();
        assert_eq!(frames.len(), 3);
        // Tear mid-way through the last block's frame.
        FaultFs::truncate_at(&log, frames[2].0 + 5).unwrap();
        let seg = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(seg.block_count(), 2, "the torn block is gone");
        assert_eq!(seg.next_seq(), 3);
        // The unit-2 events can be spilled again afterwards.
        assert_eq!(seg.spill(0, &run()).unwrap(), 2);
        assert_eq!(seg.query(0, 10, None, None, 100).unwrap(), run());
    }

    #[test]
    fn stale_idx_is_rebuilt_from_the_log() {
        let dir = tempdir("idx");
        let seg = SegmentStore::open(&dir, 1 << 20).unwrap();
        seg.spill(0, &run()).unwrap();
        drop(seg);
        let idx = idx_path(&dir.join(log_name(0)));
        fs::write(&idx, "{\"blocks\":[]}").unwrap(); // stale
        let seg = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(seg.block_count(), 3, "rebuilt from the log");
        let pruned = seg.query(0, 10, Some("TV"), None, 100).unwrap();
        assert_eq!(pruned, vec![event(2, "TV/No Service")]);
        drop(seg);
        fs::remove_file(&idx).unwrap(); // missing entirely
        let seg = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(seg.block_count(), 3);
    }

    #[test]
    fn corrupt_block_fails_its_read_loudly() {
        let dir = tempdir("crc");
        let seg = SegmentStore::open(&dir, 1 << 20).unwrap();
        seg.spill(0, &run()).unwrap();
        let log = dir.join(log_name(0));
        let frames = FaultFs::frame_offsets(&log).unwrap();
        // Flip a payload bit *after* open: the startup scan passed, the
        // read must still catch it.
        FaultFs::flip_bit(&log, frames[0].0 + FRAME_HEADER_BYTES + 25, 1).unwrap();
        let err = seg.query(0, 0, None, None, 100).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn prefix_rule_matches_subtrees_not_string_prefixes() {
        assert!(under_prefix("a", "a"));
        assert!(under_prefix("a/b", "a"));
        assert!(under_prefix("a/b/c", "a/b"));
        assert!(!under_prefix("ab", "a"));
        assert!(!under_prefix("a", "a/b"));
    }
}
