use serde::{Deserialize, Serialize};

use tiresias_hierarchy::{CategoryPath, NodeId};

/// The Definition-4 anomaly decision: a spike is anomalous iff the
/// observed count exceeds the forecast **both** relatively
/// (`actual / forecast > rt`) and absolutely (`actual − forecast > dt`).
///
/// Using both differences minimises false detections at the daily peak
/// (where absolute deviations are naturally large) and in the night
/// trough (where tiny absolute changes are relatively large). A
/// non-positive forecast counts as an infinite ratio, so the absolute
/// test alone decides.
///
/// # Example
///
/// ```
/// use tiresias_core::is_anomalous;
///
/// assert!(is_anomalous(50.0, 10.0, 2.8, 8.0));   // 5× and +40
/// assert!(!is_anomalous(25.0, 10.0, 2.8, 8.0));  // only 2.5×
/// assert!(!is_anomalous(12.0, 5.0, 2.0, 8.0));   // only +7
/// ```
pub fn is_anomalous(actual: f64, forecast: f64, rt: f64, dt: f64) -> bool {
    let relative_ok = if forecast > 0.0 { actual / forecast > rt } else { actual > 0.0 };
    relative_ok && (actual - forecast > dt)
}

/// Direction of an anomalous deviation.
///
/// The paper detects **spikes** only — unexpected increases, the
/// interesting direction for customer-call data — and names drop
/// detection as out of scope. [`AnomalyKind::Drop`] is this library's
/// extension for data where rate collapses matter (e.g. heartbeat-like
/// telemetry); enable it with
/// [`crate::TiresiasBuilder::detect_drops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// The observed count exceeded the forecast (the paper's anomaly).
    Spike,
    /// The observed count collapsed below the forecast (extension).
    Drop,
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnomalyKind::Spike => write!(f, "spike"),
            AnomalyKind::Drop => write!(f, "drop"),
        }
    }
}

impl std::str::FromStr for AnomalyKind {
    type Err = String;

    /// Parses the wire/CSV rendering (`spike` / `drop`) back.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "spike" => Ok(AnomalyKind::Spike),
            "drop" => Ok(AnomalyKind::Drop),
            other => Err(format!("unknown anomaly kind `{other}`")),
        }
    }
}

/// The mirrored Definition-4 test for drops: anomalous iff the forecast
/// exceeds the observation both relatively (`forecast / actual > rt`,
/// with `actual ≤ 0` counting as an infinite ratio) and absolutely
/// (`forecast − actual > dt`).
///
/// # Example
///
/// ```
/// use tiresias_core::is_drop;
///
/// assert!(is_drop(2.0, 40.0, 2.8, 8.0));    // collapse from 40 to 2
/// assert!(!is_drop(20.0, 40.0, 2.8, 8.0));  // only halved
/// ```
pub fn is_drop(actual: f64, forecast: f64, rt: f64, dt: f64) -> bool {
    let relative_ok = if actual > 0.0 { forecast / actual > rt } else { forecast > 0.0 };
    relative_ok && (forecast - actual > dt)
}

/// An anomalous event located by Tiresias: a heavy hitter whose observed
/// count in one timeunit exceeded its forecast beyond both sensitivity
/// thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyEvent {
    /// The heavy hitter node (id within the detector's tree).
    pub node: NodeId,
    /// Category path of the node, stable across tree growth.
    pub path: CategoryPath,
    /// Depth of the node in the hierarchy (1 = first level).
    pub level: usize,
    /// Timeunit index of the spike.
    pub unit: u64,
    /// Start of the timeunit in seconds.
    pub time_secs: u64,
    /// Observed (modified) count `T[n, 1]`.
    pub actual: f64,
    /// Forecast `F[n, 1]`.
    pub forecast: f64,
    /// Direction of the deviation (always [`AnomalyKind::Spike`] unless
    /// drop detection is enabled).
    pub kind: AnomalyKind,
}

impl AnomalyEvent {
    /// Ratio `actual / forecast` (∞ when the forecast is non-positive).
    pub fn ratio(&self) -> f64 {
        if self.forecast > 0.0 {
            self.actual / self.forecast
        } else {
            f64::INFINITY
        }
    }

    /// Absolute excess `actual − forecast`.
    pub fn excess(&self) -> f64 {
        self.actual - self.forecast
    }
}

impl std::fmt::Display for AnomalyEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at {} (unit {}): observed {:.1} vs forecast {:.1}",
            self.kind, self.path, self.unit, self.actual, self.forecast
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_thresholds_must_pass() {
        assert!(is_anomalous(100.0, 10.0, 2.8, 8.0));
        assert!(!is_anomalous(20.0, 10.0, 2.8, 8.0)); // ratio 2 < 2.8
        assert!(!is_anomalous(3.0, 1.0, 2.8, 8.0)); // excess 2 < 8
    }

    #[test]
    fn zero_forecast_counts_as_infinite_ratio() {
        assert!(is_anomalous(9.0, 0.0, 2.8, 8.0));
        assert!(!is_anomalous(7.0, 0.0, 2.8, 8.0)); // excess 7 < 8
        assert!(!is_anomalous(0.0, 0.0, 2.8, 8.0));
    }

    #[test]
    fn negative_forecast_is_treated_like_zero() {
        assert!(is_anomalous(9.0, -3.0, 2.8, 8.0));
    }

    #[test]
    fn drop_rule_mirrors_spike_rule() {
        assert!(is_drop(0.0, 20.0, 2.8, 8.0));
        assert!(!is_drop(0.0, 0.0, 2.8, 8.0));
        assert!(!is_drop(15.0, 20.0, 2.8, 8.0)); // ratio too small
        assert!(!is_drop(2.0, 9.0, 2.8, 8.0)); // excess 7 < 8
    }

    #[test]
    fn event_accessors() {
        let mut tree = tiresias_hierarchy::Tree::new("r");
        let n = tree.insert_path(&["a"]);
        let e = AnomalyEvent {
            node: n,
            path: "a".parse().unwrap(),
            level: 1,
            unit: 42,
            time_secs: 42 * 900,
            actual: 30.0,
            forecast: 10.0,
            kind: AnomalyKind::Spike,
        };
        assert_eq!(e.ratio(), 3.0);
        assert_eq!(e.excess(), 20.0);
        assert!(e.to_string().contains("unit 42"));
        let zero = AnomalyEvent { forecast: 0.0, ..e };
        assert!(zero.ratio().is_infinite());
    }
}
