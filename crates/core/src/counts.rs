use serde::{Deserialize, Serialize};

/// Dense per-node counts of the open timeunit.
///
/// The ingest hot path increments one slot per record; a *touched-index
/// list* makes the end-of-unit reset O(records) instead of O(tree), and
/// the buffer itself is recycled across timeunits so steady-state
/// ingestion performs no allocation (the vector only grows when the
/// tree does).
///
/// Serialises as sparse `(index, count)` pairs, so checkpoints stay
/// small and the format matches what the old `HashMap<NodeId, f64>`
/// field produced in spirit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(from = "CountsRepr", into = "CountsRepr")]
pub(crate) struct DenseCounts {
    /// Per-node counts, indexed by `NodeId::index`; may lag the tree
    /// (absent slots are zero).
    counts: Vec<f64>,
    /// Indices with non-zero counts, in first-touch order.
    touched: Vec<u32>,
}

/// Sparse serialised form of [`DenseCounts`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CountsRepr {
    pairs: Vec<(u32, f64)>,
}

impl From<DenseCounts> for CountsRepr {
    fn from(c: DenseCounts) -> Self {
        CountsRepr { pairs: c.touched.iter().map(|&i| (i, c.counts[i as usize])).collect() }
    }
}

impl From<CountsRepr> for DenseCounts {
    fn from(r: CountsRepr) -> Self {
        let mut c = DenseCounts::default();
        for (i, w) in r.pairs {
            c.add(i as usize, w);
        }
        c
    }
}

impl DenseCounts {
    /// `true` iff no counts are pending.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Adds `w` to the count of node index `i`, growing the buffer if
    /// the tree grew past it.
    #[inline]
    pub fn add(&mut self, i: usize, w: f64) {
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0.0);
        }
        let slot = &mut self.counts[i];
        if *slot == 0.0 {
            self.touched.push(i as u32);
        }
        *slot += w;
    }

    /// Sum of all pending counts — the number of records in the open
    /// timeunit when every record contributes weight 1.
    pub fn total(&self) -> f64 {
        self.touched.iter().map(|&i| self.counts[i as usize]).sum()
    }

    /// Moves the buffers out for a close sweep. The protocol is
    /// `take()` → read [`DenseCounts::dense`] → [`DenseCounts::reset`]
    /// → assign back, which recycles both allocations.
    pub fn take(&mut self) -> DenseCounts {
        std::mem::take(self)
    }

    /// Grows the dense buffer to cover `len` slots.
    pub fn ensure_len(&mut self, len: usize) {
        if self.counts.len() < len {
            self.counts.resize(len, 0.0);
        }
    }

    /// The dense count vector (covers at least every touched slot).
    pub fn dense(&self) -> &[f64] {
        &self.counts
    }

    /// Splits the pending counts along a tree compaction (subtree
    /// rebalancing): entries whose index maps to a moved slot through
    /// `slot_of` are returned as `(slot, count)` pairs, and the
    /// surviving entries are remapped in place through `old_to_new`.
    pub fn extract_remap(
        &mut self,
        slot_of: impl Fn(usize) -> Option<u32>,
        old_to_new: &[Option<tiresias_hierarchy::NodeId>],
    ) -> Vec<(u32, f64)> {
        let old = self.take();
        let mut moved = Vec::new();
        for &i in &old.touched {
            let idx = i as usize;
            let w = old.counts[idx];
            match slot_of(idx) {
                Some(slot) => moved.push((slot, w)),
                None => {
                    let new = old_to_new
                        .get(idx)
                        .and_then(|s| *s)
                        .expect("unmoved touched count survives compaction");
                    self.add(new.index(), w);
                }
            }
        }
        moved
    }

    /// Zeroes all touched slots in O(touched) and clears the touch
    /// list, keeping both allocations for reuse.
    pub fn reset(&mut self) {
        for &i in &self.touched {
            self.counts[i as usize] = 0.0;
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_tracks_touched_once() {
        let mut c = DenseCounts::default();
        c.add(5, 1.0);
        c.add(5, 1.0);
        c.add(2, 3.0);
        assert_eq!(c.touched, vec![5, 2]);
        assert_eq!(c.dense()[5], 2.0);
        assert_eq!(c.dense()[2], 3.0);
        assert!(!c.is_empty());
    }

    #[test]
    fn reset_is_sparse_and_reusable() {
        let mut c = DenseCounts::default();
        c.add(7, 4.0);
        let cap = {
            c.reset();
            assert!(c.is_empty());
            assert!(c.dense().iter().all(|&v| v == 0.0));
            c.counts.capacity()
        };
        c.add(3, 1.0);
        assert_eq!(c.counts.capacity(), cap, "buffer is recycled");
    }

    #[test]
    fn serde_round_trips_sparsely() {
        let mut c = DenseCounts::default();
        c.ensure_len(100);
        c.add(9, 2.5);
        c.add(41, 1.0);
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.len() < 80, "sparse encoding, got {json}");
        let back: DenseCounts = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dense()[9], 2.5);
        assert_eq!(back.dense()[41], 1.0);
        assert_eq!(back.touched.len(), 2);
    }
}
