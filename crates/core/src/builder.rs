use serde::{Deserialize, Serialize};

use tiresias_hhh::{HhhConfig, ModelSpec, SplitRule};

use crate::detector::Tiresias;
use crate::error::CoreError;
use crate::sharded::ShardedTiresias;

/// Which heavy hitter maintenance algorithm the detector runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// The adaptive algorithm (§V-B) — the paper's contribution and the
    /// default.
    Ada,
    /// The exact strawman (§V-A) — Θ(ℓ·|tree|) per instance; useful as
    /// ground truth and for the paper's performance comparisons.
    Sta,
}

/// Builder for a [`Tiresias`] detector (the system parameters of §VII).
///
/// # Example
///
/// ```
/// use tiresias_core::{Algorithm, TiresiasBuilder};
///
/// let detector = TiresiasBuilder::new()
///     .timeunit_secs(900)        // Δ = 15 minutes
///     .window_len(672)           // ℓ = one week of units
///     .threshold(10.0)           // θ
///     .sensitivity(2.8, 8.0)     // RT, DT
///     .season_length(96)         // daily season
///     .algorithm(Algorithm::Ada)
///     .ref_levels(2)
///     .build()?;
/// assert_eq!(detector.units_processed(), 0);
/// # Ok::<(), tiresias_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiresiasBuilder {
    pub(crate) timeunit_secs: u64,
    pub(crate) window_len: usize,
    pub(crate) theta: f64,
    pub(crate) rt: f64,
    pub(crate) dt: f64,
    pub(crate) season_length: usize,
    pub(crate) hw_alpha: f64,
    pub(crate) hw_beta: f64,
    pub(crate) hw_gamma: f64,
    pub(crate) model: Option<ModelSpec>,
    pub(crate) split_rule: SplitRule,
    pub(crate) ref_levels: usize,
    pub(crate) algorithm: Algorithm,
    pub(crate) warmup_units: Option<usize>,
    pub(crate) auto_seasonality: Option<usize>,
    pub(crate) root_label: String,
    pub(crate) detect_drops: bool,
    pub(crate) shards: usize,
    /// Root-isolated split inheritance (see
    /// `tiresias_hhh::HhhConfig::root_isolation`); forced on for the
    /// shards of a [`ShardedTiresias`].
    pub(crate) root_isolation: bool,
}

impl Default for TiresiasBuilder {
    fn default() -> Self {
        TiresiasBuilder {
            timeunit_secs: 900,
            window_len: 8064,
            theta: 10.0,
            rt: 2.8,
            dt: 8.0,
            season_length: 96,
            hw_alpha: 0.5,
            hw_beta: 0.05,
            hw_gamma: 0.3,
            model: None,
            split_rule: SplitRule::default(),
            ref_levels: 2,
            algorithm: Algorithm::Ada,
            warmup_units: None,
            auto_seasonality: None,
            root_label: "All".to_string(),
            detect_drops: false,
            shards: 1,
            root_isolation: false,
        }
    }
}

impl TiresiasBuilder {
    /// Starts from the paper's defaults: Δ = 15 min, ℓ = 8 064 (12
    /// weeks), θ = 10, RT = 2.8, DT = 8, daily Holt-Winters season,
    /// Long-Term-History splits, h = 2 reference levels, ADA.
    pub fn new() -> Self {
        TiresiasBuilder::default()
    }

    /// Timeunit size Δ in seconds.
    #[must_use]
    pub fn timeunit_secs(mut self, secs: u64) -> Self {
        self.timeunit_secs = secs;
        self
    }

    /// Sliding-window length ℓ in timeunits.
    #[must_use]
    pub fn window_len(mut self, ell: usize) -> Self {
        self.window_len = ell;
        self
    }

    /// Heavy hitter threshold θ.
    #[must_use]
    pub fn threshold(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sensitivity thresholds: relative `RT` and absolute `DT`
    /// (Definition 4).
    #[must_use]
    pub fn sensitivity(mut self, rt: f64, dt: f64) -> Self {
        self.rt = rt;
        self.dt = dt;
        self
    }

    /// Seasonal period υ in timeunits for the default Holt-Winters
    /// model. Ignored if an explicit [`TiresiasBuilder::model`] is set.
    #[must_use]
    pub fn season_length(mut self, units: usize) -> Self {
        self.season_length = units;
        self
    }

    /// Holt-Winters smoothing rates (α, β, γ) for the default model.
    #[must_use]
    pub fn smoothing(mut self, alpha: f64, beta: f64, gamma: f64) -> Self {
        self.hw_alpha = alpha;
        self.hw_beta = beta;
        self.hw_gamma = gamma;
        self
    }

    /// Explicit forecasting model, overriding
    /// [`TiresiasBuilder::season_length`] and
    /// [`TiresiasBuilder::smoothing`].
    #[must_use]
    pub fn model(mut self, spec: ModelSpec) -> Self {
        self.model = Some(spec);
        self
    }

    /// ADA split-ratio heuristic.
    #[must_use]
    pub fn split_rule(mut self, rule: SplitRule) -> Self {
        self.split_rule = rule;
        self
    }

    /// Number of reference-series levels `h` (§V-B5).
    #[must_use]
    pub fn ref_levels(mut self, h: usize) -> Self {
        self.ref_levels = h;
        self
    }

    /// Heavy hitter maintenance algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Number of warm-up timeunits buffered before detection starts
    /// (defaults to the model's preferred history, 2υ for seasonal
    /// models). The tracker is initialised from the buffered history
    /// exactly as STA would (Fig. 5, lines 2–5).
    #[must_use]
    pub fn warmup_units(mut self, units: usize) -> Self {
        self.warmup_units = Some(units);
        self
    }

    /// Derives the seasonal periods automatically from the warm-up data
    /// via FFT + wavelet analysis (§VI, Step 3), keeping at most
    /// `max_factors` factors. Make the warm-up at least twice the
    /// longest period you expect.
    #[must_use]
    pub fn auto_seasonality(mut self, max_factors: usize) -> Self {
        self.auto_seasonality = Some(max_factors);
        self
    }

    /// Label of the hierarchy root node.
    #[must_use]
    pub fn root_label(mut self, label: impl Into<String>) -> Self {
        self.root_label = label.into();
        self
    }

    /// Also reports **drops** — counts collapsing below the forecast by
    /// the mirrored Definition-4 test. The paper detects spikes only
    /// (drops in call volume are uninteresting for customer-care data);
    /// enable this extension for telemetry where rate collapses matter.
    ///
    /// Drops are only observable while the node *remains a heavy
    /// hitter*: a count that falls below θ leaves the tracked set
    /// altogether, so a total silence is invisible — the structural
    /// reason the paper scopes drop detection out of the heavy-hitter
    /// framing. Choose θ below the level whose collapses you care
    /// about.
    #[must_use]
    pub fn detect_drops(mut self, enabled: bool) -> Self {
        self.detect_drops = enabled;
        self
    }

    /// Number of ingest shards for [`TiresiasBuilder::build_sharded`]
    /// (clamped to at least 1; ignored by the single-threaded
    /// [`TiresiasBuilder::build`]). Records are routed by a
    /// deterministic hash of their top-level label, so pick a shard
    /// count comfortably below the expected top-level fan-out.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The model spec the detector will start from (before any
    /// auto-seasonality refinement).
    pub(crate) fn base_model(&self) -> ModelSpec {
        self.model.clone().unwrap_or(ModelSpec::HoltWinters {
            alpha: self.hw_alpha,
            beta: self.hw_beta,
            gamma: self.hw_gamma,
            season: self.season_length,
        })
    }

    /// The heavy hitter tracker configuration this builder resolves to.
    pub(crate) fn hhh_config(&self, model: ModelSpec) -> HhhConfig {
        HhhConfig::new(self.theta, self.window_len)
            .with_model(model)
            .with_split_rule(self.split_rule)
            .with_ref_levels(self.ref_levels)
            .with_root_isolation(self.root_isolation)
    }

    /// Builds the detector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid parameters
    /// (zero timeunit or window, non-positive θ, RT ≤ 1, negative DT,
    /// zero season).
    pub fn build(self) -> Result<Tiresias, CoreError> {
        if self.timeunit_secs == 0 {
            return Err(CoreError::InvalidConfig("timeunit_secs must be positive".into()));
        }
        if self.window_len == 0 {
            return Err(CoreError::InvalidConfig("window_len must be positive".into()));
        }
        if self.theta.is_nan() || self.theta <= 0.0 {
            return Err(CoreError::InvalidConfig("threshold must be positive".into()));
        }
        if self.rt.is_nan() || self.rt <= 1.0 {
            return Err(CoreError::InvalidConfig("relative sensitivity RT must exceed 1".into()));
        }
        if self.dt < 0.0 {
            return Err(CoreError::InvalidConfig(
                "absolute sensitivity DT must be non-negative".into(),
            ));
        }
        if self.season_length == 0 && self.model.is_none() {
            return Err(CoreError::InvalidConfig("season_length must be positive".into()));
        }
        self.hhh_config(self.base_model()).validate().map_err(CoreError::InvalidConfig)?;
        Ok(Tiresias::from_builder(self))
    }

    /// Builds the sharded multi-core ingest engine over
    /// [`TiresiasBuilder::shards`] shards (see [`ShardedTiresias`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for the same invalid
    /// parameters as [`TiresiasBuilder::build`], and additionally when
    /// [`TiresiasBuilder::auto_seasonality`] is requested — the global
    /// total it analyses is not observable by any single shard.
    pub fn build_sharded(self) -> Result<ShardedTiresias, CoreError> {
        // Validate via a throw-away single-detector build so both entry
        // points reject exactly the same configurations.
        self.clone().build()?;
        ShardedTiresias::from_builder(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        assert!(TiresiasBuilder::new().build().is_ok());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(TiresiasBuilder::new().timeunit_secs(0).build().is_err());
        assert!(TiresiasBuilder::new().window_len(0).build().is_err());
        assert!(TiresiasBuilder::new().threshold(0.0).build().is_err());
        assert!(TiresiasBuilder::new().sensitivity(1.0, 8.0).build().is_err());
        assert!(TiresiasBuilder::new().sensitivity(2.8, -1.0).build().is_err());
        assert!(TiresiasBuilder::new().season_length(0).build().is_err());
    }

    #[test]
    fn explicit_model_overrides_season() {
        let b = TiresiasBuilder::new().season_length(96).model(ModelSpec::Ewma { alpha: 0.4 });
        assert_eq!(b.base_model(), ModelSpec::Ewma { alpha: 0.4 });
    }

    #[test]
    fn base_model_uses_smoothing() {
        let b = TiresiasBuilder::new().season_length(4).smoothing(0.9, 0.8, 0.7);
        match b.base_model() {
            ModelSpec::HoltWinters { alpha, beta, gamma, season } => {
                assert_eq!((alpha, beta, gamma, season), (0.9, 0.8, 0.7, 4));
            }
            other => panic!("unexpected model {other:?}"),
        }
    }
}
