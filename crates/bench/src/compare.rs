//! ADA-vs-STA comparison runner behind Fig. 12 (time-series accuracy)
//! and Table V (anomaly detection accuracy).

use tiresias_core::{is_anomalous, ConfusionCounts};
use tiresias_datagen::Workload;
use tiresias_hhh::{Ada, HhhConfig, ModelSpec, SplitRule, Sta};

/// Parameters of one ADA-vs-STA run.
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// Heavy hitter threshold θ.
    pub theta: f64,
    /// Window length ℓ.
    pub ell: usize,
    /// Warm-up units used to initialise both trackers.
    pub warmup: usize,
    /// Scored instances after warm-up.
    pub instances: usize,
    /// Forecasting model.
    pub model: ModelSpec,
    /// ADA split rule under test.
    pub rule: SplitRule,
    /// Reference-series levels h.
    pub ref_levels: usize,
    /// Relative sensitivity RT.
    pub rt: f64,
    /// Absolute sensitivity DT.
    pub dt: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            theta: 10.0,
            ell: 192,
            warmup: 96,
            instances: 100,
            model: ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 96 },
            rule: SplitRule::LongTermHistory,
            ref_levels: 2,
            rt: 2.8,
            dt: 8.0,
        }
    }
}

/// Outcome of one ADA-vs-STA run (STA is ground truth).
#[derive(Debug, Clone)]
pub struct CompareResult {
    /// Mean absolute series error by timeunit offset (0 = newest),
    /// normalised by the mean STA series value — Fig. 12(a).
    pub err_by_offset: Vec<f64>,
    /// Mean normalised absolute error by node depth — Fig. 12(b).
    pub err_by_depth: Vec<f64>,
    /// Overall mean normalised absolute error.
    pub mean_rel_error: f64,
    /// Anomaly-decision agreement (STA as truth) — Table V.
    pub confusion: ConfusionCounts,
    /// `true` iff the heavy hitter sets matched at every instance
    /// (the paper observed they always do; Lemma 1 guarantees it).
    pub membership_matched: bool,
}

/// Runs ADA and STA side by side on the same generated stream and scores
/// ADA's series and detections against STA's exact reconstruction.
pub fn compare_ada_sta(workload: &Workload, cfg: &CompareConfig) -> CompareResult {
    let tree = workload.tree();
    let base = HhhConfig::new(cfg.theta, cfg.ell)
        .with_model(cfg.model.clone())
        .with_split_rule(cfg.rule)
        .with_ref_levels(cfg.ref_levels);

    let warmup_units = workload.generate_units(0, cfg.warmup);
    let mut ada =
        Ada::with_history(base.clone(), tree, &warmup_units).expect("valid configuration");
    let mut sta = Sta::new(base).expect("valid configuration");
    for u in &warmup_units {
        sta.push_timeunit(tree, u);
    }

    const MAX_OFFSETS: usize = 48;
    let mut err_sum_off = vec![0.0; MAX_OFFSETS];
    let mut err_cnt_off = vec![0usize; MAX_OFFSETS];
    let mut err_sum_depth = vec![0.0; tree.max_depth() + 1];
    let mut err_cnt_depth = vec![0usize; tree.max_depth() + 1];
    let mut sta_sum = 0.0;
    let mut sta_cnt = 0usize;
    let mut err_total = 0.0;
    let mut err_total_cnt = 0usize;
    let mut confusion = ConfusionCounts::default();
    let mut membership_matched = true;

    for i in 0..cfg.instances {
        let unit = workload.generate_unit((cfg.warmup + i) as u64);
        ada.push_timeunit(tree, &unit);
        sta.push_timeunit(tree, &unit);

        let mut ada_members: Vec<_> = ada.heavy_hitters().to_vec();
        let mut sta_members: Vec<_> = sta.heavy_hitters().to_vec();
        ada_members.sort();
        sta_members.sort();
        if ada_members != sta_members {
            membership_matched = false;
        }

        for &n in &sta_members {
            let Some(truth) = sta.actual_series(n) else { continue };
            let Some(view) = ada.view(n) else { continue };
            let approx: Vec<f64> = view.actual.iter().collect();
            if approx.len() != truth.len() {
                continue;
            }
            let depth = tree.depth(n);
            let len = truth.len();
            for (idx, (&t, a)) in truth.iter().zip(approx.iter()).enumerate() {
                let offset = len - 1 - idx; // 0 = newest
                let e = (t - a).abs();
                if offset < MAX_OFFSETS {
                    err_sum_off[offset] += e;
                    err_cnt_off[offset] += 1;
                }
                err_sum_depth[depth] += e;
                err_cnt_depth[depth] += 1;
                err_total += e;
                err_total_cnt += 1;
                sta_sum += t.abs();
                sta_cnt += 1;
            }
            // Detection agreement on the newest unit.
            let (st, sf) = sta.latest(n).expect("member has series");
            let truth_flag = is_anomalous(st, sf, cfg.rt, cfg.dt);
            let ada_flag = is_anomalous(view.latest_actual, view.latest_forecast, cfg.rt, cfg.dt);
            confusion.record(truth_flag, ada_flag);
        }
    }

    let scale = if sta_cnt > 0 { sta_sum / sta_cnt as f64 } else { 1.0 };
    let norm = |sum: f64, cnt: usize| -> f64 {
        if cnt == 0 || scale <= 0.0 {
            0.0
        } else {
            (sum / cnt as f64) / scale
        }
    };
    CompareResult {
        err_by_offset: err_sum_off
            .iter()
            .zip(err_cnt_off.iter())
            .map(|(&s, &c)| norm(s, c))
            .collect(),
        err_by_depth: err_sum_depth
            .iter()
            .zip(err_cnt_depth.iter())
            .map(|(&s, &c)| norm(s, c))
            .collect(),
        mean_rel_error: norm(err_total, err_total_cnt),
        confusion,
        membership_matched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::ccd_trouble_workload;
    use tiresias_hhh::ModelSpec;

    fn small_cfg() -> CompareConfig {
        CompareConfig {
            theta: 8.0,
            ell: 48,
            warmup: 24,
            instances: 24,
            model: ModelSpec::Ewma { alpha: 0.5 },
            rule: SplitRule::LongTermHistory,
            ref_levels: 2,
            rt: 2.8,
            dt: 8.0,
        }
    }

    #[test]
    fn membership_always_matches() {
        let w = ccd_trouble_workload(0.3, 60.0, 11);
        let r = compare_ada_sta(&w, &small_cfg());
        assert!(r.membership_matched, "Lemma 1 must hold");
    }

    #[test]
    fn reference_levels_reduce_series_error() {
        let w = ccd_trouble_workload(0.3, 60.0, 12);
        let mut with_ref = small_cfg();
        with_ref.ref_levels = 2;
        let mut without = small_cfg();
        without.ref_levels = 0;
        let r_with = compare_ada_sta(&w, &with_ref);
        let r_without = compare_ada_sta(&w, &without);
        assert!(
            r_with.mean_rel_error <= r_without.mean_rel_error + 1e-9,
            "h=2 ({}) must not be worse than h=0 ({})",
            r_with.mean_rel_error,
            r_without.mean_rel_error
        );
    }

    #[test]
    fn detection_accuracy_is_high() {
        let w = ccd_trouble_workload(0.3, 60.0, 13);
        let r = compare_ada_sta(&w, &small_cfg());
        assert!(r.confusion.total() > 0);
        assert!(r.confusion.accuracy() > 0.9, "accuracy {} too low", r.confusion.accuracy());
    }
}
