//! Table III — total running time of Tiresias per stage, ADA vs STA,
//! for 15-minute and 1-hour timeunits.

use tiresias_bench::fmt::{secs, Table};
use tiresias_bench::perf::{run_perf, PerfConfig};
use tiresias_bench::scenarios::ccd_trouble_workload;
use tiresias_hhh::ModelSpec;

fn main() {
    let workload = ccd_trouble_workload(1.0, 300.0, 81);
    println!("Table III — running time per stage, ADA vs STA (CCD)\n");

    let mut table = Table::new(vec![
        "Delta",
        "Algo",
        "Reading",
        "Updating",
        "CreatingTS",
        "Total",
        "Speedup(total)",
        "Speedup(compute)",
    ]);
    for (label, coarsen, ell, warmup, instances, season) in
        [("15 min", 1usize, 288usize, 192usize, 192usize, 96usize), ("60 min", 4, 72, 48, 48, 24)]
    {
        let cfg = PerfConfig {
            theta: 10.0,
            ell,
            warmup,
            instances,
            model: ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season },
            coarsen,
            ref_levels: 2,
        };
        let r = run_perf(&workload, &cfg);
        for (algo, t) in [("ADA", &r.ada), ("STA", &r.sta)] {
            table.row(vec![
                label.into(),
                algo.into(),
                secs(r.reading),
                secs(t.updating_hierarchies),
                secs(t.creating_time_series),
                secs(t.total() + r.reading),
                if algo == "ADA" { format!("{:.1}x", r.speedup_total()) } else { String::new() },
                if algo == "ADA" { format!("{:.1}x", r.speedup_compute()) } else { String::new() },
            ]);
        }
    }
    println!("{table}");
    println!("Paper shape: ADA 5-14x faster in total, 41-50x excluding trace reading;");
    println!("STA is dominated by Creating Time Series; the gap widens as Delta shrinks.");
}
