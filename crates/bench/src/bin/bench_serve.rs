//! `bench_serve` — end-to-end throughput of the streaming daemon's
//! socket path.
//!
//! Starts an in-process `tiresias-server` on a loopback socket, then
//! drives it with N concurrent TCP clients pushing a synthetic
//! multi-category workload through the wire protocol, and measures
//! **records/sec through the socket admission path**: socket reads,
//! protocol parsing, per-record admission into the due/future buffers
//! and size-triggered `push_batch` flushes into the sharded engine.
//! (Timeunit *closes* run on the scheduler thread and overlap
//! admission in steady state; in this compressed replay they mostly
//! fire at the grace-window expiry, outside the timed window — the
//! `STATS` line in the report confirms every record was processed.)
//! Two modes are measured:
//!
//! * `noack` — clients issue `NOACK` first, so `PUSH` lines stream
//!   without per-record replies (the operational bulk-feed mode);
//! * `noack_bare` — the same noack run with `telemetry = false`
//!   (`into_live_untelemetered`: zero clock reads on the hot paths).
//!   The gap between `noack_bare` and `noack` is the telemetry tax —
//!   the cost of the per-batch admission histograms and stall
//!   counters — measured over adjacent run pairs and reported as
//!   `telemetry_tax_pct` (median of per-pair drops), which CI gates
//!   at ≤ 5% (`perf_guard --ceiling … telemetry_tax_pct 5`);
//! * `acked` — every `PUSH` is acknowledged with `OK`, which bounds
//!   the protocol's chatty lower end (clients pipeline writes and
//!   drain replies on a separate thread);
//! * `acked_wal` — the acked run with `--data-dir` durability on the
//!   default `--wal-sync interval` policy: every admitted batch is
//!   also encoded and appended to the write-ahead log under the
//!   admission gate, with a background fsync cadence. The gap between
//!   `acked` and `acked_wal` is the price of crash safety, measured
//!   the same paired way as the telemetry tax and gated by CI
//!   (`perf_guard --ceiling … wal_drop_pct 35`).
//!
//! The `acked` mode additionally runs a **client-count sweep** (1, 2
//! and 4 concurrent clients over the same total record count) — the
//! multi-client scaling curve of the lock-free admission path, where
//! sessions admit through independent `IngestHandle` clones instead of
//! one global state lock. On a multi-core host the per-client
//! admission work (socket reads, parsing, routing, ring hand-off)
//! overlaps across cores; on a 1-core container the sweep mostly
//! proves concurrency adds no contention penalty (read `host_cores`).
//!
//! The run also verifies the serving semantics end to end: a
//! subscriber must receive at least one live anomaly event for the
//! injected burst, and the daemon must shut down gracefully, writing a
//! versioned checkpoint.
//!
//! Writes the JSON report to the path given as the first argument,
//! default `BENCH_serve.json`, and prints it to stdout.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use serde::Serialize;
use tiresias_core::{TiresiasBuilder, CHECKPOINT_VERSION};
use tiresias_server::{Server, ServerConfig};

const TIMEUNIT: u64 = 900;
const UNITS: u64 = 24;
const CATEGORIES: u64 = 32;
const RECORDS_PER_UNIT_PER_CATEGORY: u64 = 60;
const BURST_UNIT: u64 = 20;
const BURST_FACTOR: u64 = 10;
const CLIENTS: usize = 4;
const SHARDS: usize = 4;
/// Generous grace window: the bench replays historical timestamps much
/// faster than real time, so the window must absorb the full
/// cross-client skew (one client's stream running ahead of another's)
/// or stragglers would be dropped as late.
const GRACE_MS: u64 = 3_000;

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(96)
        .threshold(10.0)
        .season_length(4)
        .sensitivity(2.8, 8.0)
        .warmup_units(8)
        .shards(SHARDS)
}

/// The synthetic workload as protocol `PUSH` lines, chunked
/// `payloads[client][unit]`. Records are dealt round-robin within each
/// unit so client streams interleave mid-unit like real feeds, but the
/// clients advance through *units* in lockstep (a barrier between
/// units in the driver) — live feeds are naturally time-aligned, and
/// unbounded skew would just measure the grace window dropping
/// stragglers.
fn client_payloads(clients: usize, scale: u64) -> (usize, Vec<Vec<String>>) {
    let mut total = 0usize;
    let mut payloads = vec![vec![String::new(); UNITS as usize]; clients];
    for u in 0..UNITS {
        let mut i_in_unit = 0usize;
        for c in 0..CATEGORIES {
            let count = scale
                * if u == BURST_UNIT && c == 0 {
                    RECORDS_PER_UNIT_PER_CATEGORY * BURST_FACTOR
                } else {
                    RECORDS_PER_UNIT_PER_CATEGORY
                };
            for i in 0..count {
                let t = u * TIMEUNIT + (i % TIMEUNIT);
                payloads[i_in_unit % clients][u as usize]
                    .push_str(&format!("PUSH region-{c}/pop-{}/service 42 {t}\n", c % 7));
                i_in_unit += 1;
                total += 1;
            }
        }
    }
    (total, payloads)
}

#[derive(Debug, Clone, Serialize)]
struct ModeReport {
    clients: usize,
    records: usize,
    wall_seconds: f64,
    records_per_sec: f64,
}

/// Keyed by mode name (a map, so `perf_guard` dotted paths like
/// `modes.noack.records_per_sec` can address the metrics).
#[derive(Debug, Serialize)]
struct ModesReport {
    noack: ModeReport,
    /// The noack run with telemetry disabled — the instrumentation-free
    /// baseline `telemetry_tax_pct` compares against.
    noack_bare: ModeReport,
    acked: ModeReport,
    /// The acked run with WAL durability (`--wal-sync interval`).
    acked_wal: ModeReport,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    generated_by: String,
    host_cores: usize,
    config: ConfigReport,
    modes: ModesReport,
    /// Acked-mode client-count sweep over the same total record count
    /// (the multi-client scaling of the lock-free admission path).
    acked_scaling: Vec<ModeReport>,
    /// Throughput drop of `acked_wal` relative to `acked`, percent
    /// (positive = the WAL cost something). Median of per-pair drops
    /// over adjacent runs, so host slow phases cancel out.
    wal_drop_pct: f64,
    /// Throughput drop of `noack` relative to `noack_bare`, percent —
    /// the cost of the admission-path histograms and counters. Median
    /// of per-pair drops, same pairing as `wal_drop_pct`.
    telemetry_tax_pct: f64,
    /// Anomaly events the live subscriber received (≥ 1 required).
    subscribed_events: usize,
    /// Final `STATS` line of the `noack` run.
    stats: String,
    clean_shutdown: bool,
    checkpoint_versioned: bool,
}

#[derive(Debug, Serialize)]
struct ConfigReport {
    shards: usize,
    timeunit_secs: u64,
    units: u64,
    categories: u64,
    grace_ms: u64,
    flush_records: usize,
}

/// One measured run; returns (wall seconds, subscribed event count,
/// stats line, checkpoint_versioned). With `durable`, the server runs
/// a `--data-dir` (fresh per run) on the default interval WAL-sync
/// policy — the crash-safe configuration. Without `settle`, the run
/// skips the grace-window sleep that lets the burst unit close and
/// reach the subscriber — timing-only repeats of an already-settled
/// mode don't pay the multi-second wait (their `events` count is 0).
fn run_mode(
    noack: bool,
    durable: bool,
    telemetry: bool,
    settle: bool,
    payloads: &[Vec<String>],
    records: usize,
) -> (f64, usize, String, bool) {
    let clients = payloads.len();
    let tag = match (noack, durable, telemetry) {
        (true, _, false) => "noack-bare",
        (true, _, true) => "noack",
        (false, false, _) => "acked",
        (false, true, _) => "acked-wal",
    };
    let ckpt = std::env::temp_dir()
        .join(format!("bench-serve-{}-{tag}-{clients}.ckpt", std::process::id(),));
    let _ = std::fs::remove_file(&ckpt);
    let data_dir = std::env::temp_dir()
        .join(format!("bench-serve-{}-{tag}-{clients}.data", std::process::id(),));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut config = ServerConfig::new(builder());
    config.grace = Duration::from_millis(GRACE_MS);
    config.tick = Duration::from_millis(20);
    config.checkpoint = Some(ckpt.clone());
    config.telemetry = telemetry;
    if durable {
        config.data_dir = Some(data_dir.clone());
    }
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr();

    // Subscriber: collects events until the stream closes at shutdown.
    let sub = {
        let mut stream = TcpStream::connect(addr).expect("subscriber connects");
        stream.write_all(b"SUBSCRIBE\n").expect("subscribes");
        std::thread::spawn(move || {
            let mut events = 0usize;
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.starts_with("EVENT ") {
                    events += 1;
                }
            }
            events
        })
    };

    let t0 = Instant::now();
    let unit_barrier = std::sync::Barrier::new(clients);
    std::thread::scope(|scope| {
        for chunks in payloads {
            let unit_barrier = &unit_barrier;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("client connects");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clones"));
                let mut line = String::new();
                if noack {
                    stream.write_all(b"NOACK\n").expect("noack");
                    reader.read_line(&mut line).expect("noack ok");
                    assert_eq!(line.trim_end(), "OK");
                }
                for chunk in chunks {
                    // One unit: the chunk plus a PING fence, then read
                    // the replies until the PONG proves every record of
                    // the unit was processed. The barrier then keeps
                    // the clients' *processing* positions aligned to
                    // within one unit — live feeds are naturally
                    // time-aligned, and unbounded skew would just
                    // measure the grace window dropping stragglers.
                    stream.write_all(chunk.as_bytes()).expect("pushes");
                    stream.write_all(b"PING\n").expect("ping");
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => panic!("server hung up mid-unit"),
                            Ok(_) => match line.trim_end() {
                                "PONG" => break,
                                reply => assert!(reply.starts_with("OK"), "reply: {reply}"),
                            },
                        }
                    }
                    unit_barrier.wait();
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();

    // Let the grace window expire so the burst's unit closes and the
    // events reach the subscriber live, before shutdown.
    if settle {
        std::thread::sleep(Duration::from_millis(GRACE_MS + 400));
    }
    let mut control = TcpStream::connect(addr).expect("control connects");
    control.write_all(b"STATS\n").expect("stats");
    let mut reader = BufReader::new(control.try_clone().expect("clones"));
    let mut stats = String::new();
    reader.read_line(&mut stats).expect("stats reply");
    control.write_all(b"SHUTDOWN\n").expect("shutdown");
    server.join().expect("clean shutdown");
    let events = sub.join().expect("subscriber finishes");

    let stats = stats.trim_end().to_string();
    assert!(
        stats.contains(&format!("records={records}")),
        "every pushed record was admitted: {stats}"
    );
    let checkpoint_versioned = std::fs::read_to_string(&ckpt)
        .map(|json| json.contains(&format!("\"version\":{CHECKPOINT_VERSION}")))
        .unwrap_or(false);
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_dir_all(&data_dir);
    (wall, events, stats, checkpoint_versioned)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serve.json".to_string());

    // Repeats for the perf_guard-gated modes: a single run's wall is
    // tens of milliseconds on this workload, and the host can sit in
    // multi-second slow phases (throttling, a neighbour container), so
    // same-run ratio gates need both variants measured back-to-back.
    // Each gated pair runs `GATED_RUNS` adjacent pairs in alternating
    // order; the reported *throughputs* are the best walls (what the
    // path can sustain), while the reported *ratios* (`wal_drop_pct`,
    // `telemetry_tax_pct`) are the median of the per-pair drops —
    // a slow phase lands on both halves of a pair and cancels out.
    const GATED_RUNS: usize = 7;
    fn median(mut xs: Vec<f64>) -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        let mid = xs.len() / 2;
        if xs.len() % 2 == 1 {
            xs[mid]
        } else {
            (xs[mid - 1] + xs[mid]) / 2.0
        }
    }

    // Acked client-count sweep: same total records, 1/2/4 concurrent
    // clients. The 4-client point doubles as `modes.acked` (the
    // perf_guard metric); its repeats are paired with the WAL runs
    // below.
    let mut acked_scaling = Vec::new();
    for clients in [1usize, 2] {
        let (records, payloads) = client_payloads(clients, 1);
        let (wall, _, _, _) = run_mode(false, false, true, false, &payloads, records);
        acked_scaling.push(ModeReport {
            clients,
            records,
            wall_seconds: wall,
            records_per_sec: records as f64 / wall,
        });
    }

    // Acked vs acked+WAL, in adjacent pairs: the crash-safety price.
    let (records, payloads) = client_payloads(CLIENTS, 1);
    let mut acked_wall = f64::INFINITY;
    let mut wal_wall = f64::INFINITY;
    let mut wal_drops = Vec::new();
    for i in 0..GATED_RUNS {
        let mut pair = [0.0f64; 2]; // [acked, acked_wal]
        for durable in [i % 2 == 0, i % 2 != 0] {
            let (wall, _, _, _) = run_mode(false, durable, true, false, &payloads, records);
            pair[durable as usize] = wall;
        }
        acked_wall = acked_wall.min(pair[0]);
        wal_wall = wal_wall.min(pair[1]);
        wal_drops.push((pair[1] / pair[0] - 1.0) * 100.0);
    }
    let acked = ModeReport {
        clients: CLIENTS,
        records,
        wall_seconds: acked_wall,
        records_per_sec: records as f64 / acked_wall,
    };
    acked_scaling.push(acked.clone());
    let acked_wal = ModeReport {
        clients: CLIENTS,
        records,
        wall_seconds: wal_wall,
        records_per_sec: records as f64 / wal_wall,
    };
    let wal_drop_pct = median(wal_drops);

    // The instrumentation-free noack baseline vs the telemetered noack
    // run. At scale 1 the noack wall is dominated by the per-unit PING
    // fences, so the noack pair pushes `NOACK_SCALE`× the records per
    // unit (per-record admission work dominates) with the runs
    // interleaved bare/telemetered so slow stretches of the host hit
    // both variants alike.
    const NOACK_SCALE: u64 = 8;
    let (records, payloads) = client_payloads(CLIENTS, NOACK_SCALE);
    let mut bare_wall = f64::INFINITY;
    let mut noack_wall = f64::INFINITY;
    let mut taxes = Vec::new();
    for i in 0..GATED_RUNS {
        let mut pair = [0.0f64; 2]; // [bare, telemetered]
        for telemetered in [i % 2 == 0, i % 2 != 0] {
            let (wall, _, _, _) = run_mode(true, false, telemetered, false, &payloads, records);
            pair[telemetered as usize] = wall;
        }
        bare_wall = bare_wall.min(pair[0]);
        noack_wall = noack_wall.min(pair[1]);
        taxes.push((pair[1] / pair[0] - 1.0) * 100.0);
    }
    let telemetry_tax_pct = median(taxes);
    // One settled telemetered run carries the semantic checks: the
    // subscriber sees the burst, the stats line, the checkpoint.
    let (wall, events, stats, checkpoint_versioned) =
        run_mode(true, false, true, true, &payloads, records);
    noack_wall = noack_wall.min(wall);
    assert!(events >= 1, "the subscriber saw the injected burst");
    let noack_bare = ModeReport {
        clients: CLIENTS,
        records,
        wall_seconds: bare_wall,
        records_per_sec: records as f64 / bare_wall,
    };
    let noack_rps = records as f64 / noack_wall;

    let report = Report {
        schema: "tiresias-bench-serve/v1".to_string(),
        generated_by: "cargo run --release -p tiresias-bench --bin bench_serve".to_string(),
        host_cores: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        config: ConfigReport {
            shards: SHARDS,
            timeunit_secs: TIMEUNIT,
            units: UNITS,
            categories: CATEGORIES,
            grace_ms: GRACE_MS,
            flush_records: 8192,
        },
        modes: ModesReport {
            noack: ModeReport {
                clients: CLIENTS,
                records,
                wall_seconds: noack_wall,
                records_per_sec: noack_rps,
            },
            noack_bare,
            acked,
            acked_wal,
        },
        acked_scaling,
        wal_drop_pct,
        telemetry_tax_pct,
        subscribed_events: events,
        stats,
        clean_shutdown: true,
        checkpoint_versioned,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report file");
    println!("{json}");
}
