//! `bench_serve` — end-to-end throughput of the streaming daemon's
//! socket path.
//!
//! Starts an in-process `tiresias-server` on a loopback socket, then
//! drives it with N concurrent TCP clients pushing a synthetic
//! multi-category workload through the wire protocol, and measures
//! **records/sec through the socket admission path**: socket reads,
//! protocol parsing, per-record admission into the due/future buffers
//! and size-triggered `push_batch` flushes into the sharded engine.
//! (Timeunit *closes* run on the scheduler thread and overlap
//! admission in steady state; in this compressed replay they mostly
//! fire at the grace-window expiry, outside the timed window — the
//! `STATS` line in the report confirms every record was processed.)
//! Two modes are measured:
//!
//! * `noack` — clients issue `NOACK` first, so `PUSH` lines stream
//!   without per-record replies (the operational bulk-feed mode);
//! * `noack_bare` — the same noack run with `telemetry = false`
//!   (`into_live_untelemetered`: zero clock reads on the hot paths).
//!   The gap between `noack_bare` and `noack` is the telemetry tax —
//!   the cost of the per-batch admission histograms and stall
//!   counters — measured over adjacent run pairs and reported as
//!   `telemetry_tax_pct` (median of per-pair drops), which CI gates
//!   at ≤ 5% (`perf_guard --ceiling … telemetry_tax_pct 5`);
//! * `acked` — every `PUSH` is acknowledged with `OK`, which bounds
//!   the protocol's chatty lower end (clients pipeline writes and
//!   drain replies on a separate thread);
//! * `acked_wal` — the acked run with `--data-dir` durability on the
//!   default `--wal-sync interval` policy: every admitted batch is
//!   also encoded and appended to the write-ahead log under the
//!   admission gate, with a background fsync cadence. The gap between
//!   `acked` and `acked_wal` is the price of crash safety, measured
//!   the same paired way as the telemetry tax and gated by CI
//!   (`perf_guard --ceiling … wal_drop_pct 35`);
//! * `noack_bin` / `acked_bin` — the same record streams over binary
//!   wire protocol v2 (`UPGRADE`): per-connection label dictionaries,
//!   varint delta timestamps, one admission batch (and in acked mode
//!   one `OK frame=<seq>` ack) per DATA frame. Each is paired against
//!   its text twin run-for-run; the median per-pair gains are reported
//!   as `bin_gain_pct` / `acked_bin_gain_pct`, and CI holds a floor on
//!   `bin_gain_pct` (`perf_guard --floor … bin_gain_pct <min>`).
//!
//! The `acked` mode additionally runs a **client-count sweep** (1, 2
//! and 4 concurrent clients over the same total record count) — the
//! multi-client scaling curve of the lock-free admission path, where
//! sessions admit through independent `IngestHandle` clones instead of
//! one global state lock. On a multi-core host the per-client
//! admission work (socket reads, parsing, routing, ring hand-off)
//! overlaps across cores; on a 1-core container the sweep mostly
//! proves concurrency adds no contention penalty (read `host_cores`).
//!
//! The run also verifies the serving semantics end to end: a
//! subscriber must receive at least one live anomaly event for the
//! injected burst, and the daemon must shut down gracefully, writing a
//! versioned checkpoint.
//!
//! Writes the JSON report to the path given as the first argument,
//! default `BENCH_serve.json`, and prints it to stdout.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use serde::Serialize;
use tiresias_core::{TiresiasBuilder, CHECKPOINT_VERSION};
use tiresias_server::protocol::v2;
use tiresias_server::{Server, ServerConfig};

const TIMEUNIT: u64 = 900;
const UNITS: u64 = 24;
const CATEGORIES: u64 = 32;
const RECORDS_PER_UNIT_PER_CATEGORY: u64 = 60;
const BURST_UNIT: u64 = 20;
const BURST_FACTOR: u64 = 10;
const CLIENTS: usize = 4;
const SHARDS: usize = 4;
/// Generous grace window: the bench replays historical timestamps much
/// faster than real time, so the window must absorb the full
/// cross-client skew (one client's stream running ahead of another's)
/// or stragglers would be dropped as late.
const GRACE_MS: u64 = 3_000;

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(96)
        .threshold(10.0)
        .season_length(4)
        .sensitivity(2.8, 8.0)
        .warmup_units(8)
        .shards(SHARDS)
}

/// The synthetic workload as `(label, timestamp)` records, chunked
/// `records[client][unit]`. Records are dealt round-robin within each
/// unit so client streams interleave mid-unit like real feeds, but the
/// clients advance through *units* in lockstep (a barrier between
/// units in the driver) — live feeds are naturally time-aligned, and
/// unbounded skew would just measure the grace window dropping
/// stragglers.
#[allow(clippy::type_complexity)]
fn client_records(clients: usize, scale: u64) -> (usize, Vec<Vec<Vec<(String, u64)>>>) {
    let mut total = 0usize;
    let mut records = vec![vec![Vec::new(); UNITS as usize]; clients];
    for u in 0..UNITS {
        let mut i_in_unit = 0usize;
        for c in 0..CATEGORIES {
            let count = scale
                * if u == BURST_UNIT && c == 0 {
                    RECORDS_PER_UNIT_PER_CATEGORY * BURST_FACTOR
                } else {
                    RECORDS_PER_UNIT_PER_CATEGORY
                };
            for i in 0..count {
                let t = u * TIMEUNIT + (i % TIMEUNIT);
                records[i_in_unit % clients][u as usize]
                    .push((format!("region-{c}/pop-{}/service 42", c % 7), t));
                i_in_unit += 1;
                total += 1;
            }
        }
    }
    (total, records)
}

/// One unit's worth of pre-encoded wire traffic for one client: the
/// bytes to write (records plus the trailing fence) and the reply line
/// that proves the server processed everything before the fence.
struct UnitChunk {
    bytes: Vec<u8>,
    fence: String,
}

/// The workload as text-protocol `PUSH` lines with a `PING` fence per
/// unit.
fn text_chunks(records: &[Vec<Vec<(String, u64)>>]) -> Vec<Vec<UnitChunk>> {
    records
        .iter()
        .map(|units| {
            units
                .iter()
                .map(|unit| {
                    let mut s = String::new();
                    for (label, t) in unit {
                        s.push_str(&format!("PUSH {label} {t}\n"));
                    }
                    s.push_str("PING\n");
                    UnitChunk { bytes: s.into_bytes(), fence: "PONG".to_string() }
                })
                .collect()
        })
        .collect()
}

/// The same workload as v2 binary frames: one DATA frame per unit per
/// client through a per-client dictionary (labels cross the wire once,
/// on first use), fenced by a PING frame whose `PONG frame=<seq>` is
/// answered only after the DATA frame before it was admitted.
fn binary_chunks(records: &[Vec<Vec<(String, u64)>>]) -> Vec<Vec<UnitChunk>> {
    records
        .iter()
        .map(|units| {
            let mut enc = v2::FrameEncoder::new();
            units
                .iter()
                .enumerate()
                .map(|(u, unit)| {
                    let mut bytes = Vec::new();
                    let seq = 2 * u as u32;
                    enc.encode_data(seq, unit, &mut bytes);
                    bytes.extend_from_slice(&v2::control_frame(v2::FrameKind::Ping, seq + 1));
                    UnitChunk { bytes, fence: format!("PONG frame={}", seq + 1) }
                })
                .collect()
        })
        .collect()
}

#[derive(Debug, Clone, Serialize)]
struct ModeReport {
    clients: usize,
    records: usize,
    wall_seconds: f64,
    records_per_sec: f64,
}

/// Keyed by mode name (a map, so `perf_guard` dotted paths like
/// `modes.noack.records_per_sec` can address the metrics).
#[derive(Debug, Serialize)]
struct ModesReport {
    noack: ModeReport,
    /// The noack run with telemetry disabled — the instrumentation-free
    /// baseline `telemetry_tax_pct` compares against.
    noack_bare: ModeReport,
    /// The noack workload over binary wire protocol v2 (`UPGRADE`):
    /// interned label dictionary, varint delta timestamps, one
    /// admission batch per DATA frame.
    noack_bin: ModeReport,
    acked: ModeReport,
    /// The acked run with WAL durability (`--wal-sync interval`).
    acked_wal: ModeReport,
    /// The acked workload over v2 frames: one `OK frame=<seq>` ack per
    /// DATA frame instead of one `OK` per record.
    acked_bin: ModeReport,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    generated_by: String,
    host_cores: usize,
    config: ConfigReport,
    modes: ModesReport,
    /// Acked-mode client-count sweep over the same total record count
    /// (the multi-client scaling of the lock-free admission path).
    acked_scaling: Vec<ModeReport>,
    /// Throughput drop of `acked_wal` relative to `acked`, percent
    /// (positive = the WAL cost something). Median of per-pair drops
    /// over adjacent runs, so host slow phases cancel out.
    wal_drop_pct: f64,
    /// Throughput drop of `noack` relative to `noack_bare`, percent —
    /// the cost of the admission-path histograms and counters. Median
    /// of per-pair drops, same pairing as `wal_drop_pct`.
    telemetry_tax_pct: f64,
    /// Throughput gain of `noack_bin` over text `noack`, percent
    /// (positive = binary faster). Median of per-pair gains over
    /// adjacent same-run pairs; CI gates a floor on this.
    bin_gain_pct: f64,
    /// Throughput gain of `acked_bin` over text `acked`, percent —
    /// frame-level acks versus per-record acks, same pairing.
    acked_bin_gain_pct: f64,
    /// Anomaly events the live subscriber received (≥ 1 required).
    subscribed_events: usize,
    /// Final `STATS` line of the `noack` run.
    stats: String,
    clean_shutdown: bool,
    checkpoint_versioned: bool,
}

#[derive(Debug, Serialize)]
struct ConfigReport {
    shards: usize,
    timeunit_secs: u64,
    units: u64,
    categories: u64,
    grace_ms: u64,
    flush_records: usize,
}

/// One measured run; returns (wall seconds, subscribed event count,
/// stats line, checkpoint_versioned). With `durable`, the server runs
/// a `--data-dir` (fresh per run) on the default interval WAL-sync
/// policy — the crash-safe configuration. Without `settle`, the run
/// skips the grace-window sleep that lets the burst unit close and
/// reach the subscriber — timing-only repeats of an already-settled
/// mode don't pay the multi-second wait (their `events` count is 0).
fn run_mode(
    noack: bool,
    durable: bool,
    telemetry: bool,
    settle: bool,
    binary: bool,
    payloads: &[Vec<UnitChunk>],
    records: usize,
) -> (f64, usize, String, bool) {
    let clients = payloads.len();
    let tag = match (noack, binary, durable, telemetry) {
        (true, true, ..) => "noack-bin",
        (false, true, ..) => "acked-bin",
        (true, false, _, false) => "noack-bare",
        (true, false, _, true) => "noack",
        (false, false, false, _) => "acked",
        (false, false, true, _) => "acked-wal",
    };
    let ckpt = std::env::temp_dir()
        .join(format!("bench-serve-{}-{tag}-{clients}.ckpt", std::process::id(),));
    let _ = std::fs::remove_file(&ckpt);
    let data_dir = std::env::temp_dir()
        .join(format!("bench-serve-{}-{tag}-{clients}.data", std::process::id(),));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut config = ServerConfig::new(builder());
    config.grace = Duration::from_millis(GRACE_MS);
    config.tick = Duration::from_millis(20);
    config.checkpoint = Some(ckpt.clone());
    config.telemetry = telemetry;
    if durable {
        config.data_dir = Some(data_dir.clone());
    }
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr();

    // Subscriber: collects events until the stream closes at shutdown.
    let sub = {
        let mut stream = TcpStream::connect(addr).expect("subscriber connects");
        stream.write_all(b"SUBSCRIBE\n").expect("subscribes");
        std::thread::spawn(move || {
            let mut events = 0usize;
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.starts_with("EVENT ") {
                    events += 1;
                }
            }
            events
        })
    };

    let t0 = Instant::now();
    let unit_barrier = std::sync::Barrier::new(clients);
    std::thread::scope(|scope| {
        for chunks in payloads {
            let unit_barrier = &unit_barrier;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("client connects");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clones"));
                let mut line = String::new();
                if noack {
                    stream.write_all(b"NOACK\n").expect("noack");
                    reader.read_line(&mut line).expect("noack ok");
                    assert_eq!(line.trim_end(), "OK");
                }
                if binary {
                    stream.write_all(b"UPGRADE\n").expect("upgrade");
                    line.clear();
                    reader.read_line(&mut line).expect("upgrade ok");
                    assert_eq!(line.trim_end(), "OK upgraded");
                }
                for chunk in chunks {
                    // One unit: the chunk ends in a PING fence, so
                    // reading replies until the fence proves every
                    // record of the unit was processed. The barrier
                    // then keeps the clients' *processing* positions
                    // aligned to within one unit — live feeds are
                    // naturally time-aligned, and unbounded skew would
                    // just measure the grace window dropping
                    // stragglers.
                    stream.write_all(&chunk.bytes).expect("pushes");
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => panic!("server hung up mid-unit"),
                            Ok(_) => match line.trim_end() {
                                reply if reply == chunk.fence => break,
                                reply => assert!(reply.starts_with("OK"), "reply: {reply}"),
                            },
                        }
                    }
                    unit_barrier.wait();
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();

    // Let the grace window expire so the burst's unit closes and the
    // events reach the subscriber live, before shutdown.
    if settle {
        std::thread::sleep(Duration::from_millis(GRACE_MS + 400));
    }
    let mut control = TcpStream::connect(addr).expect("control connects");
    control.write_all(b"STATS\n").expect("stats");
    let mut reader = BufReader::new(control.try_clone().expect("clones"));
    let mut stats = String::new();
    reader.read_line(&mut stats).expect("stats reply");
    control.write_all(b"SHUTDOWN\n").expect("shutdown");
    server.join().expect("clean shutdown");
    let events = sub.join().expect("subscriber finishes");

    let stats = stats.trim_end().to_string();
    assert!(
        stats.contains(&format!("records={records}")),
        "every pushed record was admitted: {stats}"
    );
    let checkpoint_versioned = std::fs::read_to_string(&ckpt)
        .map(|json| json.contains(&format!("\"version\":{CHECKPOINT_VERSION}")))
        .unwrap_or(false);
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_dir_all(&data_dir);
    (wall, events, stats, checkpoint_versioned)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serve.json".to_string());

    // Repeats for the perf_guard-gated modes: a single run's wall is
    // tens of milliseconds on this workload, and the host can sit in
    // multi-second slow phases (throttling, a neighbour container), so
    // same-run ratio gates need both variants measured back-to-back.
    // Each gated pair runs `GATED_RUNS` adjacent pairs in alternating
    // order; the reported *throughputs* are the best walls (what the
    // path can sustain), while the reported *ratios* (`wal_drop_pct`,
    // `telemetry_tax_pct`) are the median of the per-pair drops —
    // a slow phase lands on both halves of a pair and cancels out.
    const GATED_RUNS: usize = 7;
    fn median(mut xs: Vec<f64>) -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        let mid = xs.len() / 2;
        if xs.len() % 2 == 1 {
            xs[mid]
        } else {
            (xs[mid - 1] + xs[mid]) / 2.0
        }
    }

    // Acked client-count sweep: same total records, 1/2/4 concurrent
    // clients. The 4-client point doubles as `modes.acked` (the
    // perf_guard metric); its repeats are paired with the WAL runs
    // below.
    let mut acked_scaling = Vec::new();
    for clients in [1usize, 2] {
        let (records, recs) = client_records(clients, 1);
        let payloads = text_chunks(&recs);
        let (wall, _, _, _) = run_mode(false, false, true, false, false, &payloads, records);
        acked_scaling.push(ModeReport {
            clients,
            records,
            wall_seconds: wall,
            records_per_sec: records as f64 / wall,
        });
    }

    // Acked vs acked+WAL, in adjacent pairs: the crash-safety price.
    let (records, recs) = client_records(CLIENTS, 1);
    let payloads = text_chunks(&recs);
    let bin_payloads = binary_chunks(&recs);
    let mut acked_wall = f64::INFINITY;
    let mut wal_wall = f64::INFINITY;
    let mut wal_drops = Vec::new();
    for i in 0..GATED_RUNS {
        let mut pair = [0.0f64; 2]; // [acked, acked_wal]
        for durable in [i % 2 == 0, i % 2 != 0] {
            let (wall, _, _, _) = run_mode(false, durable, true, false, false, &payloads, records);
            pair[durable as usize] = wall;
        }
        acked_wall = acked_wall.min(pair[0]);
        wal_wall = wal_wall.min(pair[1]);
        wal_drops.push((pair[1] / pair[0] - 1.0) * 100.0);
    }
    let wal_drop_pct = median(wal_drops);

    // Text acked vs v2 acked, same pairing: per-record acks against
    // per-frame acks over the identical record stream.
    let mut acked_bin_wall = f64::INFINITY;
    let mut acked_bin_gains = Vec::new();
    for i in 0..GATED_RUNS {
        let mut pair = [0.0f64; 2]; // [text, binary]
        for binary in [i % 2 == 0, i % 2 != 0] {
            let chunks = if binary { &bin_payloads } else { &payloads };
            let (wall, _, _, _) = run_mode(false, false, true, false, binary, chunks, records);
            pair[binary as usize] = wall;
        }
        acked_wall = acked_wall.min(pair[0]);
        acked_bin_wall = acked_bin_wall.min(pair[1]);
        acked_bin_gains.push((pair[0] / pair[1] - 1.0) * 100.0);
    }
    let acked_bin_gain_pct = median(acked_bin_gains);
    let acked = ModeReport {
        clients: CLIENTS,
        records,
        wall_seconds: acked_wall,
        records_per_sec: records as f64 / acked_wall,
    };
    acked_scaling.push(acked.clone());
    let acked_wal = ModeReport {
        clients: CLIENTS,
        records,
        wall_seconds: wal_wall,
        records_per_sec: records as f64 / wal_wall,
    };
    let acked_bin = ModeReport {
        clients: CLIENTS,
        records,
        wall_seconds: acked_bin_wall,
        records_per_sec: records as f64 / acked_bin_wall,
    };

    // The instrumentation-free noack baseline vs the telemetered noack
    // run. At scale 1 the noack wall is dominated by the per-unit PING
    // fences, so the noack pair pushes `NOACK_SCALE`× the records per
    // unit (per-record admission work dominates) with the runs
    // interleaved bare/telemetered so slow stretches of the host hit
    // both variants alike.
    const NOACK_SCALE: u64 = 8;
    let (records, recs) = client_records(CLIENTS, NOACK_SCALE);
    let payloads = text_chunks(&recs);
    let bin_payloads = binary_chunks(&recs);
    let mut bare_wall = f64::INFINITY;
    let mut noack_wall = f64::INFINITY;
    let mut taxes = Vec::new();
    for i in 0..GATED_RUNS {
        let mut pair = [0.0f64; 2]; // [bare, telemetered]
        for telemetered in [i % 2 == 0, i % 2 != 0] {
            let (wall, _, _, _) =
                run_mode(true, false, telemetered, false, false, &payloads, records);
            pair[telemetered as usize] = wall;
        }
        bare_wall = bare_wall.min(pair[0]);
        noack_wall = noack_wall.min(pair[1]);
        taxes.push((pair[1] / pair[0] - 1.0) * 100.0);
    }
    let telemetry_tax_pct = median(taxes);

    // Text noack vs v2 noack, same pairing: the tentpole comparison.
    // Identical record stream, identical admission work downstream of
    // the protocol — the gain is parsing and socket bytes saved.
    let mut noack_bin_wall = f64::INFINITY;
    let mut bin_gains = Vec::new();
    for i in 0..GATED_RUNS {
        let mut pair = [0.0f64; 2]; // [text, binary]
        for binary in [i % 2 == 0, i % 2 != 0] {
            let chunks = if binary { &bin_payloads } else { &payloads };
            let (wall, _, _, _) = run_mode(true, false, true, false, binary, chunks, records);
            pair[binary as usize] = wall;
        }
        noack_wall = noack_wall.min(pair[0]);
        noack_bin_wall = noack_bin_wall.min(pair[1]);
        bin_gains.push((pair[0] / pair[1] - 1.0) * 100.0);
    }
    let bin_gain_pct = median(bin_gains);
    let noack_bin = ModeReport {
        clients: CLIENTS,
        records,
        wall_seconds: noack_bin_wall,
        records_per_sec: records as f64 / noack_bin_wall,
    };

    // One settled telemetered run carries the semantic checks: the
    // subscriber sees the burst, the stats line, the checkpoint.
    let (wall, events, stats, checkpoint_versioned) =
        run_mode(true, false, true, true, false, &payloads, records);
    noack_wall = noack_wall.min(wall);
    assert!(events >= 1, "the subscriber saw the injected burst");
    let noack_bare = ModeReport {
        clients: CLIENTS,
        records,
        wall_seconds: bare_wall,
        records_per_sec: records as f64 / bare_wall,
    };
    let noack_rps = records as f64 / noack_wall;

    let report = Report {
        schema: "tiresias-bench-serve/v2".to_string(),
        generated_by: "cargo run --release -p tiresias-bench --bin bench_serve".to_string(),
        host_cores: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        config: ConfigReport {
            shards: SHARDS,
            timeunit_secs: TIMEUNIT,
            units: UNITS,
            categories: CATEGORIES,
            grace_ms: GRACE_MS,
            flush_records: 8192,
        },
        modes: ModesReport {
            noack: ModeReport {
                clients: CLIENTS,
                records,
                wall_seconds: noack_wall,
                records_per_sec: noack_rps,
            },
            noack_bare,
            noack_bin,
            acked,
            acked_wal,
            acked_bin,
        },
        acked_scaling,
        wal_drop_pct,
        telemetry_tax_pct,
        bin_gain_pct,
        acked_bin_gain_pct,
        subscribed_events: events,
        stats,
        clean_shutdown: true,
        checkpoint_versioned,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report file");
    println!("{json}");
}
