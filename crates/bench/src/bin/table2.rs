//! Table II — hierarchy properties (depth and typical per-level degree)
//! of the CCD and SCD hierarchies: paper values vs the built trees.

use tiresias_bench::fmt::Table;
use tiresias_datagen::{ccd_location_spec, ccd_trouble_spec, scd_location_spec};

fn main() {
    let trouble = ccd_trouble_spec(1.0).build().expect("valid spec");
    let location = ccd_location_spec(1.0).build().expect("valid spec");
    let scd = scd_location_spec(1.0).build().expect("valid spec");

    let mut table = Table::new(vec!["Data", "Type", "Depth", "k=1", "k=2", "k=3", "k=4", "Nodes"]);
    let degree = |t: &tiresias_hierarchy::Tree, k: usize| -> String {
        t.typical_degree(k - 1).map(|d| format!("{d:.0}")).unwrap_or_else(|| "N/A".into())
    };
    for (data, kind, t, paper) in [
        ("CCD", "Trouble descr.", &trouble, "9 / 6 / 3 / 5"),
        ("CCD", "Network path", &location, "61 / 5 / 6 / 24"),
        ("SCD", "Network path", &scd, "2000 / 30 / 6 / N/A"),
    ] {
        table.row(vec![
            data.into(),
            kind.into(),
            format!("{}", t.max_depth() + 1),
            degree(t, 1),
            degree(t, 2),
            degree(t, 3),
            degree(t, 4),
            format!("{}", t.len()),
        ]);
        println!("paper degrees for {data} {kind}: {paper}");
    }
    println!("\nTable II — hierarchy properties (built trees)\n");
    println!("{table}");
}
