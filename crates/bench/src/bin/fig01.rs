//! Fig. 1 — CCDF of the normalized count of appearances across nodes and
//! timeunits, per hierarchy level: (a) CCD trouble issues, (b) CCD
//! network locations, (c) SCD network locations.

use tiresias_bench::scenarios::{
    ccd_location_workload, ccd_trouble_workload, scd_workload, UNITS_PER_WEEK,
};
use tiresias_datagen::Workload;
use tiresias_hhh::aggregate_weights;
use tiresias_timeseries::stats::{ccdf, log_space};

fn ccdf_per_level(workload: &Workload, units: usize, label: &str) {
    let tree = workload.tree();
    let depths = tree.max_depth();
    // Collect normalized per-node-per-unit aggregate counts by level.
    let mut per_level: Vec<Vec<f64>> = vec![Vec::new(); depths + 1];
    let mut max_count: f64 = 0.0;
    let mut raw: Vec<(usize, f64)> = Vec::new();
    for unit in 0..units as u64 {
        let counts = workload.generate_unit(unit);
        let agg = aggregate_weights(tree, &counts);
        for n in tree.iter() {
            let v = agg[n.index()];
            max_count = max_count.max(v);
            raw.push((tree.depth(n), v));
        }
    }
    for (d, v) in raw {
        per_level[d].push(if max_count > 0.0 { v / max_count } else { 0.0 });
    }
    let points = log_space(1e-4, 1.0, 13);
    println!("\n{label}: CCDF of normalized counts (rows = normalized count)");
    print!("{:>10}", "x");
    for d in 0..=depths {
        print!("  {:>9}", format!("level {d}"));
    }
    println!();
    let curves: Vec<Vec<f64>> = (0..=depths).map(|d| ccdf(&per_level[d], &points)).collect();
    for (i, &p) in points.iter().enumerate() {
        print!("{p:>10.4}");
        for curve in &curves {
            print!("  {:>9.5}", curve[i]);
        }
        println!();
    }
    // Sparsity headline: fraction of zero samples at the deepest levels.
    for d in [depths.saturating_sub(1), depths] {
        let zeros = per_level[d].iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / per_level[d].len().max(1) as f64;
        println!("level {d}: {:.1}% of (node, unit) samples are empty", frac * 100.0);
    }
}

fn main() {
    println!("Fig. 1 — CCDF of normalized appearance counts per level");
    let units = UNITS_PER_WEEK;
    ccdf_per_level(&ccd_trouble_workload(1.0, 300.0, 41), units, "(a) CCD trouble issues");
    ccdf_per_level(&ccd_location_workload(0.2, 300.0, 42), units, "(b) CCD network locations");
    ccdf_per_level(&scd_workload(0.01, 300.0, 43), units, "(c) SCD network locations");
}
