//! Table I — distribution of CCD customer tickets over the first-level
//! trouble categories: paper values vs the synthetic generator.

use tiresias_bench::fmt::Table;
use tiresias_bench::scenarios::{ccd_trouble_workload, UNITS_PER_WEEK};
use tiresias_datagen::CCD_TICKET_MIX;

fn main() {
    let workload = ccd_trouble_workload(1.0, 300.0, 1);
    let tree = workload.tree();
    let weeks = 2;

    // Accumulate per-first-level-category counts over two weeks.
    let mut per_top: Vec<f64> = vec![0.0; tree.children(tree.root()).len()];
    let mut total = 0.0;
    for unit in 0..(weeks * UNITS_PER_WEEK) as u64 {
        let counts = workload.generate_unit(unit);
        for (i, &cat) in tree.children(tree.root()).iter().enumerate() {
            let c: f64 = tree.subtree(cat).map(|n| counts[n.index()]).sum();
            per_top[i] += c;
            total += c;
        }
    }

    let mut table = Table::new(vec!["Ticket type", "Paper (%)", "Generated (%)"]);
    for (i, &cat) in tree.children(tree.root()).iter().enumerate() {
        let paper = CCD_TICKET_MIX
            .get(i)
            .map(|(name, p)| (name.to_string(), format!("{p:.2}")))
            .unwrap_or_else(|| (tree.label(cat).to_string(), "-".to_string()));
        table.row(vec![paper.0, paper.1, format!("{:.2}", per_top[i] / total * 100.0)]);
    }
    println!("Table I — CCD customer call mix (paper vs synthetic, {weeks} weeks)\n");
    println!("{table}");
}
