//! `bench_route` — admission overhead of the routing tier.
//!
//! Measures the price of putting `tiresias route` in front of the
//! ingest path: the same NOACK workload is driven once **directly**
//! into a single in-process `tiresias-server`, and once **routed**
//! through an in-process `Router` consistent-hashing top-level labels
//! over two downstream servers. Both walls run until every record is
//! *admitted* (the `STATS records=` gauge reaches the pushed total),
//! so the routed figure includes the full store-and-forward hop:
//! session batching, per-batch label partitioning, bulk-connection
//! forwarding, and the downstream nodes' own admission.
//!
//! The direct server runs 2 detector shards; each routed node runs 1 —
//! the same total detector work, so the delta is attributable to the
//! network hop and the router's partitioning, not to detector
//! parallelism. Label-to-node grouping is detection-invariant (see
//! `tests/sharded_invariance.rs`), so both topologies also admit
//! byte-identical anomaly streams.
//!
//! Each mode runs [`REPS`] times on fresh servers, interleaved so host
//! noise lands on both modes alike, and the report keeps the best wall
//! per mode — on a small shared host the walls are tens of
//! milliseconds, and best-of-N is the standard way to measure cost
//! rather than scheduler luck (`wall_seconds_reps` records the spread).
//!
//! CI gates the overhead: `perf_guard BENCH_route.json <fresh>
//! direct.records_per_sec 30 routed.records_per_sec` fails the build
//! when routed admission falls more than 30% below direct admission
//! *of the same run* — the routing tier must stay a thin layer.
//!
//! Both topologies are additionally measured over **binary wire
//! protocol v2** (`direct_bin` / `routed_bin`): clients `UPGRADE`
//! after `NOACK`, and the router's frame fast path decodes each DATA
//! frame once, partitions records per node at dictionary-intern time,
//! and re-frames per downstream connection without a text round trip
//! (`overhead_bin_pct` is the binary hop's price).
//!
//! Writes the JSON report to the path given as the first argument,
//! default `BENCH_route.json`, and prints it to stdout.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use serde::Serialize;
use tiresias_core::TiresiasBuilder;
use tiresias_server::protocol::v2;
use tiresias_server::{Router, RouterConfig, Server, ServerConfig};

const TIMEUNIT: u64 = 900;
const UNITS: u64 = 16;
const CATEGORIES: u64 = 24;
const RECORDS_PER_UNIT_PER_CATEGORY: u64 = 1_200;
const CLIENTS: usize = 2;
/// Repetitions per mode, interleaved direct/routed to spread host
/// noise fairly; each rep gets fresh servers and the report keeps the
/// best wall per mode (the run least disturbed by the host).
const REPS: usize = 5;
/// Generous grace window: the bench replays historical timestamps much
/// faster than real time, so the window must absorb cross-client and
/// router-forwarding skew or stragglers would be dropped as late.
const GRACE_MS: u64 = 3_000;

fn builder(shards: usize) -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(96)
        .threshold(10.0)
        .season_length(4)
        .sensitivity(2.8, 8.0)
        .warmup_units(8)
        .shards(shards)
}

fn server_config(shards: usize) -> ServerConfig {
    let mut config = ServerConfig::new(builder(shards));
    config.grace = Duration::from_millis(GRACE_MS);
    config.tick = Duration::from_millis(20);
    config
}

/// The workload as `(label, timestamp)` records, chunked
/// `records[client][unit]`: records dealt round-robin within each unit
/// so client streams interleave mid-unit, clients advancing through
/// units in lockstep (a barrier in the driver).
#[allow(clippy::type_complexity)]
fn client_records(clients: usize) -> (usize, Vec<Vec<Vec<(String, u64)>>>) {
    let mut total = 0usize;
    let mut records = vec![vec![Vec::new(); UNITS as usize]; clients];
    for u in 0..UNITS {
        let mut i_in_unit = 0usize;
        for c in 0..CATEGORIES {
            for i in 0..RECORDS_PER_UNIT_PER_CATEGORY {
                let t = u * TIMEUNIT + (i % TIMEUNIT);
                records[i_in_unit % clients][u as usize]
                    .push((format!("region-{c}/pop-{}/service 42", c % 7), t));
                i_in_unit += 1;
                total += 1;
            }
        }
    }
    (total, records)
}

/// One unit's pre-encoded wire traffic for one client: the bytes to
/// write (records plus the trailing fence) and the expected fence
/// reply.
struct UnitChunk {
    bytes: Vec<u8>,
    fence: String,
}

/// The workload as text `PUSH` lines with a `PING` fence per unit.
fn text_chunks(records: &[Vec<Vec<(String, u64)>>]) -> Vec<Vec<UnitChunk>> {
    records
        .iter()
        .map(|units| {
            units
                .iter()
                .map(|unit| {
                    let mut s = String::new();
                    for (label, t) in unit {
                        s.push_str(&format!("PUSH {label} {t}\n"));
                    }
                    s.push_str("PING\n");
                    UnitChunk { bytes: s.into_bytes(), fence: "PONG".to_string() }
                })
                .collect()
        })
        .collect()
}

/// The same workload as v2 binary frames: one DATA frame per unit per
/// client (per-client dictionary), fenced by a PING frame.
fn binary_chunks(records: &[Vec<Vec<(String, u64)>>]) -> Vec<Vec<UnitChunk>> {
    records
        .iter()
        .map(|units| {
            let mut enc = v2::FrameEncoder::new();
            units
                .iter()
                .enumerate()
                .map(|(u, unit)| {
                    let mut bytes = Vec::new();
                    let seq = 2 * u as u32;
                    enc.encode_data(seq, unit, &mut bytes);
                    bytes.extend_from_slice(&v2::control_frame(v2::FrameKind::Ping, seq + 1));
                    UnitChunk { bytes, fence: format!("PONG frame={}", seq + 1) }
                })
                .collect()
        })
        .collect()
}

/// Reads one `STATS` line from `addr` (skipping any stray frames).
fn stats_line(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("stats connects");
    stream.write_all(b"STATS\nQUIT\n").expect("stats request");
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.expect("stats reply reads");
        if line.starts_with("STATS ") {
            return line;
        }
    }
    panic!("connection closed before a STATS line");
}

fn stat_field(stats: &str, key: &str) -> u64 {
    stats
        .split_whitespace()
        .find_map(|field| field.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
        .unwrap_or_else(|| panic!("{key}= missing from {stats}"))
        .parse()
        .unwrap_or_else(|_| panic!("{key}= not a number in {stats}"))
}

/// Polls `STATS` on `addr` until `records=` reaches `total` (60 s
/// deadline) and returns the final line.
fn wait_admitted(addr: SocketAddr, total: usize) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = stats_line(addr);
        let records = stat_field(&stats, "records");
        if records == total as u64 {
            return stats;
        }
        assert!(records < total as u64, "more records admitted than pushed: {stats}");
        assert!(Instant::now() < deadline, "admission stalled at {records}/{total}: {stats}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Drives the NOACK workload at `addr` — text lines or v2 binary
/// frames per `binary` — and returns (wall seconds until every record
/// is admitted, final `STATS` line).
fn drive(
    addr: SocketAddr,
    payloads: &[Vec<UnitChunk>],
    total: usize,
    binary: bool,
) -> (f64, String) {
    let t0 = Instant::now();
    let unit_barrier = std::sync::Barrier::new(payloads.len());
    std::thread::scope(|scope| {
        for chunks in payloads {
            let unit_barrier = &unit_barrier;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("client connects");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clones"));
                let mut line = String::new();
                stream.write_all(b"NOACK\n").expect("noack");
                reader.read_line(&mut line).expect("noack ok");
                assert_eq!(line.trim_end(), "OK");
                if binary {
                    stream.write_all(b"UPGRADE\n").expect("upgrade");
                    line.clear();
                    reader.read_line(&mut line).expect("upgrade ok");
                    assert_eq!(line.trim_end(), "OK upgraded");
                }
                for chunk in chunks {
                    // One unit ending in a PING fence: the endpoint has
                    // read everything before the PING once the fence
                    // reply arrives, so the barrier keeps client
                    // positions aligned to within one unit. In NOACK
                    // mode the fence is the only expected reply — a
                    // LATE means skew outran the grace window and the
                    // measurement is void.
                    stream.write_all(&chunk.bytes).expect("pushes");
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => panic!("endpoint hung up mid-unit"),
                        Ok(_) => {
                            assert_eq!(line.trim_end(), chunk.fence, "unexpected NOACK reply");
                        }
                    }
                    unit_barrier.wait();
                }
                if !binary {
                    stream.write_all(b"QUIT\n").expect("quit");
                }
            });
        }
    });
    let stats = wait_admitted(addr, total);
    (t0.elapsed().as_secs_f64(), stats)
}

#[derive(Debug, Serialize)]
struct ModeReport {
    clients: usize,
    records: usize,
    /// Best (smallest) wall across the reps; the headline figure.
    wall_seconds: f64,
    records_per_sec: f64,
    /// Every rep's wall, in run order — the measurement spread.
    wall_seconds_reps: Vec<f64>,
    stats: String,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    generated_by: String,
    host_cores: usize,
    config: ConfigReport,
    /// NOACK admission straight into one 2-shard server.
    direct: ModeReport,
    /// The same workload through `Router` over two 1-shard servers.
    routed: ModeReport,
    /// The workload over binary wire protocol v2 straight into the
    /// 2-shard server.
    direct_bin: ModeReport,
    /// The v2 workload through the router's frame fast path: decoded
    /// once, partitioned per label, re-framed per node without a text
    /// round trip.
    routed_bin: ModeReport,
    /// Throughput drop of `routed` relative to `direct`, percent
    /// (positive = the routing hop cost something). CI gates ≤ 30.
    overhead_pct: f64,
    /// Throughput drop of `routed_bin` relative to `direct_bin`,
    /// percent — the routing hop's price on the binary path.
    overhead_bin_pct: f64,
    clean_shutdown: bool,
}

#[derive(Debug, Serialize)]
struct ConfigReport {
    nodes: usize,
    timeunit_secs: u64,
    units: u64,
    categories: u64,
    grace_ms: u64,
}

fn run_direct(payloads: &[Vec<UnitChunk>], total: usize, binary: bool) -> (f64, String) {
    let server = Server::start(server_config(2)).expect("server starts");
    let (wall, stats) = drive(server.local_addr(), payloads, total, binary);
    let mut control = TcpStream::connect(server.local_addr()).expect("control connects");
    control.write_all(b"SHUTDOWN\n").expect("shutdown");
    server.join().expect("clean shutdown");
    (wall, stats)
}

fn run_routed(payloads: &[Vec<UnitChunk>], total: usize, binary: bool) -> (f64, String) {
    let node_a = Server::start(server_config(1)).expect("node a starts");
    let node_b = Server::start(server_config(1)).expect("node b starts");
    let mut config =
        RouterConfig::new(vec![node_a.local_addr().to_string(), node_b.local_addr().to_string()]);
    config.probe_interval = Duration::from_millis(100);
    let router = Router::start(config).expect("router starts");
    let addr = router.local_addr();

    // Don't measure the initial probe: wait until both nodes are up.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = stats_line(addr);
        if stats.matches(":up").count() == 2 {
            break;
        }
        assert!(Instant::now() < deadline, "nodes never came up: {stats}");
        std::thread::sleep(Duration::from_millis(20));
    }

    let (wall, stats) = drive(addr, payloads, total, binary);
    assert_eq!(stat_field(&stats, "buffered"), 0, "nothing parked in a healthy run: {stats}");
    let mut control = TcpStream::connect(addr).expect("control connects");
    control.write_all(b"SHUTDOWN\n").expect("shutdown");
    router.join();
    for node in [node_a, node_b] {
        node.shutdown();
        node.join().expect("node clean shutdown");
    }
    (wall, stats)
}

/// Folds the per-rep `(wall, stats)` runs into the mode's report,
/// keeping the stats line of the best (smallest-wall) rep.
fn best_of(runs: Vec<(f64, String)>, clients: usize, total: usize) -> ModeReport {
    let walls: Vec<f64> = runs.iter().map(|(w, _)| *w).collect();
    let (wall, stats) = runs
        .into_iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("walls are finite"))
        .expect("at least one rep");
    ModeReport {
        clients,
        records: total,
        wall_seconds: wall,
        records_per_sec: total as f64 / wall,
        wall_seconds_reps: walls,
        stats,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_route.json".to_string());
    let (total, records) = client_records(CLIENTS);
    let payloads = text_chunks(&records);
    let bin_payloads = binary_chunks(&records);

    let mut direct_runs = Vec::new();
    let mut routed_runs = Vec::new();
    let mut direct_bin_runs = Vec::new();
    let mut routed_bin_runs = Vec::new();
    for rep in 0..REPS {
        direct_runs.push(run_direct(&payloads, total, false));
        routed_runs.push(run_routed(&payloads, total, false));
        direct_bin_runs.push(run_direct(&bin_payloads, total, true));
        routed_bin_runs.push(run_routed(&bin_payloads, total, true));
        eprintln!(
            "rep {}/{REPS}: direct {:.3}s routed {:.3}s direct_bin {:.3}s routed_bin {:.3}s",
            rep + 1,
            direct_runs[rep].0,
            routed_runs[rep].0,
            direct_bin_runs[rep].0,
            routed_bin_runs[rep].0
        );
    }
    let direct = best_of(direct_runs, CLIENTS, total);
    let routed = best_of(routed_runs, CLIENTS, total);
    let direct_bin = best_of(direct_bin_runs, CLIENTS, total);
    let routed_bin = best_of(routed_bin_runs, CLIENTS, total);
    let overhead_pct = (1.0 - routed.records_per_sec / direct.records_per_sec) * 100.0;
    let overhead_bin_pct = (1.0 - routed_bin.records_per_sec / direct_bin.records_per_sec) * 100.0;

    let report = Report {
        schema: "tiresias-bench-route/v2".to_string(),
        generated_by: "cargo run --release -p tiresias-bench --bin bench_route".to_string(),
        host_cores: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        config: ConfigReport {
            nodes: 2,
            timeunit_secs: TIMEUNIT,
            units: UNITS,
            categories: CATEGORIES,
            grace_ms: GRACE_MS,
        },
        direct,
        routed,
        direct_bin,
        routed_bin,
        overhead_pct,
        overhead_bin_pct,
        clean_shutdown: true,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report file");
    println!("{json}");
}
