//! §VII-A SCD prose results: runtime, memory and series-accuracy deltas
//! of ADA vs STA on the set-top-box crash workload.

use tiresias_bench::compare::{compare_ada_sta, CompareConfig};
use tiresias_bench::fmt::pct;
use tiresias_bench::perf::{memory_sweep, run_perf, PerfConfig};
use tiresias_bench::scenarios::scd_workload;
use tiresias_hhh::ModelSpec;

fn main() {
    // A larger hierarchy than CCD trouble (the paper's SCD tree is the
    // biggest of the three), scaled to stay laptop-friendly.
    let workload = scd_workload(0.02, 500.0, 121);
    println!("SCD summary (§VII-A prose) — tree of {} nodes\n", workload.tree().len());

    let model = ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 96 };
    let perf_cfg = PerfConfig {
        theta: 10.0,
        ell: 192,
        warmup: 96,
        instances: 96,
        model: model.clone(),
        coarsen: 1,
        ref_levels: 1,
    };
    let perf = run_perf(&workload, &perf_cfg);
    println!(
        "runtime: ADA compute {:.3}s, STA compute {:.3}s → {:.1}x speedup ({:.1}x incl. reading)",
        perf.ada.total().as_secs_f64(),
        perf.sta.total().as_secs_f64(),
        perf.speedup_compute(),
        perf.speedup_total()
    );

    let (ada_mem, sta_mem) = memory_sweep(&workload, &perf_cfg, &[0, 1]);
    for (h, r) in &ada_mem {
        println!(
            "memory: ADA h={h} uses {:.0}% of STA ({} vs {} cells)",
            r.total_cells() as f64 / sta_mem.total_cells().max(1) as f64 * 100.0,
            r.total_cells(),
            sta_mem.total_cells()
        );
    }

    let cmp = compare_ada_sta(
        &workload,
        &CompareConfig {
            theta: 10.0,
            ell: 192,
            warmup: 96,
            instances: 96,
            model,
            rule: tiresias_hhh::SplitRule::LongTermHistory,
            ref_levels: 1,
            rt: 2.8,
            dt: 8.0,
        },
    );
    println!(
        "series error with h=1: {} (paper reports ~0.8%); detection accuracy {} (paper: no FPs, ~0.13% FNs)",
        pct(cmp.mean_rel_error),
        pct(cmp.confusion.accuracy())
    );
    println!("heavy hitter sets matched STA at every instance: {}", cmp.membership_matched);
    println!("\nPaper shape: SCD's lower variance means fewer splits, so ADA is even");
    println!("closer to exact here than on CCD, while STA slows with the bigger tree.");
}
