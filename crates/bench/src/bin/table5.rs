//! Table V — anomaly detection accuracy of ADA, with STA as ground
//! truth, across split rules and reference depths.

use tiresias_bench::compare::{compare_ada_sta, CompareConfig};
use tiresias_bench::fmt::{pct, Table};
use tiresias_bench::scenarios::ccd_trouble_workload;
use tiresias_hhh::{ModelSpec, SplitRule};

fn main() {
    let workload = ccd_trouble_workload(1.0, 300.0, 101);
    let base = CompareConfig {
        theta: 10.0,
        ell: 192,
        warmup: 96,
        instances: 100,
        model: ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 96 },
        rule: SplitRule::LongTermHistory,
        ref_levels: 2,
        rt: 2.8,
        dt: 8.0,
    };
    let configs: Vec<(String, CompareConfig)> = vec![
        ("Long-Term-History h=0".into(), CompareConfig { ref_levels: 0, ..base.clone() }),
        ("Long-Term-History h=1".into(), CompareConfig { ref_levels: 1, ..base.clone() }),
        ("Long-Term-History h=2".into(), base.clone()),
        (
            "EWMA (rate=0.8) h=2".into(),
            CompareConfig { rule: SplitRule::Ewma { alpha: 0.8 }, ..base.clone() },
        ),
        (
            "EWMA (rate=0.6) h=2".into(),
            CompareConfig { rule: SplitRule::Ewma { alpha: 0.6 }, ..base.clone() },
        ),
        (
            "EWMA (rate=0.4) h=2".into(),
            CompareConfig { rule: SplitRule::Ewma { alpha: 0.4 }, ..base.clone() },
        ),
        (
            "Last-Time-Unit h=2".into(),
            CompareConfig { rule: SplitRule::LastTimeUnit, ..base.clone() },
        ),
        ("Uniform h=2".into(), CompareConfig { rule: SplitRule::Uniform, ..base.clone() }),
    ];

    println!(
        "Table V — ADA anomaly detection vs STA ground truth ({} instances, CCD)\n",
        base.instances
    );
    let mut table = Table::new(vec!["Split rule", "Accuracy", "Precision", "Recall", "Cases"]);
    for (label, cfg) in configs {
        let r = compare_ada_sta(&workload, &cfg);
        table.row(vec![
            label,
            pct(r.confusion.accuracy()),
            pct(r.confusion.precision()),
            pct(r.confusion.recall()),
            r.confusion.total().to_string(),
        ]);
    }
    println!("{table}");
    println!("Paper shape: ~99.7% accuracy; EWMA(0.4) best precision, Uniform best recall,");
    println!("Long-Term-History good on all metrics; accuracy rises with h.");
}
