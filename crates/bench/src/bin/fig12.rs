//! Fig. 12 — mean absolute time-series error of ADA against the STA
//! ground truth, per split rule and reference depth h: (a) by timeunit
//! offset, (b) by hierarchy depth.

use tiresias_bench::compare::{compare_ada_sta, CompareConfig};
use tiresias_bench::fmt::{pct, Table};
use tiresias_bench::scenarios::ccd_trouble_workload;
use tiresias_hhh::{ModelSpec, SplitRule};

fn main() {
    let workload = ccd_trouble_workload(1.0, 300.0, 71);
    let base = CompareConfig {
        theta: 10.0,
        ell: 192,
        warmup: 96,
        instances: 96,
        model: ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 96 },
        rule: SplitRule::LongTermHistory,
        ref_levels: 2,
        rt: 2.8,
        dt: 8.0,
    };

    let configs: Vec<(String, CompareConfig)> = vec![
        (
            "Long-Term-History; h=0".into(),
            CompareConfig { rule: SplitRule::LongTermHistory, ref_levels: 0, ..base.clone() },
        ),
        (
            "Long-Term-History; h=1".into(),
            CompareConfig { rule: SplitRule::LongTermHistory, ref_levels: 1, ..base.clone() },
        ),
        (
            "Long-Term-History; h=2".into(),
            CompareConfig { rule: SplitRule::LongTermHistory, ref_levels: 2, ..base.clone() },
        ),
        (
            "EWMA a=0.8; h=2".into(),
            CompareConfig { rule: SplitRule::Ewma { alpha: 0.8 }, ..base.clone() },
        ),
        (
            "EWMA a=0.4; h=2".into(),
            CompareConfig { rule: SplitRule::Ewma { alpha: 0.4 }, ..base.clone() },
        ),
        (
            "Last-Time-Unit; h=2".into(),
            CompareConfig { rule: SplitRule::LastTimeUnit, ..base.clone() },
        ),
        ("Uniform; h=2".into(), CompareConfig { rule: SplitRule::Uniform, ..base.clone() }),
    ];

    println!(
        "Fig. 12 — ADA time-series error vs STA ground truth (CCD, {} instances)\n",
        base.instances
    );
    let mut results = Vec::new();
    for (label, cfg) in &configs {
        let r = compare_ada_sta(&workload, cfg);
        println!(
            "{label:<26} mean error {:>7}   heavy hitter sets matched: {}",
            pct(r.mean_rel_error),
            r.membership_matched
        );
        results.push((label.clone(), r));
    }

    println!("\n(a) error by timeunit offset (0 = most recent)\n");
    let mut ta = Table::new(vec![
        "offset", "LTH h=0", "LTH h=1", "LTH h=2", "EWMA.8", "EWMA.4", "LTU", "Uniform",
    ]);
    for offset in [0usize, 2, 5, 10, 20, 40] {
        let mut row = vec![offset.to_string()];
        for (_, r) in &results {
            row.push(pct(r.err_by_offset.get(offset).copied().unwrap_or(0.0)));
        }
        ta.row(row);
    }
    println!("{ta}");

    println!("(b) error by hierarchy depth\n");
    let depths = results[0].1.err_by_depth.len();
    let mut tb = Table::new(vec![
        "depth", "LTH h=0", "LTH h=1", "LTH h=2", "EWMA.8", "EWMA.4", "LTU", "Uniform",
    ]);
    for d in 0..depths {
        let mut row = vec![d.to_string()];
        for (_, r) in &results {
            row.push(pct(r.err_by_depth[d]));
        }
        tb.row(row);
    }
    println!("{tb}");
    println!("Paper shape: h=2 brings the error to ~1%; Long-Term-History is slightly best; errors are stable across offsets.");
}
