//! Table IV — normalized memory costs of STA vs ADA with h = 0, 1, 2
//! levels of reference time series.

use tiresias_bench::fmt::Table;
use tiresias_bench::perf::{memory_sweep, PerfConfig};
use tiresias_bench::scenarios::ccd_trouble_workload;
use tiresias_hhh::ModelSpec;

fn main() {
    let workload = ccd_trouble_workload(1.0, 300.0, 91);
    let cfg = PerfConfig {
        theta: 10.0,
        ell: 288,
        warmup: 192,
        instances: 192,
        model: ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 96 },
        coarsen: 1,
        ref_levels: 2,
    };
    let (ada_reports, sta_report) = memory_sweep(&workload, &cfg, &[0, 1, 2]);

    println!("Table IV — normalized memory cost (cells / tree node)\n");
    let mut table = Table::new(vec!["Algorithm", "ref levels (h)", "Normalized space", "vs STA"]);
    table.row(vec![
        "STA".into(),
        "N/A".into(),
        format!("{:.1}", sta_report.normalized()),
        "100%".into(),
    ]);
    for (h, report) in &ada_reports {
        table.row(vec![
            "ADA".into(),
            h.to_string(),
            format!("{:.1}", report.normalized()),
            format!(
                "{:.0}%",
                report.total_cells() as f64 / sta_report.total_cells().max(1) as f64 * 100.0
            ),
        ]);
    }
    println!("{table}");
    println!(
        "breakdown STA: {} history cells, {} series cells over {} nodes",
        sta_report.history_cells, sta_report.series_cells, sta_report.tree_nodes
    );
    for (h, r) in &ada_reports {
        println!(
            "breakdown ADA h={h}: {} series cells, {} reference cells",
            r.series_cells, r.reference_cells
        );
    }
    println!(
        "\nPaper shape: ADA needs ~36% of STA's space, rising to ~43% with two reference levels."
    );
}
