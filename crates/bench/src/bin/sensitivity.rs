//! Sensitivity test of the detection thresholds RT / DT and the heavy
//! hitter threshold θ — the paper selects RT = 2.8, DT = 8 "by
//! sensitivity test" (§VII); this sweep reproduces the trade-off curve
//! against injected ground truth.

use tiresias_bench::fmt::{pct, Table};
use tiresias_bench::practice::{inject_schedule, run_practice, PracticeConfig};
use tiresias_bench::scenarios::ccd_location_workload;
use tiresias_core::ControlChartConfig;
use tiresias_hhh::ModelSpec;

fn config(rt: f64, dt: f64, theta: f64) -> PracticeConfig {
    PracticeConfig {
        theta,
        ell: 192,
        warmup: 144,
        instances: 384,
        model: ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 96 },
        rt,
        dt,
        chart: ControlChartConfig { level: 1, window: 96, k: 3.0, min_samples: 48 },
    }
}

fn main() {
    println!("Sensitivity sweep — RT / DT / theta against injected ground truth\n");

    let make_workload = |seed: u64| {
        let mut w = ccd_location_workload(0.1, 300.0, seed);
        inject_schedule(&mut w, 16, 168, 500, 500.0, seed + 1);
        w
    };

    println!("(a) RT sweep (DT = 8, theta = 10)\n");
    let mut ta = Table::new(vec!["RT", "recall", "false alarms", "alarms total"]);
    for rt in [1.5, 2.0, 2.8, 4.0, 6.0] {
        let w = make_workload(141);
        let r = run_practice(&w, &config(rt, 8.0, 10.0));
        ta.row(vec![
            format!("{rt}"),
            pct(r.tiresias_truth.recall()),
            r.tiresias_truth.false_positives.to_string(),
            r.n_tiresias.to_string(),
        ]);
    }
    println!("{ta}");

    println!("(b) DT sweep (RT = 2.8, theta = 10)\n");
    let mut tb = Table::new(vec!["DT", "recall", "false alarms", "alarms total"]);
    for dt in [2.0, 4.0, 8.0, 16.0, 32.0] {
        let w = make_workload(142);
        let r = run_practice(&w, &config(2.8, dt, 10.0));
        tb.row(vec![
            format!("{dt}"),
            pct(r.tiresias_truth.recall()),
            r.tiresias_truth.false_positives.to_string(),
            r.n_tiresias.to_string(),
        ]);
    }
    println!("{tb}");

    println!("(c) theta sweep (RT = 2.8, DT = 8)\n");
    let mut tc = Table::new(vec!["theta", "recall", "false alarms", "alarms total"]);
    for theta in [5.0, 10.0, 20.0, 40.0] {
        let w = make_workload(143);
        let r = run_practice(&w, &config(2.8, 8.0, theta));
        tc.row(vec![
            format!("{theta}"),
            pct(r.tiresias_truth.recall()),
            r.tiresias_truth.false_positives.to_string(),
            r.n_tiresias.to_string(),
        ]);
    }
    println!("{tc}");
    println!("Expected shape: lower thresholds raise recall and false alarms together;");
    println!("the paper's (RT=2.8, DT=8) sits at the knee. A small theta keeps deep,");
    println!("sparse anomalies coverable without flooding the tracker.");
}
