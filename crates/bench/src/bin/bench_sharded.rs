//! `bench_sharded` — scaling curve of the sharded ingest engine.
//!
//! Streams one synthetic CCD network-location workload (wide first
//! level, the natural sharding axis) through `ShardedTiresias` at 1, 2,
//! 4 and 8 shards plus the unsharded `Tiresias` baseline, and reports:
//!
//! * **wall-clock** records/sec of the threaded engine on this host,
//! * **modeled** records/sec from the per-shard busy times of a
//!   deterministic sequential replay — `records / max(router_busy,
//!   max(shard_busy))`, the critical-path wall-clock an N-core host
//!   achieves (on the single-core CI container the threads merely
//!   timeslice, so the wall numbers cannot show scaling; the modeled
//!   numbers are measured per-shard cost, not extrapolation — see
//!   `host_cores` in the report and the README discussion),
//! * the headline `speedup` per shard count = modeled 1-shard time /
//!   modeled N-shard time,
//! * a batch-size sweep at 4 shards (amortisation of routing + ring
//!   synchronisation + scoped-thread spawn),
//! * `outputs_identical`: every shard count produced byte-identical
//!   heavy hitter paths, merged event streams and shard-tree unions
//!   (asserted, and additionally compared against the unsharded
//!   detector's level ≥ 1 output).
//!
//! Writes the JSON report (schema documented in the repository README)
//! to the path given as the first argument, default
//! `BENCH_sharded.json`, and prints it to stdout.

use std::time::Instant;

use serde::Serialize;
use tiresias_bench::scenarios::{ccd_location_workload, ccd_location_workload_skewed};
use tiresias_core::{RebalanceConfig, ShardedTiresias, TiresiasBuilder};

const UNITS: u64 = 48;
const BASE_RATE: f64 = 4000.0;
const SCALE: f64 = 1.0;
const SEED: u64 = 42;
const TIMEUNIT_SECS: u64 = 900;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH_RECORDS: usize = 16384;
const BATCH_SWEEP: [usize; 4] = [1024, 4096, 16384, 65536];
/// Measurement repetitions per configuration; the minimum is reported
/// (scheduling noise on a shared host is strictly additive).
const REPS: usize = 3;
/// Top-level Zipf exponent of the skewed variant (the `--zipf-s` knob):
/// the hottest VHO carries ~29% of all traffic — under the 1/SHARDS
/// ceiling, so a perfect reassignment can still even the shards out.
const SKEW_ZIPF_S: f64 = 0.9;
/// Tree scale of the skewed variant: 0.2 gives 12 VHO labels, enough
/// for the greedy planner to mix hot and cold labels per shard but few
/// enough that per-label close-out overhead (tracker iteration at every
/// epoch barrier) does not drown the per-record cost being balanced.
const SKEW_SCALE: f64 = 0.2;
/// Per-tree base rate of the skewed variant; high so busy time is
/// dominated by per-record work, which is what label moves redistribute.
const SKEW_BASE_RATE: f64 = 20000.0;
/// Workload seed of the skewed variant, chosen so the hash-routed
/// baseline is genuinely pathological: the hot VHOs collide onto one
/// shard (~69% of records), the failure mode rebalancing exists for.
const SKEW_SEED: u64 = 3;
/// Shard count of the skewed static-vs-adaptive comparison (the CI
/// busy-ratio gate runs at this count).
const SKEW_SHARDS: usize = 4;
/// Worst/mean load threshold handed to the rebalancer.
const SKEW_THRESHOLD: f64 = 1.15;
/// Repetitions of the skewed comparison. Higher than the sweep's
/// `REPS`: the CI gate rides on the busy *ratio*, whose scheduling
/// noise shrinks with the minimum over more repetitions.
const SKEW_REPS: usize = 5;

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT_SECS)
        .window_len(96)
        .threshold(10.0)
        .season_length(24)
        .sensitivity(2.8, 8.0)
        .warmup_units(8)
        .ref_levels(2)
        .root_label("SHO")
}

#[derive(Debug, Serialize)]
struct WorkloadInfo {
    units: u64,
    records: usize,
    top_level_labels: usize,
    tree_nodes: usize,
    base_rate: f64,
    scale: f64,
    timeunit_secs: u64,
    seed: u64,
    batch_records: usize,
}

#[derive(Debug, Serialize)]
struct ShardReport {
    shards: usize,
    /// Threaded engine, wall clock on this host.
    wall_seconds: f64,
    wall_records_per_sec: f64,
    /// Sequential replay, per-shard busy time (seconds).
    router_seconds: f64,
    shard_busy_seconds: Vec<f64>,
    /// `max(router_seconds, max(shard_busy_seconds))` — the wall-clock
    /// an N-core host achieves for the same batch stream.
    critical_path_seconds: f64,
    records_per_sec: f64,
    /// critical_path(1 shard) / critical_path(this).
    speedup: f64,
    /// Wall-clock speedup on this host (≈ 1 on a single core).
    wall_speedup: f64,
    /// Worst-shard / mean-shard busy seconds (1.0 = perfectly
    /// balanced; the pipeline waits on the worst shard).
    busy_ratio: f64,
    anomalies: usize,
    heavy_hitters: usize,
}

#[derive(Debug, Serialize)]
struct BatchSweepPoint {
    batch_records: usize,
    wall_seconds: f64,
    wall_records_per_sec: f64,
}

/// One routing mode of the skewed-workload comparison.
#[derive(Debug, Serialize)]
struct SkewedVariant {
    busy_ratio: f64,
    critical_path_seconds: f64,
    records_per_sec: f64,
}

/// Static vs adaptive routing on the Zipfian workload: same records,
/// same shard count, byte-identical output — only the balance and the
/// critical path differ.
#[derive(Debug, Serialize)]
struct SkewedReport {
    zipf_s: f64,
    records: usize,
    shards: usize,
    balance_threshold: f64,
    static_routing: SkewedVariant,
    adaptive: SkewedVariant,
    rebalances: u64,
    pinned_labels: usize,
    outputs_identical: bool,
    level1_matches_unsharded: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    generated_by: String,
    host_cores: usize,
    speedup_model: String,
    workload: WorkloadInfo,
    baseline_unsharded: BaselineReport,
    shard_counts: Vec<ShardReport>,
    /// Uniform-workload critical-path throughput at 4 shards, hoisted
    /// out of `shard_counts` for the CI regression gate.
    critical_path_records_per_sec_4_shards: f64,
    /// Uniform-workload critical-path speedup at 4 shards, hoisted for
    /// the CI regression gate: a same-run ratio, so host-speed noise
    /// cancels where the absolute records/sec above swings ~30%
    /// between container runs.
    critical_path_speedup_4_shards: f64,
    batch_sweep_at_4_shards: Vec<BatchSweepPoint>,
    skewed: SkewedReport,
    outputs_identical: bool,
    level1_matches_unsharded: bool,
}

#[derive(Debug, Serialize)]
struct BaselineReport {
    seconds: f64,
    records_per_sec: f64,
    anomalies: usize,
}

/// The grouping-independent fingerprint of an engine's output.
fn fingerprint(engine: &ShardedTiresias) -> (String, Vec<String>, Vec<String>) {
    let store = serde_json::to_string(engine.store()).expect("store serialises");
    let hh: Vec<String> = engine.heavy_hitter_paths().iter().map(|p| p.to_string()).collect();
    let trees: Vec<String> = engine.tree_paths().iter().map(|p| p.to_string()).collect();
    (store, hh, trees)
}

fn run_threaded(
    shards: usize,
    records: &[(String, u64)],
    batch: usize,
    end_secs: u64,
) -> (f64, ShardedTiresias) {
    let mut engine = builder().shards(shards).build_sharded().expect("static config is valid");
    let t0 = Instant::now();
    for chunk in records.chunks(batch) {
        engine.push_batch(chunk).expect("in-order stream");
    }
    engine.advance_to(end_secs).expect("close last unit");
    (t0.elapsed().as_secs_f64(), engine)
}

fn run_sequential(shards: usize, records: &[(String, u64)], end_secs: u64) -> ShardedTiresias {
    run_sequential_with(shards, records, end_secs, RebalanceConfig::default())
}

fn run_sequential_with(
    shards: usize,
    records: &[(String, u64)],
    end_secs: u64,
    rebalance: RebalanceConfig,
) -> ShardedTiresias {
    let mut engine = builder().shards(shards).build_sharded().expect("static config is valid");
    engine.set_threaded(false);
    engine.set_rebalance(rebalance);
    for chunk in records.chunks(BATCH_RECORDS) {
        engine.push_batch(chunk).expect("in-order stream");
    }
    engine.advance_to(end_secs).expect("close last unit");
    engine
}

/// Worst-shard / mean-shard busy seconds of a finished replay.
fn busy_ratio(engine: &ShardedTiresias) -> f64 {
    let busy: Vec<f64> = engine.shard_busy().iter().map(|d| d.as_secs_f64()).collect();
    let worst = busy.iter().cloned().fold(0.0, f64::max);
    worst / (busy.iter().sum::<f64>() / busy.len() as f64)
}

/// Critical-path seconds of a finished sequential replay.
fn critical_path(engine: &ShardedTiresias) -> f64 {
    let router = engine.router_busy().as_secs_f64();
    engine.shard_busy().iter().map(|d| d.as_secs_f64()).fold(router, f64::max)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sharded.json".to_string());

    // Pre-render the record stream; rendering cost is excluded from
    // every measurement.
    let workload = ccd_location_workload(SCALE, BASE_RATE, SEED);
    let tree = workload.tree();
    let mut records: Vec<(String, u64)> = Vec::new();
    for unit in 0..UNITS {
        for (node, t) in workload.generate_records(unit) {
            records.push((tree.path_of(node).to_string(), t));
        }
    }
    let end_secs = UNITS * TIMEUNIT_SECS;
    eprintln!(
        "streaming {} records over {UNITS} units ({} top-level labels) at shard counts {SHARD_COUNTS:?}…",
        records.len(),
        tree.children(tree.root()).len(),
    );

    // Unsharded baseline: the plain detector over the same stream.
    let mut baseline_secs = f64::INFINITY;
    let mut baseline = builder().build().expect("static config is valid");
    for _ in 0..REPS {
        let mut run = builder().build().expect("static config is valid");
        let t0 = Instant::now();
        for chunk in records.chunks(BATCH_RECORDS) {
            run.push_batch(chunk).expect("in-order stream");
        }
        run.advance_to(end_secs).expect("close last unit");
        baseline_secs = baseline_secs.min(t0.elapsed().as_secs_f64());
        baseline = run;
    }

    // Shard-count sweep: threaded for wall clock, sequential replay for
    // per-shard busy accounting. Outputs are asserted identical.
    let mut shard_reports = Vec::new();
    let mut reference: Option<(String, Vec<String>, Vec<String>)> = None;
    let mut outputs_identical = true;
    let mut wall_1 = 0.0;
    let mut critical_1 = 0.0;
    let mut one_shard_events: Vec<(String, u64)> = Vec::new();
    for &n in &SHARD_COUNTS {
        let mut wall = f64::INFINITY;
        let mut router_seconds = f64::INFINITY;
        let mut shard_busy_seconds: Vec<f64> = vec![f64::INFINITY; n];
        let mut critical_path_seconds = f64::INFINITY;
        let mut ratio = f64::INFINITY;
        let mut threaded = None;
        for _ in 0..REPS {
            let (w, engine) = run_threaded(n, &records, BATCH_RECORDS, end_secs);
            wall = wall.min(w);
            let sequential = run_sequential(n, &records, end_secs);
            if let Some(t) = &threaded {
                assert_eq!(fingerprint(t), fingerprint(&sequential), "{n}-shard reps diverged");
            } else {
                threaded = Some(engine);
            }
            let router = sequential.router_busy().as_secs_f64();
            let busy: Vec<f64> = sequential.shard_busy().iter().map(|d| d.as_secs_f64()).collect();
            critical_path_seconds =
                critical_path_seconds.min(busy.iter().cloned().fold(router, f64::max));
            router_seconds = router_seconds.min(router);
            ratio = ratio.min(busy_ratio(&sequential));
            for (slot, b) in shard_busy_seconds.iter_mut().zip(busy) {
                *slot = slot.min(b);
            }
        }
        let threaded = threaded.expect("at least one rep ran");
        let fp = fingerprint(&threaded);
        match &reference {
            None => reference = Some(fp),
            Some(r) => outputs_identical &= *r == fp,
        }
        if n == 1 {
            wall_1 = wall;
            critical_1 = critical_path_seconds;
            one_shard_events =
                threaded.anomalies().iter().map(|e| (e.path.to_string(), e.unit)).collect();
        }
        eprintln!(
            "{n} shards: wall {:.3}s, critical path {:.3}s (router {:.3}s, busiest shard {:.3}s)",
            wall,
            critical_path_seconds,
            router_seconds,
            shard_busy_seconds.iter().cloned().fold(0.0, f64::max),
        );
        shard_reports.push(ShardReport {
            shards: n,
            wall_seconds: wall,
            wall_records_per_sec: records.len() as f64 / wall,
            router_seconds,
            shard_busy_seconds,
            critical_path_seconds,
            records_per_sec: records.len() as f64 / critical_path_seconds,
            speedup: critical_1 / critical_path_seconds,
            wall_speedup: wall_1 / wall,
            busy_ratio: ratio,
            anomalies: threaded.anomalies().len(),
            heavy_hitters: threaded.heavy_hitter_paths().len(),
        });
    }
    assert!(outputs_identical, "shard counts must produce byte-identical output");

    // Does the sharded engine reproduce the unsharded detector's
    // level ≥ 1 events on this workload? (Not guaranteed in general —
    // the engines differ at the root by design — but expected here.)
    // The 1-shard events were captured during the sweep above.
    let baseline_level1: Vec<(String, u64)> = {
        let mut v: Vec<(String, u64)> = baseline
            .anomalies()
            .iter()
            .filter(|e| e.level >= 1)
            .map(|e| (e.path.to_string(), e.unit))
            .collect();
        v.sort();
        v
    };
    one_shard_events.sort();
    let level1_matches_unsharded = baseline_level1 == one_shard_events;

    // Skewed workload: same tree, Zipfian mass over the top-level
    // labels. Static hash routing piles the hot prefixes onto a few
    // shards; the adaptive rebalancer repins them at epoch barriers.
    // Output must stay byte-identical either way.
    let skew_workload =
        ccd_location_workload_skewed(SKEW_SCALE, SKEW_BASE_RATE, SKEW_SEED, SKEW_ZIPF_S);
    let skew_tree = skew_workload.tree();
    let mut skew_records: Vec<(String, u64)> = Vec::new();
    for unit in 0..UNITS {
        for (node, t) in skew_workload.generate_records(unit) {
            skew_records.push((skew_tree.path_of(node).to_string(), t));
        }
    }
    eprintln!(
        "skewed variant (zipf_s={SKEW_ZIPF_S}): {} records at {SKEW_SHARDS} shards…",
        skew_records.len(),
    );
    let adaptive_config = RebalanceConfig::enabled().with_threshold(SKEW_THRESHOLD);
    let mut static_cp = f64::INFINITY;
    let mut adaptive_cp = f64::INFINITY;
    let mut static_ratio = f64::INFINITY;
    let mut adaptive_ratio = f64::INFINITY;
    let mut static_engine = None;
    let mut adaptive_engine = None;
    for rep in 0..SKEW_REPS {
        let st = run_sequential(SKEW_SHARDS, &skew_records, end_secs);
        static_cp = static_cp.min(critical_path(&st));
        static_ratio = static_ratio.min(busy_ratio(&st));
        let rep_static = busy_ratio(&st);
        static_engine = Some(st);
        let ad = run_sequential_with(SKEW_SHARDS, &skew_records, end_secs, adaptive_config);
        adaptive_cp = adaptive_cp.min(critical_path(&ad));
        adaptive_ratio = adaptive_ratio.min(busy_ratio(&ad));
        let rep_adaptive = busy_ratio(&ad);
        adaptive_engine = Some(ad);
        eprintln!("  rep {rep}: busy ratio {rep_static:.3} static, {rep_adaptive:.3} adaptive");
    }
    let static_engine = static_engine.expect("at least one rep ran");
    let adaptive_engine = adaptive_engine.expect("at least one rep ran");
    let skew_outputs_identical = fingerprint(&static_engine) == fingerprint(&adaptive_engine);
    assert!(skew_outputs_identical, "adaptive routing must not change the output");
    // And against the unsharded detector, level ≥ 1 (the engines differ
    // at the root by design).
    let mut skew_baseline = builder().build().expect("static config is valid");
    for chunk in skew_records.chunks(BATCH_RECORDS) {
        skew_baseline.push_batch(chunk).expect("in-order stream");
    }
    skew_baseline.advance_to(end_secs).expect("close last unit");
    let mut skew_baseline_level1: Vec<(String, u64)> = skew_baseline
        .anomalies()
        .iter()
        .filter(|e| e.level >= 1)
        .map(|e| (e.path.to_string(), e.unit))
        .collect();
    skew_baseline_level1.sort();
    let mut skew_adaptive_events: Vec<(String, u64)> =
        adaptive_engine.anomalies().iter().map(|e| (e.path.to_string(), e.unit)).collect();
    skew_adaptive_events.sort();
    eprintln!(
        "skewed at {SKEW_SHARDS} shards: busy ratio {static_ratio:.2} static → \
         {adaptive_ratio:.2} adaptive ({} rebalances, {} pinned), critical path \
         {static_cp:.3}s → {adaptive_cp:.3}s",
        adaptive_engine.rebalances(),
        adaptive_engine.router().pinned_count(),
    );
    let skewed = SkewedReport {
        zipf_s: SKEW_ZIPF_S,
        records: skew_records.len(),
        shards: SKEW_SHARDS,
        balance_threshold: SKEW_THRESHOLD,
        static_routing: SkewedVariant {
            busy_ratio: static_ratio,
            critical_path_seconds: static_cp,
            records_per_sec: skew_records.len() as f64 / static_cp,
        },
        adaptive: SkewedVariant {
            busy_ratio: adaptive_ratio,
            critical_path_seconds: adaptive_cp,
            records_per_sec: skew_records.len() as f64 / adaptive_cp,
        },
        rebalances: adaptive_engine.rebalances(),
        pinned_labels: adaptive_engine.router().pinned_count(),
        outputs_identical: skew_outputs_identical,
        level1_matches_unsharded: skew_baseline_level1 == skew_adaptive_events,
    };

    // Batch-size sweep at 4 shards, threaded: what the batched API
    // amortises.
    let batch_sweep: Vec<BatchSweepPoint> = BATCH_SWEEP
        .iter()
        .map(|&batch| {
            let (wall, _) = run_threaded(4, &records, batch, end_secs);
            BatchSweepPoint {
                batch_records: batch,
                wall_seconds: wall,
                wall_records_per_sec: records.len() as f64 / wall,
            }
        })
        .collect();

    let four_shards = shard_reports.iter().find(|r| r.shards == 4).expect("4 is in SHARD_COUNTS");
    let critical_path_records_per_sec_4_shards = four_shards.records_per_sec;
    let critical_path_speedup_4_shards = four_shards.speedup;
    let report = Report {
        schema: "tiresias-bench-sharded/v2".to_string(),
        generated_by: "cargo run --release -p tiresias-bench --bin bench_sharded".to_string(),
        host_cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        speedup_model: "critical-path: records / max(router_busy, max(shard_busy)) from a \
                        deterministic sequential replay; equals threaded wall-clock when the \
                        host has >= shards free cores"
            .to_string(),
        workload: WorkloadInfo {
            units: UNITS,
            records: records.len(),
            top_level_labels: tree.children(tree.root()).len(),
            tree_nodes: tree.len(),
            base_rate: BASE_RATE,
            scale: SCALE,
            timeunit_secs: TIMEUNIT_SECS,
            seed: SEED,
            batch_records: BATCH_RECORDS,
        },
        baseline_unsharded: BaselineReport {
            seconds: baseline_secs,
            records_per_sec: records.len() as f64 / baseline_secs,
            anomalies: baseline.anomalies().len(),
        },
        shard_counts: shard_reports,
        critical_path_records_per_sec_4_shards,
        critical_path_speedup_4_shards,
        batch_sweep_at_4_shards: batch_sweep,
        skewed,
        outputs_identical,
        level1_matches_unsharded,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report file");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
