//! Fig. 11 — FFT of the arrival-count series for CCD and SCD: dominant
//! periods and the ξ weight between daily and weekly factors, with the
//! à-trous wavelet cross-check of §VI.

use tiresias_bench::scenarios::{ccd_trouble_workload, scd_workload, UNITS_PER_WEEK};
use tiresias_datagen::Workload;
use tiresias_spectral::{Periodogram, SeasonalityAnalysis};

fn analyze(label: &str, workload: &Workload, weeks: usize) {
    let series: Vec<f64> = (0..(weeks * UNITS_PER_WEEK) as u64)
        .map(|u| workload.generate_unit(u).iter().sum())
        .collect();
    let p = Periodogram::compute(&series);
    println!("\n{label} ({} weeks of 15-minute units)", weeks);
    println!("top spectral peaks (period in hours, normalized magnitude):");
    for peak in p.dominant_periods(5) {
        println!("  period {:>8.1} h  magnitude {:.4}", peak.period_units * 0.25, peak.magnitude);
    }
    let day = p.magnitude_at_period(96.0);
    let week = p.magnitude_at_period(672.0);
    println!("magnitude at 24 h: {day:.4}; at 168 h: {week:.4}");
    if day + week > 0.0 {
        println!(
            "xi = day / (day + week) = {:.2} (paper derives 0.76 for CCD)",
            day / (day + week)
        );
    }
    let analysis = SeasonalityAnalysis::analyze(&series, 2);
    for s in analysis.seasons() {
        println!(
            "detected season: {:.1} h (weight {:.2}, wavelet confirmed: {})",
            s.period_units * 0.25,
            s.weight,
            s.wavelet_confirmed
        );
    }
}

fn main() {
    println!("Fig. 11 — frequency-domain seasonality of the arrival series");
    analyze("(a) CCD", &ccd_trouble_workload(1.0, 300.0, 61), 4);
    analyze("(b) SCD", &scd_workload(0.01, 300.0, 62), 4);
}
