//! `bench_query` — latency and throughput of the server's read path
//! under concurrent write load.
//!
//! Starts an in-process `tiresias-server` with a bounded retained
//! report store, preloads it with a bursty multi-unit history (so
//! queries have real events to find), then runs two phases at once:
//!
//! * **4 admission clients** keep pushing records at full rate through
//!   the wire protocol (`NOACK`, pipelined) — the same write pressure
//!   `bench_serve` measures;
//! * **1 query client** issues a mixed stream of `QUERY` requests
//!   (full-range, `PREFIX`-narrowed, `LEVEL`-filtered, `LIMIT`-bounded)
//!   and measures per-query round-trip latency.
//!
//! Because `QUERY` is answered off the report store's read-mostly lock
//! — never the state mutex, never the admission path — the interesting
//! numbers are (a) query latency while admission runs flat out, and
//! (b) how little the queries cost admission (compare
//! `admission.records_per_sec` with `BENCH_serve.json`'s noack mode).
//!
//! Writes the JSON report to the path given as the first argument,
//! default `BENCH_query.json`, and prints it to stdout.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use serde::Serialize;
use tiresias_core::TiresiasBuilder;
use tiresias_server::{Server, ServerConfig};

const TIMEUNIT: u64 = 900;
/// Units preloaded before the measurement (warm store + closed units).
const PRELOAD_UNITS: u64 = 16;
/// Future unit the measurement-phase feeders aim their records at
/// (stashed by the workers — the full admission path runs while the
/// store keeps serving queries).
const LIVE_AHEAD_UNITS: u64 = 4;
const CATEGORIES: u64 = 24;
const RECORDS_PER_UNIT_PER_CATEGORY: u64 = 60;
const CLIENTS: usize = 4;
const SHARDS: usize = 4;
const QUERIES: usize = 2_000;
const RETAIN_UNITS: u64 = 64;
const GRACE_MS: u64 = 1_500;

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(96)
        .threshold(10.0)
        .season_length(4)
        .sensitivity(2.0, 5.0)
        .warmup_units(8)
        .shards(SHARDS)
}

/// `PUSH` payloads per client per unit for units `[from, to)`: steady
/// traffic with one rotating bursting category per post-warmup unit,
/// so events land in many distinct units.
fn payloads(clients: usize, from: u64, to: u64) -> (usize, Vec<Vec<String>>) {
    let mut total = 0usize;
    let mut payloads = vec![vec![String::new(); (to - from) as usize]; clients];
    for u in from..to {
        let burst_cat = if u >= 9 { u % CATEGORIES } else { CATEGORIES };
        let mut i_in_unit = 0usize;
        for c in 0..CATEGORIES {
            let count = if c == burst_cat {
                RECORDS_PER_UNIT_PER_CATEGORY * 10
            } else {
                RECORDS_PER_UNIT_PER_CATEGORY
            };
            for i in 0..count {
                let t = u * TIMEUNIT + (i % TIMEUNIT);
                payloads[i_in_unit % clients][(u - from) as usize]
                    .push_str(&format!("PUSH region-{c}/pop-{}/service 42 {t}\n", c % 7));
                i_in_unit += 1;
                total += 1;
            }
        }
    }
    (total, payloads)
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        Client { stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.stream.write_all(line.as_bytes()).expect("writes");
        self.stream.write_all(b"\n").expect("writes");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reads");
        reply.trim_end().to_string()
    }

    /// Issues one `QUERY` and returns (events returned, whole-reply
    /// latency).
    fn query(&mut self, request: &str) -> (usize, Duration) {
        let t0 = Instant::now();
        self.stream.write_all(request.as_bytes()).expect("writes");
        self.stream.write_all(b"\n").expect("writes");
        let mut line = String::new();
        loop {
            line.clear();
            self.reader.read_line(&mut line).expect("reads");
            if let Some(n) = line.trim_end().strip_prefix("OK n=") {
                return (n.parse().expect("count parses"), t0.elapsed());
            }
            assert!(line.starts_with("EVENT "), "unexpected reply: {line}");
        }
    }
}

/// Drives one admission client through its per-unit payloads with a
/// `PING` fence per unit (same protocol discipline as `bench_serve`).
fn run_feeder(addr: std::net::SocketAddr, chunks: &[String], barrier: &std::sync::Barrier) {
    let mut client = Client::connect(addr);
    assert_eq!(client.roundtrip("NOACK"), "OK");
    for chunk in chunks {
        client.stream.write_all(chunk.as_bytes()).expect("pushes");
        let mut line = String::new();
        client.stream.write_all(b"PING\n").expect("ping");
        loop {
            line.clear();
            match client.reader.read_line(&mut line) {
                Ok(0) | Err(_) => panic!("server hung up mid-unit"),
                Ok(_) => match line.trim_end() {
                    "PONG" => break,
                    reply => assert!(reply.starts_with("OK"), "reply: {reply}"),
                },
            }
        }
        barrier.wait();
    }
}

#[derive(Debug, Serialize)]
struct LatencyReport {
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

#[derive(Debug, Serialize)]
struct QueryReport {
    queries: usize,
    events_returned: usize,
    wall_seconds: f64,
    queries_per_sec: f64,
    latency: LatencyReport,
}

#[derive(Debug, Serialize)]
struct AdmissionReport {
    records: usize,
    wall_seconds: f64,
    records_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    generated_by: String,
    host_cores: usize,
    config: ConfigReport,
    /// Events retained in the store when the query phase started.
    preloaded_events: usize,
    /// The read path under write pressure.
    query: QueryReport,
    /// Records admitted DURING the query window (the write path with
    /// the read path active; compare against `BENCH_serve.json`'s
    /// noack admission).
    admission: AdmissionReport,
    stats: String,
}

#[derive(Debug, Serialize)]
struct ConfigReport {
    shards: usize,
    clients: usize,
    timeunit_secs: u64,
    preload_units: u64,
    categories: u64,
    retain_units: u64,
    grace_ms: u64,
}

/// The front-end's admitted-record counter, via `STATS`.
fn stats_records(control: &mut Client) -> usize {
    let stats = control.roundtrip("STATS");
    stats
        .split_whitespace()
        .find_map(|p| p.strip_prefix("records="))
        .and_then(|v| v.parse().ok())
        .expect("records= present in STATS")
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_query.json".to_string());

    let mut config = ServerConfig::new(builder());
    config.grace = Duration::from_millis(GRACE_MS);
    config.tick = Duration::from_millis(20);
    config.retain_units = Some(RETAIN_UNITS);
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr();

    // Preload: warm-up plus bursty history, then wait for the grace
    // window so the burst units close and their events are retained.
    let (_preload_records, preload) = payloads(CLIENTS, 0, PRELOAD_UNITS);
    {
        let barrier = std::sync::Barrier::new(CLIENTS);
        std::thread::scope(|scope| {
            for chunks in &preload {
                let barrier = &barrier;
                scope.spawn(move || run_feeder(addr, chunks, barrier));
            }
        });
    }
    let mut control = Client::connect(addr);
    let deadline = Instant::now() + Duration::from_secs(60);
    let preloaded_events = loop {
        let stats = control.roundtrip("STATS");
        let events: usize = stats
            .split_whitespace()
            .find_map(|p| p.strip_prefix("events="))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let closed = stats
            .split_whitespace()
            .any(|p| p.strip_prefix("last_closed=").is_some_and(|v| v != "-"));
        if events > 0 && closed {
            break events;
        }
        assert!(Instant::now() < deadline, "preload produced no events: {stats}");
        std::thread::sleep(Duration::from_millis(100));
    };

    // Measurement: 4 clients admit at full rate for the WHOLE query
    // window (a pre-built chunk aimed a few units ahead of the
    // watermark, re-sent until the query client finishes — the full
    // admission path runs: gate, routing, ring hand-off, stashing),
    // while the query client hammers the read path.
    let records_before = stats_records(&mut control);
    let chunk = {
        let mut chunk = String::new();
        let t = (PRELOAD_UNITS + LIVE_AHEAD_UNITS) * TIMEUNIT;
        for i in 0..4096u64 {
            let c = i % CATEGORIES;
            chunk.push_str(&format!(
                "PUSH region-{c}/pop-{}/service 42 {}
",
                c % 7,
                t + i % 60
            ));
        }
        chunk
    };
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut latencies_us: Vec<f64> = Vec::with_capacity(QUERIES);
    let mut events_returned = 0usize;
    let mut query_wall = 0.0f64;
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let (chunk, stop) = (&chunk, &stop);
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                assert_eq!(client.roundtrip("NOACK"), "OK");
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    client.stream.write_all(chunk.as_bytes()).expect("pushes");
                    assert_eq!(client.roundtrip("PING"), "PONG");
                }
            });
        }

        let mut client = Client::connect(addr);
        let hi = PRELOAD_UNITS + LIVE_AHEAD_UNITS;
        let requests = [
            format!("QUERY 0 {hi}"),
            format!("QUERY 0 {hi} PREFIX region-9"),
            "QUERY 9 12 LEVEL 3".to_string(),
            format!("QUERY 0 {hi} LIMIT 16"),
        ];
        let t0 = Instant::now();
        for i in 0..QUERIES {
            let (events, latency) = client.query(&requests[i % requests.len()]);
            events_returned += events;
            latencies_us.push(latency.as_secs_f64() * 1e6);
        }
        query_wall = t0.elapsed().as_secs_f64();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let live_records = stats_records(&mut control) - records_before;
    let admission_wall = query_wall;

    let stats = control.roundtrip("STATS");
    control.stream.write_all(b"SHUTDOWN\n").expect("shutdown");
    server.join().expect("clean shutdown");

    let mut sorted = latencies_us.clone();
    sorted.sort_by(f64::total_cmp);
    let report = Report {
        schema: "tiresias-bench-query/v1".to_string(),
        generated_by: "cargo run --release -p tiresias-bench --bin bench_query".to_string(),
        host_cores: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        config: ConfigReport {
            shards: SHARDS,
            clients: CLIENTS,
            timeunit_secs: TIMEUNIT,
            preload_units: PRELOAD_UNITS,
            categories: CATEGORIES,
            retain_units: RETAIN_UNITS,
            grace_ms: GRACE_MS,
        },
        preloaded_events,
        query: QueryReport {
            queries: QUERIES,
            events_returned,
            wall_seconds: query_wall,
            queries_per_sec: QUERIES as f64 / query_wall,
            latency: LatencyReport {
                mean_us: latencies_us.iter().sum::<f64>() / latencies_us.len() as f64,
                p50_us: percentile(&sorted, 0.50),
                p99_us: percentile(&sorted, 0.99),
                max_us: percentile(&sorted, 1.0),
            },
        },
        admission: AdmissionReport {
            records: live_records,
            wall_seconds: admission_wall,
            records_per_sec: live_records as f64 / admission_wall,
        },
        stats,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report file");
    println!("{json}");
}
