//! `perf_guard` — CI guard against throughput regressions.
//!
//! Compares a metric of a freshly generated benchmark report against
//! the committed baseline and exits non-zero if the fresh value dropped
//! by more than the allowed percentage:
//!
//! ```text
//! perf_guard <baseline.json> <fresh.json> <dotted.metric.path> <max_drop_pct> [fresh.path]
//! perf_guard BENCH_ingest.json /tmp/bench_ingest.json str_path.records_per_sec 25
//! ```
//!
//! Only *drops* beyond the allowance fail — higher is never a
//! regression. The allowance must absorb both code-level noise and the
//! host gap between the baseline machine and the CI runner; if the CI
//! fleet is persistently slower than the committed numbers, refresh the
//! baseline from a CI run (the report's `generated_by` command) rather
//! than widening the allowance. The dotted path walks JSON maps (e.g.
//! `str_path.records_per_sec`).
//!
//! The optional fifth argument reads a *different* metric path from
//! the fresh file, for same-host ratio gates where both numbers come
//! from one run — e.g. the WAL durability tax on acked admission:
//!
//! ```text
//! perf_guard /tmp/s.json /tmp/s.json modes.acked.records_per_sec 25 \
//!     modes.acked_wal.records_per_sec
//! ```
//!
//! The `--ceiling` form instead bounds a metric the report already
//! expresses as an overhead percentage (negative = the overhead paid
//! for itself; only exceeding the ceiling fails):
//!
//! ```text
//! perf_guard --ceiling /tmp/bench_serve.json telemetry_tax_pct 5
//! ```
//!
//! The `--floor` form is its mirror: the metric must stay **at or
//! above** the given value — for report metrics that express a
//! required *gain*, like the binary-protocol speedup over text:
//!
//! ```text
//! perf_guard --floor /tmp/bench_serve.json bin_gain_pct 30
//! ```

use std::process::ExitCode;

fn metric(file: &str, path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let mut value = serde_json::parse_value(&text).map_err(|e| format!("{file}: {e}"))?;
    for key in path.split('.') {
        value = value.field(key).map_err(|e| format!("{file}: {path}: {e}"))?.clone();
    }
    match value {
        serde::Value::F64(x) => Ok(x),
        serde::Value::U64(x) => Ok(x as f64),
        serde::Value::I64(x) => Ok(x as f64),
        other => Err(format!("{file}: {path}: expected a number, found {}", other.kind())),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let [flag, file, path, bound] = args.as_slice() {
        if flag == "--ceiling" || flag == "--floor" {
            let bound: f64 = bound.parse().map_err(|e| format!("bound `{bound}`: {e}"))?;
            let value = metric(file, path)?;
            if !value.is_finite() {
                return Err(format!("{path} = {value} is not a finite number"));
            }
            if flag == "--ceiling" {
                eprintln!("{path}: {value:+.2}%, ceiling {bound}%");
                if value > bound {
                    return Err(format!("{path} exceeds the ceiling: {value:.2}% > {bound}%"));
                }
            } else {
                eprintln!("{path}: {value:+.2}%, floor {bound}%");
                if value < bound {
                    return Err(format!("{path} is under the floor: {value:.2}% < {bound}%"));
                }
            }
            return Ok(());
        }
    }
    let (baseline_file, fresh_file, path, max_drop_pct, fresh_path) = match args.as_slice() {
        [b, f, p, d] => (b, f, p, d, p),
        [b, f, p, d, fp] => (b, f, p, d, fp),
        _ => {
            return Err("usage: perf_guard <baseline.json> <fresh.json> <dotted.metric.path> \
                        <max_drop_pct> [fresh.metric.path] | perf_guard --ceiling <report.json> \
                        <dotted.metric.path> <max_pct> | perf_guard --floor <report.json> \
                        <dotted.metric.path> <min_pct>"
                .into());
        }
    };
    let max_drop: f64 =
        max_drop_pct.parse().map_err(|e| format!("max_drop_pct `{max_drop_pct}`: {e}"))?;
    let baseline = metric(baseline_file, path)?;
    let fresh = metric(fresh_file, fresh_path)?;
    if !(baseline.is_finite() && baseline > 0.0) {
        return Err(format!("baseline {path} = {baseline} is not a positive number"));
    }
    let label = if fresh_path == path { path.clone() } else { format!("{path} → {fresh_path}") };
    let floor = baseline * (1.0 - max_drop / 100.0);
    let change_pct = (fresh / baseline - 1.0) * 100.0;
    eprintln!(
        "{label}: baseline {baseline:.0}, fresh {fresh:.0} ({change_pct:+.1}%), floor {floor:.0} \
         (−{max_drop}%)"
    );
    if fresh < floor {
        return Err(format!(
            "{label} regressed more than {max_drop}%: {fresh:.0} < floor {floor:.0} \
             (baseline {baseline:.0})"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            eprintln!("perf guard: OK");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("perf guard: FAIL: {message}");
            ExitCode::FAILURE
        }
    }
}
