//! Table VI — Tiresias (ADA) compared against the current-practice
//! reference method (VHO-level control charts), on a CCD-like stream
//! with injected ground-truth anomalies at every hierarchy level.

use tiresias_bench::fmt::{pct, Table};
use tiresias_bench::practice::{inject_schedule, run_practice, PracticeConfig};
use tiresias_bench::scenarios::ccd_location_workload;
use tiresias_core::ControlChartConfig;
use tiresias_hhh::ModelSpec;

fn main() {
    let mut workload = ccd_location_workload(0.15, 400.0, 111);
    let cfg = PracticeConfig {
        theta: 10.0,
        ell: 288,
        warmup: 192,
        instances: 768, // eight days of 15-minute units
        model: ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 96 },
        rt: 2.8,
        dt: 8.0,
        // k = 4σ: the paper tuned RT/DT "in comparison with the
        // reference method" (§VII); we calibrate the chart band the same
        // way so the two methods alarm at comparable severities.
        chart: ControlChartConfig { level: 1, window: 96, k: 4.0, min_samples: 48 },
    };
    // Inject anomalies across all levels of the scoring span.
    let injected = inject_schedule(
        &mut workload,
        24,
        cfg.warmup as u64 + 48,
        (cfg.warmup + cfg.instances) as u64 - 48,
        600.0,
        112,
    );
    let r = run_practice(&workload, &cfg);

    println!("Table VI — Tiresias vs the reference method (control charts at VHO level)\n");
    let mut table = Table::new(vec!["Performance metric", "Paper", "Measured"]);
    table.row(vec!["Type 1 (Accuracy)".into(), "94.1%".into(), pct(r.report.type1())]);
    table.row(vec!["Type 2".into(), "90.9%".into(), pct(r.report.type2())]);
    table.row(vec!["Type 3".into(), "94.1%".into(), pct(r.report.type3())]);
    println!("{table}");
    println!(
        "cases: {} reference alarms, {} tiresias alarms, TA={} MA={} NA={} TN={}",
        r.n_reference,
        r.n_tiresias,
        r.report.true_alarms,
        r.report.missed_anomalies,
        r.report.new_anomalies,
        r.report.true_negatives
    );

    println!("\nNew-anomaly (NA) distribution by level after ancestor dedup (paper: 5% / 56.3% / 29.3% / 9.4%):");
    let total: usize = r.na_by_level.iter().map(|&(_, c)| c).sum();
    let names = ["VHO", "IO", "CO", "DSLAM"];
    for &(level, count) in &r.na_by_level {
        println!(
            "  level {} ({}): {} ({})",
            level,
            names.get(level - 1).unwrap_or(&"?"),
            count,
            if total > 0 { pct(count as f64 / total as f64) } else { "-".into() }
        );
    }

    println!("\nScoring against the {} injected ground-truth anomalies:", injected.len());
    println!(
        "  Tiresias: recall {} (TP={} FN={} FP={})",
        pct(r.tiresias_truth.recall()),
        r.tiresias_truth.true_positives,
        r.tiresias_truth.false_negatives,
        r.tiresias_truth.false_positives
    );
    println!(
        "  Chart:    recall {} (TP={} FN={} FP={})",
        pct(r.chart_truth.recall()),
        r.chart_truth.true_positives,
        r.chart_truth.false_negatives,
        r.chart_truth.false_positives
    );
    println!("\nPaper shape: high Type 1/2/3 agreement, and most of Tiresias' extra");
    println!("anomalies sit below the VHO level where the reference method is blind.");
}
