//! Ablation: false-alarm rate vs reference-series depth h (§V-B5).
//!
//! Marginal heavy hitters that oscillate around θ re-enter the set with
//! split-approximated forecasts; reference series repair exactly that.
//! This sweep measures alarms raised on an anomaly-free seasonal stream
//! (every alarm is false) as h grows.

use tiresias_bench::fmt::Table;
use tiresias_core::{Algorithm, TiresiasBuilder};
use tiresias_datagen::{ccd_location_spec, Workload, WorkloadConfig};

fn main() {
    println!("Ablation — false alarms on an anomaly-free stream vs reference depth h\n");
    let mut table = Table::new(vec!["h (ref levels)", "false alarms", "ref cells kept"]);
    for h in [0usize, 1, 2, 3] {
        let tree = ccd_location_spec(0.05).build().expect("valid spec");
        let workload = Workload::new(
            tree.clone(),
            WorkloadConfig { noise_sigma: 0.05, ..WorkloadConfig::ccd(150.0) },
            1002,
        );
        let mut detector = TiresiasBuilder::new()
            .timeunit_secs(900)
            .window_len(192)
            .threshold(10.0)
            .season_length(96)
            .sensitivity(2.8, 8.0)
            .warmup_units(192)
            .algorithm(Algorithm::Ada)
            .ref_levels(h)
            .root_label("SHO")
            .build()
            .expect("valid configuration");
        detector.adopt_tree(tree).expect("fresh detector");
        for unit in 0..288u64 {
            detector.ingest_unit(&workload.generate_unit(unit)).expect("bulk ingest");
        }
        let mem = detector.memory_report();
        table.row(vec![
            h.to_string(),
            detector.anomalies().len().to_string(),
            mem.reference_cells.to_string(),
        ]);
    }
    println!("{table}");
    println!("Expected shape: alarms fall sharply as h covers the levels where");
    println!("marginal heavy hitters live, at a modest reference-memory cost —");
    println!("the accuracy/memory trade of the paper's Tables IV & V.");
}
