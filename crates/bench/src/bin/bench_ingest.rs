//! `bench_ingest` — end-to-end ingest throughput of the detector.
//!
//! Streams an identical synthetic CCD workload through the detector
//! twice: once seed-style (`Record::new` + `push`, which parses every
//! path into an owned `CategoryPath`) and once through the
//! zero-allocation `&str` fast path (`push_str`). Reports records/sec
//! for both, the speedup, per-stage timings, and verifies the two runs
//! produce byte-identical results.
//!
//! The measured gap is the full per-record cost difference of the two
//! APIs: parsing and allocation, but also the two per-record
//! `Instant::now` stage-accounting calls that `push` performs and
//! `push_str` skips by design (see its docs). Interpret `speedup` as
//! "fast path vs seed-style API", not as allocation cost alone.
//!
//! Writes the report as JSON (schema documented in the repository
//! README) to the path given as the first argument, default
//! `BENCH_ingest.json`, and prints it to stdout.

use std::time::Instant;

use serde::Serialize;
use tiresias_bench::scenarios::ccd_trouble_workload;
use tiresias_core::{Record, Tiresias, TiresiasBuilder};

const UNITS: u64 = 64;
const BASE_RATE: f64 = 2000.0;
const SEED: u64 = 42;
const TIMEUNIT_SECS: u64 = 900;

#[derive(Debug, Serialize)]
struct StageMicros {
    reading_traces: u64,
    updating_hierarchies: u64,
    creating_time_series: u64,
    detecting_anomalies: u64,
}

#[derive(Debug, Serialize)]
struct PathReport {
    seconds: f64,
    records_per_sec: f64,
    ns_per_record: f64,
    anomalies: usize,
    stage_micros: StageMicros,
}

#[derive(Debug, Serialize)]
struct WorkloadInfo {
    units: u64,
    records: usize,
    tree_nodes: usize,
    heavy_hitters: usize,
    base_rate: f64,
    timeunit_secs: u64,
    seed: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    generated_by: String,
    workload: WorkloadInfo,
    record_path: PathReport,
    str_path: PathReport,
    speedup: f64,
    outputs_identical: bool,
}

fn detector() -> Tiresias {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT_SECS)
        .window_len(96)
        .threshold(10.0)
        .season_length(24)
        .sensitivity(2.8, 8.0)
        .warmup_units(8)
        .ref_levels(2)
        .build()
        .expect("static config is valid")
}

fn path_report(d: &Tiresias, seconds: f64, records: usize) -> PathReport {
    let t = d.timings();
    PathReport {
        seconds,
        records_per_sec: records as f64 / seconds,
        ns_per_record: seconds * 1e9 / records as f64,
        anomalies: d.anomalies().len(),
        stage_micros: StageMicros {
            reading_traces: t.reading_traces.as_micros() as u64,
            updating_hierarchies: t.updating_hierarchies.as_micros() as u64,
            creating_time_series: t.creating_time_series.as_micros() as u64,
            detecting_anomalies: t.detecting_anomalies.as_micros() as u64,
        },
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_ingest.json".to_string());

    // Pre-render the record stream (identical for both paths); the
    // rendering cost is excluded from both measurements.
    let workload = ccd_trouble_workload(1.0, BASE_RATE, SEED);
    let tree = workload.tree();
    let mut records: Vec<(String, u64)> = Vec::new();
    for unit in 0..UNITS {
        for (node, t) in workload.generate_records(unit) {
            records.push((tree.path_of(node).to_string(), t));
        }
    }
    let end_secs = UNITS * TIMEUNIT_SECS;
    eprintln!("streaming {} records over {UNITS} units through both ingest paths…", records.len());

    // Seed-style path: parse into a Record, then push.
    let mut via_record = detector();
    let t0 = Instant::now();
    for (path, t) in &records {
        via_record.push(Record::new(path, *t)).expect("in-order stream");
    }
    via_record.advance_to(end_secs).expect("close last unit");
    let record_secs = t0.elapsed().as_secs_f64();

    // Borrowed fast path.
    let mut via_str = detector();
    let t1 = Instant::now();
    for (path, t) in &records {
        via_str.push_str(path, *t).expect("in-order stream");
    }
    via_str.advance_to(end_secs).expect("close last unit");
    let str_secs = t1.elapsed().as_secs_f64();

    let outputs_identical = via_record.tree().len() == via_str.tree().len()
        && via_record.heavy_hitters() == via_str.heavy_hitters()
        && via_record.anomalies() == via_str.anomalies()
        && via_record.units_processed() == via_str.units_processed();
    assert!(outputs_identical, "fast path diverged from the Record path");

    let report = Report {
        schema: "tiresias-bench-ingest/v1".to_string(),
        generated_by: "cargo run --release -p tiresias-bench --bin bench_ingest".to_string(),
        workload: WorkloadInfo {
            units: UNITS,
            records: records.len(),
            tree_nodes: via_str.tree().len(),
            heavy_hitters: via_str.heavy_hitters().len(),
            base_rate: BASE_RATE,
            timeunit_secs: TIMEUNIT_SECS,
            seed: SEED,
        },
        record_path: path_report(&via_record, record_secs, records.len()),
        str_path: path_report(&via_str, str_secs, records.len()),
        speedup: record_secs / str_secs,
        outputs_identical,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report file");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
