//! Fig. 9 — relative error `RE[t+k]` of an EWMA forecast biased by ξ at
//! a split, after k clean iterations (α = 0.5, constant unit series).
//! Closed form (Eq. 1–2) and simulation side by side.

use tiresias_bench::fmt::Table;
use tiresias_timeseries::{split_bias_relative_error, Ewma, Forecaster};

fn main() {
    let alpha = 0.5;
    println!("Fig. 9 — split-bias error decay (alpha = {alpha}, T[i] = 1, F[t] = 1)\n");
    let mut table = Table::new(vec![
        "k",
        "xi=2F closed",
        "xi=2F sim",
        "xi=F closed",
        "xi=F sim",
        "xi=0.5F closed",
        "xi=0.5F sim",
    ]);
    let xis = [2.0, 1.0, 0.5];
    let mut sims: Vec<(Ewma, Ewma)> = xis
        .iter()
        .map(|&xi| {
            (
                Ewma::with_initial(alpha, 1.0 + xi).expect("valid alpha"),
                Ewma::with_initial(alpha, 1.0).expect("valid alpha"),
            )
        })
        .collect();
    for k in 1..=10u32 {
        let mut cells = vec![k.to_string()];
        for (i, &xi) in xis.iter().enumerate() {
            let (biased, clean) = &mut sims[i];
            biased.observe(1.0);
            clean.observe(1.0);
            let sim = (biased.forecast() - clean.forecast()).abs() / clean.forecast();
            let closed = split_bias_relative_error(alpha, xi, clean.forecast(), k);
            cells.push(format!("{closed:.6}"));
            cells.push(format!("{sim:.6}"));
        }
        table.row(cells);
    }
    println!("{table}");
    println!("The error halves every iteration: (1-alpha)^k decay, matching the paper's log-linear plot.");
}
