//! Ablation: forecasting model choice on the CCD workload — EWMA vs
//! single-season Holt-Winters vs the paper's two-factor (daily + weekly)
//! combination (§VI).
//!
//! One-step-ahead forecasting on a smooth diurnal curve is forgiving, so
//! the seasonal advantage concentrates where the curve moves fastest —
//! the morning ramp — and that is exactly where spike detection needs a
//! trustworthy baseline. The sweep reports both overall and ramp-hour
//! error.

use tiresias_bench::fmt::Table;
use tiresias_datagen::{ccd_trouble_tree_with_mix, ArrivalModel, Workload, WorkloadConfig};
use tiresias_hhh::{Model, ModelSpec};
use tiresias_timeseries::SeasonalFactor;

fn main() {
    // Hourly units over three weeks: two to fit, one to score.
    let (tree, mix) = ccd_trouble_tree_with_mix(1.0);
    let config = WorkloadConfig {
        timeunit_secs: 3600,
        arrival: ArrivalModel::ccd(800.0),
        zipf_exponent: 1.0,
        noise_sigma: 0.08,
        top_level_skew: 0.0,
    };
    let workload = Workload::with_popularity(tree, config, &mix, 131);
    let series: Vec<f64> =
        (0..3 * 168u64).map(|u| workload.generate_unit(u).iter().sum()).collect();
    let split = 2 * 168;
    let (train, test) = series.split_at(split);

    let candidates: Vec<(&str, ModelSpec)> = vec![
        ("EWMA (0.5)", ModelSpec::Ewma { alpha: 0.5 }),
        (
            "Holt-Winters daily",
            ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 24 },
        ),
        (
            "Holt-Winters weekly",
            ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 168 },
        ),
        (
            "Multi-seasonal (0.76 day + 0.24 week)",
            ModelSpec::MultiSeasonal {
                alpha: 0.5,
                beta: 0.05,
                gamma: 0.3,
                factors: vec![SeasonalFactor::new(24, 0.76), SeasonalFactor::new(168, 0.24)],
            },
        ),
    ];

    println!("Ablation — forecast quality of the model choices (§VI), hourly units\n");
    let mut table = Table::new(vec!["Model", "RMSE", "RMSE ramp (06-12h)", "vs EWMA"]);
    let mut ewma_rmse = None;
    for (label, spec) in candidates {
        let (mut model, _) = Model::replay(&spec, train, 0).expect("valid spec");
        let mut sq = 0.0;
        let mut ramp_sq = 0.0;
        let mut ramp_n = 0usize;
        for (i, &actual) in test.iter().enumerate() {
            let f = model.forecast();
            let e = (actual - f) * (actual - f);
            sq += e;
            let hour = (split + i) % 24;
            if (6..12).contains(&hour) {
                ramp_sq += e;
                ramp_n += 1;
            }
            model.observe(actual);
        }
        let rmse = (sq / test.len() as f64).sqrt();
        let ramp = (ramp_sq / ramp_n.max(1) as f64).sqrt();
        let rel = match ewma_rmse {
            None => {
                ewma_rmse = Some(rmse);
                "100%".to_string()
            }
            Some(base) => format!("{:.0}%", rmse / base * 100.0),
        };
        table.row(vec![label.into(), format!("{rmse:.1}"), format!("{ramp:.1}"), rel]);
    }
    println!("{table}");
    println!("Shape: the daily Holt-Winters beats EWMA overall and most clearly on the");
    println!("morning ramp, where an EWMA lags the curve and would mistake the daily");
    println!("rise for a spike (or hide one). Weekly-only underfits the diurnal swing;");
    println!("the paper's weighted blend tracks the daily model while absorbing the");
    println!("weekend dip that a daily-only season misses.");
}
