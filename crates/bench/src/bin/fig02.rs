//! Fig. 2 — normalized count of appearances in 15-minute units over 8
//! days: (a) CCD starting on a Saturday, (b) SCD starting on a Thursday.

use tiresias_bench::scenarios::{ccd_trouble_workload, scd_workload, UNITS_PER_DAY};
use tiresias_datagen::Workload;
use tiresias_timeseries::stats::normalize_by_max;

fn series(workload: &Workload, start_unit: u64, days: usize) -> Vec<f64> {
    (0..(days * UNITS_PER_DAY) as u64)
        .map(|u| workload.generate_unit(start_unit + u).iter().sum())
        .collect()
}

fn print_series(label: &str, values: &[f64]) {
    println!("\n{label} (one row per hour; columns = normalized counts of the 4 quarter-hours)");
    let norm = normalize_by_max(values);
    for (h, chunk) in norm.chunks(4).enumerate() {
        let day = h / 24;
        let hour = h % 24;
        let cells: Vec<String> = chunk.iter().map(|v| format!("{v:.3}")).collect();
        println!("day {day} {hour:02}:00  {}", cells.join("  "));
    }
    // Headline statistics the paper calls out.
    let peak_idx = norm
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    println!(
        "peak at day {} {:02}:{:02} local",
        peak_idx / UNITS_PER_DAY,
        (peak_idx % UNITS_PER_DAY) / 4,
        (peak_idx % 4) * 15
    );
}

fn main() {
    println!("Fig. 2 — normalized 15-minute count series over 8 days");
    // (a) CCD starting on a Saturday: our workload clock starts Monday,
    // so start 5 days in.
    let ccd = ccd_trouble_workload(1.0, 300.0, 51);
    print_series(
        "(a) CCD, starting Saturday (weekend damping visible on days 0-1)",
        &series(&ccd, (5 * UNITS_PER_DAY) as u64, 8),
    );
    // (b) SCD starting on a Thursday: 3 days in.
    let scd = scd_workload(0.01, 300.0, 52);
    print_series(
        "(b) SCD, starting Thursday (diurnal only, weaker weekly pattern)",
        &series(&scd, (3 * UNITS_PER_DAY) as u64, 8),
    );
}
