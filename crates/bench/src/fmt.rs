//! Minimal aligned-text table printer for experiment output.

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use tiresias_bench::fmt::Table;
///
/// let mut t = Table::new(vec!["metric", "paper", "measured"]);
/// t.row(vec!["accuracy".into(), "94.1%".into(), "95.0%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("accuracy"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a duration in seconds with three decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_padding() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into()]);
        t.row(vec!["yyyyyy".into(), "z".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(0.941), "94.1%");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500s");
    }
}
