//! Experiment harness regenerating every table and figure of the
//! Tiresias paper's evaluation (§VII).
//!
//! Each binary in `src/bin/` reproduces one artefact:
//!
//! | binary        | paper artefact |
//! |---------------|----------------|
//! | `table1`      | Table I — CCD first-level ticket mix |
//! | `table2`      | Table II — hierarchy degrees |
//! | `fig01`       | Fig. 1 — CCDF of normalized counts per level |
//! | `fig02`       | Fig. 2 — normalized 15-minute count series |
//! | `fig09`       | Fig. 9 — split-bias error decay |
//! | `fig11`       | Fig. 11 — FFT spectra / dominant periods |
//! | `fig12`       | Fig. 12 — ADA series error by split rule and h |
//! | `table3`      | Table III — running time ADA vs STA |
//! | `table4`      | Table IV — normalized memory costs |
//! | `table5`      | Table V — ADA detection accuracy vs STA |
//! | `table6`      | Table VI — Tiresias vs the reference method |
//! | `scd_summary` | §VII-A SCD prose results |
//!
//! The heavy lifting lives in this library so binaries stay thin and the
//! runners are unit-testable at reduced scale.

#![forbid(unsafe_code)]

pub mod compare;
pub mod fmt;
pub mod perf;
pub mod practice;
pub mod scenarios;
