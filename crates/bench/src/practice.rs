//! The §VII-B "comparison with current practice" runner behind Table VI:
//! Tiresias (ADA) versus VHO-level control charts, on a stream with
//! injected ground-truth anomalies.

use tiresias_core::{
    is_anomalous, ComparisonReport, ConfusionCounts, ControlChartConfig, ControlChartDetector,
};
use tiresias_datagen::{InjectedAnomaly, Workload};
use tiresias_hhh::{Ada, HhhConfig, ModelSpec, SplitRule};
use tiresias_hierarchy::{CategoryPath, NodeId, Tree};

/// Parameters of a practice-comparison run.
#[derive(Debug, Clone)]
pub struct PracticeConfig {
    /// Heavy hitter threshold θ.
    pub theta: f64,
    /// Window length ℓ.
    pub ell: usize,
    /// Warm-up units before scoring starts.
    pub warmup: usize,
    /// Scored instances.
    pub instances: usize,
    /// Forecasting model.
    pub model: ModelSpec,
    /// Sensitivity thresholds (RT, DT).
    pub rt: f64,
    /// Absolute threshold DT.
    pub dt: f64,
    /// Reference method configuration.
    pub chart: ControlChartConfig,
}

impl Default for PracticeConfig {
    fn default() -> Self {
        PracticeConfig {
            theta: 10.0,
            ell: 288,
            warmup: 192,
            instances: 960,
            model: ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 96 },
            rt: 2.8,
            dt: 8.0,
            chart: ControlChartConfig { level: 1, window: 96, k: 3.0, min_samples: 24 },
        }
    }
}

/// Outcome of the comparison.
#[derive(Debug, Clone)]
pub struct PracticeResult {
    /// The paper's Table VI metrics (reference = control chart alarms).
    pub report: ComparisonReport,
    /// New-anomaly (NA) counts by hierarchy level after removing
    /// redundant ancestors — the paper's 5 % / 56 % / 29 % / 9 % split.
    pub na_by_level: Vec<(usize, usize)>,
    /// Tiresias scored against the injected ground truth (TP/FN per
    /// injected anomaly, FP per unrelated alarm).
    pub tiresias_truth: ConfusionCounts,
    /// The control chart scored against the injected ground truth.
    pub chart_truth: ConfusionCounts,
    /// Number of reference (chart) anomalies.
    pub n_reference: usize,
    /// Number of Tiresias anomalies.
    pub n_tiresias: usize,
}

/// Did flag `(node, unit)` touch injected anomaly `a` (path overlap and
/// unit in span)?
fn touches(tree: &Tree, a: &InjectedAnomaly, node: NodeId, unit: u64) -> bool {
    a.covers_unit(unit)
        && (tree.is_ancestor_or_equal(a.node, node) || tree.is_ancestor_or_equal(node, a.node))
}

/// Runs Tiresias (ADA) and the control-chart reference method over the
/// same injected stream and scores both.
pub fn run_practice(workload: &Workload, cfg: &PracticeConfig) -> PracticeResult {
    let tree = workload.tree();
    let config = HhhConfig::new(cfg.theta, cfg.ell)
        .with_model(cfg.model.clone())
        .with_split_rule(SplitRule::LongTermHistory)
        .with_ref_levels(2);

    let warmup_units = workload.generate_units(0, cfg.warmup);
    let mut ada = Ada::with_history(config, tree, &warmup_units).expect("valid configuration");
    let mut chart = ControlChartDetector::new(cfg.chart);
    for u in &warmup_units {
        chart.push_unit(tree, u);
    }

    let mut reference: Vec<(CategoryPath, u64)> = Vec::new();
    let mut reference_nodes: Vec<(NodeId, u64)> = Vec::new();
    let mut tiresias: Vec<(CategoryPath, u64)> = Vec::new();
    let mut tiresias_nodes: Vec<(NodeId, u64)> = Vec::new();
    let mut negatives: Vec<(CategoryPath, u64)> = Vec::new();

    for i in 0..cfg.instances {
        let unit_idx = (cfg.warmup + i) as u64;
        let unit = workload.generate_unit(unit_idx);
        ada.push_timeunit(tree, &unit);
        for n in chart.push_unit(tree, &unit) {
            reference.push((tree.path_of(n), unit_idx));
            reference_nodes.push((n, unit_idx));
        }
        for &n in ada.heavy_hitters() {
            let Some(view) = ada.view(n) else { continue };
            if is_anomalous(view.latest_actual, view.latest_forecast, cfg.rt, cfg.dt) {
                tiresias.push((tree.path_of(n), unit_idx));
                tiresias_nodes.push((n, unit_idx));
            } else {
                negatives.push((tree.path_of(n), unit_idx));
            }
        }
    }

    let report = ComparisonReport::score(&reference, &tiresias, &negatives);

    // NA level distribution, after removing alarms that have a flagged
    // descendant in the same unit (the paper's aggregation step).
    let na: Vec<(NodeId, u64)> = tiresias_nodes
        .iter()
        .copied()
        .filter(|&(n, u)| {
            !reference_nodes.iter().any(|&(r, ru)| ru == u && tree.is_ancestor_or_equal(r, n))
        })
        .collect();
    let deduped: Vec<(NodeId, u64)> = na
        .iter()
        .copied()
        .filter(|&(n, u)| {
            !na.iter().any(|&(m, mu)| mu == u && m != n && tree.is_ancestor_or_equal(n, m))
        })
        .collect();
    let mut na_by_level: Vec<(usize, usize)> = Vec::new();
    for depth in 1..=tree.max_depth() {
        let count = deduped.iter().filter(|&&(n, _)| tree.depth(n) == depth).count();
        na_by_level.push((depth, count));
    }

    // Scoring against the injected ground truth: TP/FN per injection,
    // FP per alarm unrelated to every injection.
    let score_truth = |flags: &[(NodeId, u64)]| -> ConfusionCounts {
        let mut c = ConfusionCounts::default();
        for a in workload.anomalies() {
            let caught = flags.iter().any(|&(n, u)| touches(tree, a, n, u));
            if caught {
                c.true_positives += 1;
            } else {
                c.false_negatives += 1;
            }
        }
        c.false_positives = flags
            .iter()
            .filter(|&&(n, u)| !workload.anomalies().iter().any(|a| touches(tree, a, n, u)))
            .count();
        c
    };

    PracticeResult {
        report,
        na_by_level,
        tiresias_truth: score_truth(&tiresias_nodes),
        chart_truth: score_truth(&reference_nodes),
        n_reference: reference.len(),
        n_tiresias: tiresias.len(),
    }
}

/// Injects a mixed-level anomaly schedule into `workload`: `count`
/// spikes at round-robin depths, spaced across `[start, end)` units.
/// Returns the injected ground truth.
pub fn inject_schedule(
    workload: &mut Workload,
    count: usize,
    start: u64,
    end: u64,
    magnitude: f64,
    seed: u64,
) -> Vec<InjectedAnomaly> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let tree = workload.tree().clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let max_depth = tree.max_depth();
    let span = (end - start).max(1);
    let mut injected = Vec::new();
    for i in 0..count {
        let depth = 1 + (i % max_depth);
        let nodes = tree.nodes_at_depth(depth);
        let node = nodes[rng.gen_range(0..nodes.len())];
        let at = start + (i as u64 * span) / count as u64;
        let duration = rng.gen_range(1..=4);
        // Deeper, smaller aggregates need proportionally smaller spikes
        // to be "large for their level" while staying hidden at level 1.
        let scale = 1.0 / (depth as f64).exp2();
        let a = InjectedAnomaly::new(node, at, duration, magnitude * scale.max(0.05));
        workload.inject(a);
        injected.push(a);
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::ccd_location_workload;

    fn quick_cfg() -> PracticeConfig {
        PracticeConfig {
            theta: 8.0,
            ell: 96,
            warmup: 48,
            instances: 96,
            model: ModelSpec::Ewma { alpha: 0.5 },
            rt: 2.5,
            dt: 8.0,
            chart: ControlChartConfig { level: 1, window: 48, k: 3.0, min_samples: 12 },
        }
    }

    #[test]
    fn tiresias_catches_more_injections_than_the_chart() {
        let mut w = ccd_location_workload(0.05, 150.0, 31);
        inject_schedule(&mut w, 8, 60, 140, 400.0, 32);
        let r = run_practice(&w, &quick_cfg());
        assert!(
            r.tiresias_truth.recall() >= r.chart_truth.recall(),
            "tiresias recall {} vs chart {}",
            r.tiresias_truth.recall(),
            r.chart_truth.recall()
        );
        assert!(r.tiresias_truth.recall() > 0.5, "recall {}", r.tiresias_truth.recall());
    }

    #[test]
    fn type_metrics_are_reasonable() {
        let mut w = ccd_location_workload(0.05, 150.0, 33);
        inject_schedule(&mut w, 6, 60, 140, 400.0, 34);
        let r = run_practice(&w, &quick_cfg());
        assert!(r.report.type1() > 0.5, "type1 {}", r.report.type1());
        // Type 2 only matters when the chart alarmed at all.
        if r.n_reference > 0 {
            assert!(r.report.type2() >= 0.0);
        }
    }

    #[test]
    fn na_levels_cover_hierarchy() {
        let mut w = ccd_location_workload(0.05, 150.0, 35);
        inject_schedule(&mut w, 6, 60, 140, 300.0, 36);
        let r = run_practice(&w, &quick_cfg());
        assert_eq!(r.na_by_level.len(), w.tree().max_depth());
    }
}
