//! Runtime and memory measurement runners behind Tables III and IV and
//! the §VII-A SCD summary.

use std::time::{Duration, Instant};

use tiresias_datagen::Workload;
use tiresias_hhh::{Ada, HhhConfig, MemoryReport, ModelSpec, SplitRule, Sta, StageTimings};

use crate::scenarios::coarsen_units;

/// Parameters of a performance run.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Heavy hitter threshold θ.
    pub theta: f64,
    /// Window length ℓ (in *coarse* units).
    pub ell: usize,
    /// Warm-up units (coarse).
    pub warmup: usize,
    /// Measured instances (coarse).
    pub instances: usize,
    /// Forecasting model.
    pub model: ModelSpec,
    /// How many base (15-minute) units aggregate into one timeunit
    /// (1 = 15 min, 4 = 1 hour — the Δ sweep of Table III).
    pub coarsen: usize,
    /// Reference-series levels for ADA.
    pub ref_levels: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            theta: 10.0,
            ell: 192,
            warmup: 96,
            instances: 96,
            model: ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 96 },
            coarsen: 1,
            ref_levels: 2,
        }
    }
}

/// Timings and memory of one ADA + STA run over an identical stream.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// Wall-clock time spent generating (= "reading") the trace, shared
    /// by both algorithms.
    pub reading: Duration,
    /// ADA stage timings.
    pub ada: StageTimings,
    /// STA stage timings.
    pub sta: StageTimings,
    /// ADA memory accounting at the end of the run.
    pub ada_mem: MemoryReport,
    /// STA memory accounting at the end of the run.
    pub sta_mem: MemoryReport,
    /// Number of processed instances.
    pub instances: usize,
}

impl PerfResult {
    /// STA/ADA total-time speedup including trace reading.
    pub fn speedup_total(&self) -> f64 {
        let ada = (self.ada.total() + self.reading).as_secs_f64();
        let sta = (self.sta.total() + self.reading).as_secs_f64();
        if ada > 0.0 {
            sta / ada
        } else {
            f64::INFINITY
        }
    }

    /// STA/ADA speedup excluding trace reading (the paper's 41–50×
    /// number).
    pub fn speedup_compute(&self) -> f64 {
        let ada = self.ada.total().as_secs_f64();
        let sta = self.sta.total().as_secs_f64();
        if ada > 0.0 {
            sta / ada
        } else {
            f64::INFINITY
        }
    }

    /// ADA memory as a fraction of STA memory (Table IV's ratio).
    pub fn memory_ratio(&self) -> f64 {
        let sta = self.sta_mem.total_cells();
        if sta == 0 {
            0.0
        } else {
            self.ada_mem.total_cells() as f64 / sta as f64
        }
    }
}

/// Runs ADA and STA over the same generated stream and reports stage
/// timings and memory.
pub fn run_perf(workload: &Workload, cfg: &PerfConfig) -> PerfResult {
    let tree = workload.tree();
    let base = HhhConfig::new(cfg.theta, cfg.ell)
        .with_model(cfg.model.clone())
        .with_split_rule(SplitRule::LongTermHistory)
        .with_ref_levels(cfg.ref_levels);

    // "Reading traces": generating the synthetic stream stands in for
    // parsing the raw logs; it is identical work for both algorithms.
    let t0 = Instant::now();
    let total_base_units = (cfg.warmup + cfg.instances) * cfg.coarsen;
    let base_units = workload.generate_units(0, total_base_units);
    let units = if cfg.coarsen > 1 { coarsen_units(&base_units, cfg.coarsen) } else { base_units };
    let reading = t0.elapsed();

    let (warmup_units, live_units) = units.split_at(cfg.warmup.min(units.len()));

    let mut ada = Ada::with_history(base.clone(), tree, warmup_units).expect("valid configuration");
    let mut sta = Sta::new(base).expect("valid configuration");
    for u in warmup_units {
        sta.push_timeunit(tree, u);
    }
    // Warm-up costs are excluded (cold-start effects, as in Table IV).
    let ada_warm = ada.timings();
    let sta_warm = sta.timings();

    for u in live_units {
        ada.push_timeunit(tree, u);
    }
    for u in live_units {
        sta.push_timeunit(tree, u);
    }

    let mut ada_t = ada.timings();
    let mut sta_t = sta.timings();
    ada_t.updating_hierarchies =
        ada_t.updating_hierarchies.saturating_sub(ada_warm.updating_hierarchies);
    ada_t.creating_time_series =
        ada_t.creating_time_series.saturating_sub(ada_warm.creating_time_series);
    sta_t.updating_hierarchies =
        sta_t.updating_hierarchies.saturating_sub(sta_warm.updating_hierarchies);
    sta_t.creating_time_series =
        sta_t.creating_time_series.saturating_sub(sta_warm.creating_time_series);

    PerfResult {
        reading,
        ada: ada_t,
        sta: sta_t,
        ada_mem: ada.memory_report(tree),
        sta_mem: sta.memory_report(tree),
        instances: live_units.len(),
    }
}

/// Memory accounting for ADA at several reference depths `h`, plus STA,
/// over the same stream (Table IV).
pub fn memory_sweep(
    workload: &Workload,
    cfg: &PerfConfig,
    ref_levels: &[usize],
) -> (Vec<(usize, MemoryReport)>, MemoryReport) {
    let tree = workload.tree();
    let units = workload.generate_units(0, cfg.warmup + cfg.instances);
    let mut ada_reports = Vec::new();
    for &h in ref_levels {
        let config =
            HhhConfig::new(cfg.theta, cfg.ell).with_model(cfg.model.clone()).with_ref_levels(h);
        let (warm, live) = units.split_at(cfg.warmup.min(units.len()));
        let mut ada = Ada::with_history(config, tree, warm).expect("valid configuration");
        for u in live {
            ada.push_timeunit(tree, u);
        }
        ada_reports.push((h, ada.memory_report(tree)));
    }
    let config = HhhConfig::new(cfg.theta, cfg.ell).with_model(cfg.model.clone());
    let mut sta = Sta::new(config).expect("valid configuration");
    for u in &units {
        sta.push_timeunit(tree, u);
    }
    (ada_reports, sta.memory_report(tree))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::ccd_trouble_workload;

    fn tiny_cfg() -> PerfConfig {
        PerfConfig {
            theta: 8.0,
            ell: 32,
            warmup: 16,
            instances: 16,
            model: ModelSpec::Ewma { alpha: 0.5 },
            coarsen: 1,
            ref_levels: 2,
        }
    }

    #[test]
    fn ada_is_faster_and_smaller_than_sta() {
        let w = ccd_trouble_workload(0.5, 80.0, 21);
        let r = run_perf(&w, &tiny_cfg());
        assert_eq!(r.instances, 16);
        assert!(r.speedup_compute() > 1.0, "speedup {}", r.speedup_compute());
        assert!(r.memory_ratio() < 1.0, "memory ratio {}", r.memory_ratio());
    }

    #[test]
    fn coarsening_reduces_instances() {
        let w = ccd_trouble_workload(0.3, 40.0, 22);
        let mut cfg = tiny_cfg();
        cfg.coarsen = 4;
        cfg.warmup = 4;
        cfg.instances = 4;
        let r = run_perf(&w, &cfg);
        assert_eq!(r.instances, 4);
    }

    #[test]
    fn memory_grows_with_reference_depth() {
        let w = ccd_trouble_workload(0.3, 60.0, 23);
        let (ada_reports, sta_report) = memory_sweep(&w, &tiny_cfg(), &[0, 1, 2]);
        assert_eq!(ada_reports.len(), 3);
        for pair in ada_reports.windows(2) {
            assert!(
                pair[0].1.total_cells() <= pair[1].1.total_cells(),
                "memory must not shrink as h grows"
            );
        }
        // STA keeps the full raw history, dwarfing ADA.
        assert!(sta_report.total_cells() > ada_reports[0].1.total_cells());
    }
}
