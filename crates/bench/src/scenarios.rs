//! Workload presets shared by the experiment binaries.

use tiresias_datagen::{
    ccd_location_spec, ccd_trouble_tree_with_mix, scd_location_spec, Workload, WorkloadConfig,
};

/// One day of 15-minute timeunits.
pub const UNITS_PER_DAY: usize = 96;
/// One week of 15-minute timeunits.
pub const UNITS_PER_WEEK: usize = 672;

/// CCD trouble-description workload with the Table-I ticket mix and the
/// CCD seasonal profile.
pub fn ccd_trouble_workload(scale: f64, base_rate: f64, seed: u64) -> Workload {
    let (tree, mix) = ccd_trouble_tree_with_mix(scale);
    Workload::with_popularity(tree, WorkloadConfig::ccd(base_rate), &mix, seed)
}

/// CCD network-location workload (SHO → VHO → IO → CO → DSLAM).
pub fn ccd_location_workload(scale: f64, base_rate: f64, seed: u64) -> Workload {
    let tree = ccd_location_spec(scale).build().expect("static spec is valid");
    Workload::new(tree, WorkloadConfig::ccd(base_rate), seed)
}

/// The CCD location workload with Zipfian mass over the top-level
/// (VHO) labels — the skewed traffic that motivates adaptive shard
/// rebalancing. `zipf_s` is the top-level Zipf exponent (`--zipf-s`).
pub fn ccd_location_workload_skewed(
    scale: f64,
    base_rate: f64,
    seed: u64,
    zipf_s: f64,
) -> Workload {
    let tree = ccd_location_spec(scale).build().expect("static spec is valid");
    Workload::new(tree, WorkloadConfig::ccd(base_rate).with_top_level_skew(zipf_s), seed)
}

/// SCD crash-log workload (National → CO → DSLAM → STB).
pub fn scd_workload(scale: f64, base_rate: f64, seed: u64) -> Workload {
    let tree = scd_location_spec(scale).build().expect("static spec is valid");
    Workload::new(tree, WorkloadConfig::scd(base_rate), seed)
}

/// Aggregates consecutive base units into coarser timeunits (e.g. four
/// 15-minute vectors into one 1-hour vector) — used by the Δ sweep of
/// Table III.
pub fn coarsen_units(units: &[Vec<f64>], factor: usize) -> Vec<Vec<f64>> {
    assert!(factor > 0, "aggregation factor must be positive");
    units
        .chunks(factor)
        .map(|chunk| {
            let len = chunk.iter().map(Vec::len).max().unwrap_or(0);
            let mut acc = vec![0.0; len];
            for u in chunk {
                for (a, v) in acc.iter_mut().zip(u.iter()) {
                    *a += *v;
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build() {
        let w = ccd_trouble_workload(0.3, 50.0, 1);
        assert!(w.tree().len() > 10);
        let w = ccd_location_workload(0.05, 50.0, 1);
        assert_eq!(w.tree().max_depth(), 4);
        let w = scd_workload(0.002, 50.0, 1);
        assert_eq!(w.tree().max_depth(), 3);
    }

    #[test]
    fn coarsen_sums_chunks() {
        let units = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let coarse = coarsen_units(&units, 2);
        assert_eq!(coarse, vec![vec![4.0, 6.0], vec![5.0, 6.0]]);
    }

    #[test]
    fn coarsen_handles_growing_trees() {
        let units = vec![vec![1.0], vec![2.0, 3.0]];
        let coarse = coarsen_units(&units, 2);
        assert_eq!(coarse, vec![vec![3.0, 3.0]]);
    }
}
