//! Criterion benchmarks of the end-to-end pipeline: synthetic trace
//! generation throughput and full detector ingestion (records and bulk
//! units).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use tiresias_bench::scenarios::ccd_trouble_workload;
use tiresias_core::{Record, TiresiasBuilder};

fn bench_datagen(c: &mut Criterion) {
    let workload = ccd_trouble_workload(1.0, 300.0, 7);
    let mut group = c.benchmark_group("datagen");
    group.throughput(Throughput::Elements(1));
    group.bench_function("generate_unit", |b| {
        let mut u = 0u64;
        b.iter(|| {
            u += 1;
            workload.generate_unit(black_box(u))
        })
    });
    group.finish();
}

fn bench_detector_records(c: &mut Criterion) {
    let workload = ccd_trouble_workload(0.5, 100.0, 8);
    // Pre-generate a batch of record-level events.
    let records: Vec<(String, u64)> = (0..16u64)
        .flat_map(|u| {
            let tree = workload.tree();
            workload
                .generate_records(u)
                .into_iter()
                .map(move |(n, t)| (tree.path_of(n).to_string(), t))
        })
        .collect();
    let mut group = c.benchmark_group("detector");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("push_records", |b| {
        b.iter_batched(
            || {
                TiresiasBuilder::new()
                    .timeunit_secs(900)
                    .window_len(96)
                    .threshold(8.0)
                    .season_length(24)
                    .warmup_units(8)
                    .build()
                    .expect("valid")
            },
            |mut d| {
                for (path, t) in &records {
                    d.push(Record::new(path, *t)).expect("in order");
                }
                d
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_detector_bulk(c: &mut Criterion) {
    let workload = ccd_trouble_workload(1.0, 300.0, 9);
    let units = workload.generate_units(0, 48);
    let tree = workload.tree();
    let mut group = c.benchmark_group("detector_bulk");
    group.sample_size(10);
    group.throughput(Throughput::Elements(units.len() as u64));
    group.bench_function("ingest_units", |b| {
        b.iter_batched(
            || {
                let mut d = TiresiasBuilder::new()
                    .timeunit_secs(900)
                    .window_len(192)
                    .threshold(10.0)
                    .season_length(96)
                    .warmup_units(16)
                    .build()
                    .expect("valid");
                // Adopt the workload tree so node ids line up.
                d.adopt_tree(tree.clone()).expect("fresh detector");
                d
            },
            |mut d| {
                for u in &units {
                    d.ingest_unit(u).expect("bulk ingest");
                }
                d
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_datagen, bench_detector_records, bench_detector_bulk);
criterion_main!(benches);
