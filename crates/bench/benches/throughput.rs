//! Criterion benchmarks of the ingest hot path: `&str` fast-path vs
//! seed-style `Record` ingestion through the full detector, plus the
//! underlying tree-resolution and SHHH primitives they lean on.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use tiresias_bench::scenarios::ccd_trouble_workload;
use tiresias_core::{Record, Tiresias, TiresiasBuilder};
use tiresias_hhh::{aggregate_weights_into, compute_shhh_into, ShhhResult};

fn detector() -> Tiresias {
    TiresiasBuilder::new()
        .timeunit_secs(900)
        .window_len(96)
        .threshold(10.0)
        .season_length(24)
        .sensitivity(2.8, 8.0)
        .warmup_units(4)
        .ref_levels(2)
        .build()
        .expect("valid config")
}

/// Pre-rendered `(path, timestamp)` stream of `units` timeunits.
fn record_stream(units: u64) -> Vec<(String, u64)> {
    let workload = ccd_trouble_workload(1.0, 500.0, 17);
    let tree = workload.tree();
    let mut records = Vec::new();
    for unit in 0..units {
        for (node, t) in workload.generate_records(unit) {
            records.push((tree.path_of(node).to_string(), t));
        }
    }
    records
}

fn bench_ingest_paths(c: &mut Criterion) {
    let records = record_stream(16);
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("push_record", |b| {
        b.iter_batched(
            detector,
            |mut d| {
                for (path, t) in &records {
                    d.push(Record::new(path, *t)).expect("in order");
                }
                d
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("push_str", |b| {
        b.iter_batched(
            detector,
            |mut d| {
                for (path, t) in &records {
                    d.push_str(path, *t).expect("in order");
                }
                d
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_tree_resolution(c: &mut Criterion) {
    let workload = ccd_trouble_workload(1.0, 500.0, 17);
    let mut tree = workload.tree().clone();
    let paths: Vec<String> =
        tree.iter().filter(|&n| tree.is_leaf(n)).map(|n| tree.path_of(n).to_string()).collect();
    // Warm the memo the way an ingesting detector would.
    let warm: Vec<_> = paths.iter().map(|p| tree.insert_str(p)).collect();
    black_box(warm);
    let mut group = c.benchmark_group("tree");
    group.throughput(Throughput::Elements(paths.len() as u64));
    group.bench_function("insert_str_warm", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in &paths {
                acc += tree.insert_str(black_box(p)).index();
            }
            acc
        })
    });
    group.bench_function("resolve_str_warm", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in &paths {
                acc += tree.resolve_str(black_box(p)).expect("warm path").index();
            }
            acc
        })
    });
    group.finish();
}

fn bench_shhh_scratch(c: &mut Criterion) {
    let workload = ccd_trouble_workload(1.0, 500.0, 17);
    let tree = workload.tree();
    let unit = workload.generate_unit(3);
    let mut scratch = ShhhResult::default();
    let mut agg = Vec::new();
    let mut group = c.benchmark_group("shhh");
    group.bench_function("compute_shhh_into", |b| {
        b.iter(|| {
            compute_shhh_into(black_box(tree), black_box(&unit), 10.0, &mut scratch);
            scratch.members.len()
        })
    });
    group.bench_function("aggregate_weights_into", |b| {
        b.iter(|| {
            aggregate_weights_into(black_box(tree), black_box(&unit), &mut agg);
            agg.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ingest_paths, bench_tree_resolution, bench_shhh_scratch);
criterion_main!(benches);
