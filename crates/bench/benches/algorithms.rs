//! Criterion micro-benchmarks of the algorithmic substrates: SHHH
//! computation, ADA vs STA per-instance cost, split-ratio derivation,
//! Holt-Winters updates, FFT, wavelet decomposition and multi-scale
//! series updates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use tiresias_bench::scenarios::ccd_trouble_workload;
use tiresias_hhh::{
    aggregate_weights, compute_shhh, Ada, HhhConfig, ModelSpec, SplitRule, SplitStats, Sta,
};
use tiresias_spectral::{fft, AtrousTransform, Complex};
use tiresias_timeseries::{Forecaster, HoltWinters, MultiScaleSeries};

fn bench_shhh(c: &mut Criterion) {
    let workload = ccd_trouble_workload(1.0, 300.0, 1);
    let tree = workload.tree();
    let unit = workload.generate_unit(64);
    c.bench_function("shhh_computation", |b| {
        b.iter(|| compute_shhh(black_box(tree), black_box(&unit), 10.0))
    });
    c.bench_function("aggregate_weights", |b| {
        b.iter(|| aggregate_weights(black_box(tree), black_box(&unit)))
    });
}

fn bench_ada_vs_sta(c: &mut Criterion) {
    let workload = ccd_trouble_workload(1.0, 300.0, 2);
    let tree = workload.tree();
    let model = ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 96 };
    let config = HhhConfig::new(10.0, 192).with_model(model);
    let history = workload.generate_units(0, 96);
    let units: Vec<Vec<f64>> = workload.generate_units(96, 32);

    let mut group = c.benchmark_group("instance_update");
    group.sample_size(10);
    group.bench_function("ada", |b| {
        b.iter_batched(
            || Ada::with_history(config.clone(), tree, &history).expect("valid"),
            |mut ada| {
                for u in &units {
                    ada.push_timeunit(tree, u);
                }
                ada
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("sta", |b| {
        b.iter_batched(
            || {
                let mut sta = Sta::new(config.clone()).expect("valid");
                for u in &history {
                    sta.push_timeunit(tree, u);
                }
                sta
            },
            |mut sta| {
                for u in &units {
                    sta.push_timeunit(tree, u);
                }
                sta
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_split_rules(c: &mut Criterion) {
    let workload = ccd_trouble_workload(1.0, 300.0, 3);
    let tree = workload.tree();
    let mut stats = SplitStats::with_len(tree.len());
    for u in 0..8 {
        let agg = aggregate_weights(tree, &workload.generate_unit(u));
        stats.record_unit(&agg, 0.4);
    }
    let children = tree.children(tree.root()).to_vec();
    let mut group = c.benchmark_group("split_ratios");
    for rule in [
        SplitRule::Uniform,
        SplitRule::LastTimeUnit,
        SplitRule::LongTermHistory,
        SplitRule::Ewma { alpha: 0.4 },
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(rule), &rule, |b, &rule| {
            b.iter(|| stats.ratios(rule, black_box(&children)))
        });
    }
    group.finish();
}

fn bench_holt_winters(c: &mut Criterion) {
    let hist: Vec<f64> = (0..192).map(|t| 50.0 + 20.0 * ((t % 96) as f64 / 96.0).sin()).collect();
    c.bench_function("holt_winters_update", |b| {
        let mut hw = HoltWinters::from_history(0.5, 0.05, 0.3, 96, &hist).expect("valid");
        b.iter(|| {
            hw.observe(black_box(55.0));
            hw.forecast()
        })
    });
}

fn bench_fft_wavelet(c: &mut Criterion) {
    let signal: Vec<Complex> = (0..4096)
        .map(|t| Complex::from_real((t as f64 / 96.0 * std::f64::consts::TAU).sin()))
        .collect();
    c.bench_function("fft_4096", |b| b.iter(|| fft(black_box(&signal))));
    let real: Vec<f64> = signal.iter().map(|z| z.re).collect();
    c.bench_function("wavelet_atrous_4096x8", |b| {
        let t = AtrousTransform::new(8);
        b.iter(|| t.decompose(black_box(&real)))
    });
}

fn bench_multiscale(c: &mut Criterion) {
    c.bench_function("multiscale_update", |b| {
        let mut ms = MultiScaleSeries::new(4, 3, 672, 0.5).expect("valid");
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.0;
            ms.update(black_box(x % 17.0));
        })
    });
}

criterion_group!(
    benches,
    bench_shhh,
    bench_ada_vs_sta,
    bench_split_rules,
    bench_holt_winters,
    bench_fft_wavelet,
    bench_multiscale
);
criterion_main!(benches);
