use serde::{Deserialize, Serialize};

/// Deterministic seasonal arrival-rate model (records per timeunit).
///
/// Reproduces the shape the paper measures on operational data (§II-B,
/// Fig. 2): a diurnal pattern peaking around 4 PM with a 4 AM trough,
/// overlaid with a weekly pattern that damps weekends (strong in CCD —
/// people call support during business days — and weak in SCD).
///
/// The instantaneous rate is
/// `base · diurnal(t) · weekly(t)`, where both factors are smooth,
/// strictly positive multipliers. Randomness (Poisson sampling, noise)
/// is applied by [`crate::Workload`] on top of this deterministic curve.
///
/// # Example
///
/// ```
/// use tiresias_datagen::ArrivalModel;
///
/// let m = ArrivalModel::ccd(100.0);
/// let peak = m.rate_at(16 * 3600);        // 4 PM, day 0 (a Monday)
/// let trough = m.rate_at(4 * 3600);       // 4 AM
/// assert!(peak / trough > 5.0, "pronounced diurnal swing");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalModel {
    /// Mean records per timeunit at a neutral (multiplier = 1) moment.
    pub base_rate: f64,
    /// Diurnal swing in `[0, 1)`: 0 = flat, →1 = extreme peak/trough
    /// ratio.
    pub diurnal_amp: f64,
    /// Weekend damping in `[0, 1)`: weekend rate ≈ `(1 − weekly_amp)` of
    /// a weekday.
    pub weekly_amp: f64,
    /// Hour of the daily peak (the paper observes ≈ 16).
    pub peak_hour: f64,
}

const DAY_SECS: f64 = 86_400.0;
const WEEK_SECS: f64 = 7.0 * 86_400.0;

impl ArrivalModel {
    /// CCD-like configuration: strong diurnal and clear weekly pattern.
    pub fn ccd(base_rate: f64) -> Self {
        ArrivalModel { base_rate, diurnal_amp: 0.75, weekly_amp: 0.45, peak_hour: 16.0 }
    }

    /// SCD-like configuration: visible diurnal pattern, weak weekly
    /// pattern, lower variance overall.
    pub fn scd(base_rate: f64) -> Self {
        ArrivalModel { base_rate, diurnal_amp: 0.45, weekly_amp: 0.10, peak_hour: 16.0 }
    }

    /// Flat configuration with no seasonality (useful in tests).
    pub fn flat(base_rate: f64) -> Self {
        ArrivalModel { base_rate, diurnal_amp: 0.0, weekly_amp: 0.0, peak_hour: 16.0 }
    }

    /// Diurnal multiplier at `t` seconds since the epoch of the trace
    /// (t = 0 is midnight starting a Monday).
    pub fn diurnal_multiplier(&self, t_secs: u64) -> f64 {
        let hour = (t_secs as f64 % DAY_SECS) / 3600.0;
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        1.0 + self.diurnal_amp * phase.cos()
    }

    /// Weekly multiplier; days 5 and 6 (Saturday, Sunday) are damped
    /// with smooth shoulders.
    pub fn weekly_multiplier(&self, t_secs: u64) -> f64 {
        let day = (t_secs as f64 % WEEK_SECS) / DAY_SECS; // 0 = Monday
                                                          // Smooth bump centred on the weekend (day 5.5 ± 1).
        let dist = (day - 5.5).abs();
        if dist < 1.0 {
            1.0 - self.weekly_amp * (0.5 + 0.5 * (dist * std::f64::consts::PI).cos())
        } else {
            1.0
        }
    }

    /// Mean arrivals per timeunit at time `t_secs`.
    pub fn rate_at(&self, t_secs: u64) -> f64 {
        self.base_rate * self.diurnal_multiplier(t_secs) * self.weekly_multiplier(t_secs)
    }
}

impl Default for ArrivalModel {
    fn default() -> Self {
        ArrivalModel::ccd(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_at_configured_hour() {
        let m = ArrivalModel::ccd(10.0);
        let peak = m.rate_at(16 * 3600);
        for h in [0u64, 4, 8, 12, 20] {
            assert!(m.rate_at(h * 3600) <= peak + 1e-9, "hour {h}");
        }
    }

    #[test]
    fn trough_is_opposite_the_peak() {
        let m = ArrivalModel::ccd(10.0);
        let trough = m.rate_at(4 * 3600);
        for h in [0u64, 8, 12, 16, 20] {
            assert!(m.rate_at(h * 3600) >= trough - 1e-9, "hour {h}");
        }
    }

    #[test]
    fn weekend_is_damped_for_ccd() {
        let m = ArrivalModel::ccd(10.0);
        let monday_noon = m.rate_at(12 * 3600);
        let saturday_noon = m.rate_at((5 * 24 + 12) * 3600);
        assert!(saturday_noon < monday_noon * 0.75);
    }

    #[test]
    fn scd_weekly_pattern_is_weak() {
        let m = ArrivalModel::scd(10.0);
        let monday_noon = m.rate_at(12 * 3600);
        let saturday_noon = m.rate_at((5 * 24 + 12) * 3600);
        assert!(saturday_noon > monday_noon * 0.85);
    }

    #[test]
    fn rates_are_strictly_positive() {
        for m in [ArrivalModel::ccd(5.0), ArrivalModel::scd(5.0), ArrivalModel::flat(5.0)] {
            for t in (0..WEEK_SECS as u64).step_by(3600) {
                assert!(m.rate_at(t) > 0.0);
            }
        }
    }

    #[test]
    fn flat_model_is_constant() {
        let m = ArrivalModel::flat(7.0);
        for t in (0..WEEK_SECS as u64).step_by(1800) {
            assert!((m.rate_at(t) - 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn volatility_ratio_is_pronounced() {
        // The paper reports a 90th/10th percentile ratio around 35 for the
        // CCD root; our deterministic curve (before Poisson noise) should
        // already show a large swing.
        let m = ArrivalModel::ccd(100.0);
        let mut rates: Vec<f64> = (0..7 * 96).map(|u| m.rate_at(u * 900)).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p10 = rates[rates.len() / 10];
        let p90 = rates[rates.len() * 9 / 10];
        assert!(p90 / p10 > 3.0, "p90/p10 = {}", p90 / p10);
    }
}
