use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use tiresias_hierarchy::{NodeId, Tree};

use crate::arrival::ArrivalModel;
use crate::inject::InjectedAnomaly;
use crate::rand_util::{poisson, sample_cumulative, zipf_weights};

/// Configuration of a synthetic operational workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Timeunit size Δ in seconds (the paper uses 900 = 15 minutes).
    pub timeunit_secs: u64,
    /// Seasonal arrival-rate curve.
    pub arrival: ArrivalModel,
    /// Zipf exponent of the leaf-popularity distribution; larger values
    /// concentrate mass on fewer leaves (sparser low levels).
    pub zipf_exponent: f64,
    /// Standard deviation of a lognormal per-unit rate perturbation, in
    /// log space. Adds the super-Poisson volatility the paper observes;
    /// 0 disables it.
    pub noise_sigma: f64,
    /// Zipf exponent over the **top-level subtrees** (the `--zipf-s`
    /// CLI knob): each top-level label gets a Zipf-distributed share of
    /// the total mass, so traffic concentrates on a few hot prefixes —
    /// the skew that motivates adaptive shard rebalancing. `0.0`
    /// (default) keeps top-level mass driven by leaf popularity alone.
    pub top_level_skew: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            timeunit_secs: 900,
            arrival: ArrivalModel::ccd(200.0),
            zipf_exponent: 1.0,
            noise_sigma: 0.2,
            top_level_skew: 0.0,
        }
    }
}

impl WorkloadConfig {
    /// CCD-flavoured workload: strong diurnal + weekly seasonality,
    /// pronounced volatility.
    pub fn ccd(base_rate: f64) -> Self {
        WorkloadConfig {
            timeunit_secs: 900,
            arrival: ArrivalModel::ccd(base_rate),
            zipf_exponent: 1.0,
            noise_sigma: 0.25,
            top_level_skew: 0.0,
        }
    }

    /// SCD-flavoured workload: daily seasonality only, lower variance.
    pub fn scd(base_rate: f64) -> Self {
        WorkloadConfig {
            timeunit_secs: 900,
            arrival: ArrivalModel::scd(base_rate),
            zipf_exponent: 0.8,
            noise_sigma: 0.1,
            top_level_skew: 0.0,
        }
    }

    /// Sets the Zipf exponent over top-level subtrees (`--zipf-s`):
    /// `0.0` disables the skew, `1.0` yields the classic heavy head
    /// (the hottest prefix carries a multiple of the mean), larger
    /// values concentrate further.
    #[must_use]
    pub fn with_top_level_skew(mut self, s: f64) -> Self {
        self.top_level_skew = s;
        self
    }
}

/// A reproducible synthetic operational-data stream over a hierarchy.
///
/// Each timeunit's records are drawn as `Poisson(rate(t) · noise)` total
/// arrivals, assigned to leaves by a Zipf popularity distribution, plus
/// any [`InjectedAnomaly`] mass whose span covers the unit. The
/// generator is deterministic for a given seed, so experiments comparing
/// algorithms replay identical streams.
///
/// # Example
///
/// ```
/// use tiresias_datagen::{Workload, WorkloadConfig};
/// use tiresias_hierarchy::HierarchySpec;
///
/// let tree = HierarchySpec::new("All").level("A", 3).level("B", 4).build()?;
/// let mut w = Workload::new(tree, WorkloadConfig::default(), 7);
/// let units = w.generate_units(0, 4);
/// assert_eq!(units.len(), 4);
/// // Two workloads with the same seed produce the same stream.
/// let mut w2 = Workload::new(w.tree().clone(), WorkloadConfig::default(), 7);
/// assert_eq!(w2.generate_units(0, 4), units);
/// # Ok::<(), tiresias_hierarchy::HierarchyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    tree: Tree,
    config: WorkloadConfig,
    leaves: Vec<NodeId>,
    /// Cumulative leaf popularity for O(log n) sampling.
    cumulative: Vec<f64>,
    anomalies: Vec<InjectedAnomaly>,
    seed: u64,
}

impl Workload {
    /// Creates a workload over `tree` with Zipf-shuffled leaf
    /// popularity.
    ///
    /// # Panics
    ///
    /// Panics if the tree has no leaves besides the root.
    pub fn new(tree: Tree, config: WorkloadConfig, seed: u64) -> Self {
        let leaves: Vec<NodeId> =
            tree.iter().filter(|&n| tree.is_leaf(n) && n != tree.root()).collect();
        assert!(!leaves.is_empty(), "workload needs at least one leaf category");
        let mut weights = zipf_weights(leaves.len(), config.zipf_exponent);
        // Shuffle deterministically so popularity is not correlated with
        // sibling order.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_1234);
        for i in (1..weights.len()).rev() {
            let j = rng.gen_range(0..=i);
            weights.swap(i, j);
        }
        if config.top_level_skew > 0.0 {
            // Top-level skew: scale every leaf by a Zipf share assigned
            // to its top-level subtree (own deterministic shuffle, so
            // which prefix is hot is seed-dependent but reproducible).
            let tops: Vec<NodeId> = tree.children(tree.root()).to_vec();
            let mut shares = zipf_weights(tops.len().max(1), config.top_level_skew);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x70b0_5eed);
            for i in (1..shares.len()).rev() {
                let j = rng.gen_range(0..=i);
                shares.swap(i, j);
            }
            // Rescale so each subtree's total mass IS its Zipf share
            // (leaf popularity only shapes the mix *within* a subtree).
            let top_index: Vec<Option<usize>> = leaves
                .iter()
                .map(|&l| {
                    let top = top_ancestor(&tree, l);
                    tops.iter().position(|&t| t == top)
                })
                .collect();
            let mut subtree_mass = vec![0.0f64; tops.len()];
            for (w, i) in weights.iter().zip(&top_index) {
                if let Some(i) = *i {
                    subtree_mass[i] += w;
                }
            }
            for (weight, i) in weights.iter_mut().zip(&top_index) {
                if let Some(i) = *i {
                    if subtree_mass[i] > 0.0 {
                        *weight *= shares[i] / subtree_mass[i];
                    }
                }
            }
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        Workload { tree, config, leaves, cumulative, anomalies: Vec::new(), seed }
    }

    /// Creates a workload with explicit per-node popularity mass
    /// (e.g. from [`crate::ccd_trouble_tree_with_mix`]). Only leaf slots
    /// may carry mass.
    ///
    /// # Panics
    ///
    /// Panics if `mass` is shorter than the tree or carries no mass.
    pub fn with_popularity(tree: Tree, config: WorkloadConfig, mass: &[f64], seed: u64) -> Self {
        assert!(mass.len() >= tree.len(), "popularity must cover the tree");
        let leaves: Vec<NodeId> =
            tree.iter().filter(|&n| tree.is_leaf(n) && mass[n.index()] > 0.0).collect();
        assert!(!leaves.is_empty(), "popularity mass is empty");
        let mut cumulative = Vec::with_capacity(leaves.len());
        let mut acc = 0.0;
        for &l in &leaves {
            acc += mass[l.index()];
            cumulative.push(acc);
        }
        Workload { tree, config, leaves, cumulative, anomalies: Vec::new(), seed }
    }

    /// Registers an injected anomaly (may be called repeatedly).
    pub fn inject(&mut self, anomaly: InjectedAnomaly) -> &mut Self {
        self.anomalies.push(anomaly);
        self
    }

    /// The hierarchy this workload generates over.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The configuration in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The registered ground-truth anomalies.
    pub fn anomalies(&self) -> &[InjectedAnomaly] {
        &self.anomalies
    }

    /// The deterministic mean arrival rate at `unit` (before noise and
    /// injections).
    pub fn rate_at_unit(&self, unit: u64) -> f64 {
        self.config.arrival.rate_at(unit * self.config.timeunit_secs)
    }

    /// Generates the dense direct-count vector of one timeunit
    /// (indexed by [`NodeId::index`]; only leaf slots are non-zero).
    ///
    /// Generation is independent per unit (seeded by `(seed, unit)`), so
    /// units can be produced in any order and reproduce exactly.
    pub fn generate_unit(&self, unit: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ unit);
        let mut counts = vec![0.0; self.tree.len()];
        // Baseline seasonal arrivals.
        let mut rate = self.rate_at_unit(unit);
        if self.config.noise_sigma > 0.0 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            rate *= (self.config.noise_sigma * z).exp();
        }
        let n = poisson(&mut rng, rate);
        for _ in 0..n {
            let leaf = self.leaves[sample_cumulative(&mut rng, &self.cumulative)];
            counts[leaf.index()] += 1.0;
        }
        // Injected anomaly mass.
        for a in &self.anomalies {
            if !a.covers_unit(unit) {
                continue;
            }
            let extra = poisson(&mut rng, a.extra_per_unit);
            let targets: Vec<NodeId> =
                self.tree.subtree(a.node).filter(|&d| self.tree.is_leaf(d)).collect();
            if targets.is_empty() {
                counts[a.node.index()] += extra as f64;
            } else {
                for _ in 0..extra {
                    let t = targets[rng.gen_range(0..targets.len())];
                    counts[t.index()] += 1.0;
                }
            }
        }
        counts
    }

    /// Generates `n` consecutive timeunits starting at `start`.
    pub fn generate_units(&self, start: u64, n: usize) -> Vec<Vec<f64>> {
        (0..n as u64).map(|i| self.generate_unit(start + i)).collect()
    }

    /// Generates individual `(leaf, timestamp_secs)` records for one
    /// timeunit — the record-level view used by the streaming examples.
    /// Timestamps are uniform within the unit.
    pub fn generate_records(&self, unit: u64) -> Vec<(NodeId, u64)> {
        let counts = self.generate_unit(unit);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0xd134_2543_de82_ef95) ^ unit);
        let base = unit * self.config.timeunit_secs;
        let mut records = Vec::new();
        for n in self.tree.iter() {
            for _ in 0..counts[n.index()] as u64 {
                records.push((n, base + rng.gen_range(0..self.config.timeunit_secs)));
            }
        }
        records.sort_by_key(|&(_, t)| t);
        records
    }
}

/// The child of the root on `n`'s path (or `n` itself when it hangs
/// directly off the root) — the subtree a shard router assigns.
fn top_ancestor(tree: &Tree, mut n: NodeId) -> NodeId {
    while let Some(p) = tree.parent(n) {
        if p == tree.root() {
            return n;
        }
        n = p;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiresias_hierarchy::HierarchySpec;

    fn small_tree() -> Tree {
        HierarchySpec::new("All").level("A", 4).level("B", 5).build().unwrap()
    }

    fn flat_config(rate: f64) -> WorkloadConfig {
        WorkloadConfig {
            timeunit_secs: 900,
            arrival: ArrivalModel::flat(rate),
            zipf_exponent: 1.0,
            noise_sigma: 0.0,
            top_level_skew: 0.0,
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let w1 = Workload::new(small_tree(), WorkloadConfig::default(), 99);
        let w2 = Workload::new(small_tree(), WorkloadConfig::default(), 99);
        assert_eq!(w1.generate_unit(5), w2.generate_unit(5));
        let w3 = Workload::new(small_tree(), WorkloadConfig::default(), 100);
        assert_ne!(w1.generate_unit(5), w3.generate_unit(5));
    }

    #[test]
    fn units_are_independent_of_generation_order() {
        let w = Workload::new(small_tree(), WorkloadConfig::default(), 1);
        let early_then_late = (w.generate_unit(3), w.generate_unit(10));
        let late_then_early = (w.generate_unit(10), w.generate_unit(3));
        assert_eq!(early_then_late.0, late_then_early.1);
        assert_eq!(early_then_late.1, late_then_early.0);
    }

    #[test]
    fn mean_count_tracks_rate() {
        let w = Workload::new(small_tree(), flat_config(50.0), 2);
        let total: f64 = (0..200).map(|u| w.generate_unit(u).iter().sum::<f64>()).sum();
        let mean = total / 200.0;
        assert!((mean - 50.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn counts_only_on_leaves() {
        let w = Workload::new(small_tree(), flat_config(100.0), 3);
        let counts = w.generate_unit(0);
        for n in w.tree().iter() {
            if !w.tree().is_leaf(n) {
                assert_eq!(counts[n.index()], 0.0);
            }
        }
    }

    #[test]
    fn injection_adds_mass_under_target() {
        let tree = small_tree();
        let target = tree.find(&["A-2"]).unwrap();
        let mut w = Workload::new(tree, flat_config(10.0), 4);
        w.inject(InjectedAnomaly::new(target, 5, 2, 500.0));
        let normal = w.generate_unit(4);
        let burst = w.generate_unit(5);
        let sum_under =
            |counts: &[f64]| -> f64 { w.tree().subtree(target).map(|n| counts[n.index()]).sum() };
        assert!(sum_under(&burst) > sum_under(&normal) + 300.0);
        // Outside the span the stream is unaffected in expectation.
        let after = w.generate_unit(7);
        assert!(sum_under(&after) < 100.0);
    }

    #[test]
    fn popularity_mass_constructor_respects_mass() {
        let tree = small_tree();
        let mut mass = vec![0.0; tree.len()];
        // All mass on a single leaf.
        let leaf = tree.find(&["A-0", "B-0"]).unwrap();
        mass[leaf.index()] = 1.0;
        let w = Workload::with_popularity(tree, flat_config(40.0), &mass, 5);
        let counts = w.generate_unit(0);
        let total: f64 = counts.iter().sum();
        assert_eq!(counts[leaf.index()], total);
        assert!(total > 0.0);
    }

    #[test]
    fn records_match_unit_counts() {
        let w = Workload::new(small_tree(), flat_config(30.0), 6);
        let counts = w.generate_unit(2);
        let records = w.generate_records(2);
        assert_eq!(records.len() as f64, counts.iter().sum::<f64>());
        for (node, t) in &records {
            assert!(w.tree().is_leaf(*node));
            assert!(*t >= 2 * 900 && *t < 3 * 900);
        }
        // Sorted by time.
        for pair in records.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn diurnal_config_produces_seasonal_stream() {
        let w = Workload::new(small_tree(), WorkloadConfig::ccd(100.0), 8);
        // Compare 4 PM vs 4 AM on day 0 (Monday): 64th vs 16th unit.
        let peak: f64 = w.generate_unit(64).iter().sum();
        let trough: f64 = w.generate_unit(16).iter().sum();
        assert!(peak > trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn top_level_skew_concentrates_mass_on_a_hot_prefix() {
        let per_top_mass = |skew: f64| -> Vec<f64> {
            let w = Workload::new(small_tree(), flat_config(400.0).with_top_level_skew(skew), 11);
            let totals: Vec<f64> = (0..40).map(|u| w.generate_unit(u)).fold(
                vec![0.0; w.tree().children(w.tree().root()).len()],
                |mut acc, counts| {
                    for (i, &top) in w.tree().children(w.tree().root()).iter().enumerate() {
                        acc[i] += w.tree().subtree(top).map(|n| counts[n.index()]).sum::<f64>();
                    }
                    acc
                },
            );
            totals
        };
        let ratio = |totals: &[f64]| {
            let worst = totals.iter().cloned().fold(0.0f64, f64::max);
            worst / (totals.iter().sum::<f64>() / totals.len() as f64)
        };
        let skewed = ratio(&per_top_mass(1.5));
        let uniform = ratio(&per_top_mass(0.0));
        assert!(skewed > 2.0, "skewed worst/mean {skewed}");
        assert!(skewed > uniform + 0.5, "skewed {skewed} vs uniform {uniform}");
        // Still deterministic per seed.
        assert_eq!(per_top_mass(1.5), per_top_mass(1.5));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn rootonly_tree_panics() {
        let _ = Workload::new(Tree::new("r"), WorkloadConfig::default(), 0);
    }
}
