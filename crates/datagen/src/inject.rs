use serde::{Deserialize, Serialize};

use tiresias_hierarchy::NodeId;

/// A ground-truth anomaly injected into a synthetic workload: extra
/// arrival mass concentrated under one hierarchy node for a span of
/// timeunits.
///
/// Injected anomalies replace the paper's ISP-verified reference set
/// (§VII-B): because the injection is known exactly, true/false
/// positives can be scored without an operational team.
///
/// # Example
///
/// ```
/// use tiresias_datagen::InjectedAnomaly;
/// use tiresias_hierarchy::Tree;
///
/// let mut tree = Tree::new("All");
/// let vho = tree.insert_path(&["VHO-3"]);
/// let spike = InjectedAnomaly::new(vho, 40, 4, 150.0);
/// assert!(spike.covers_unit(41));
/// assert!(!spike.covers_unit(44));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectedAnomaly {
    /// The hierarchy node the burst is centred on; extra records fall on
    /// leaves under this node.
    pub node: NodeId,
    /// First affected timeunit.
    pub start_unit: u64,
    /// Number of affected timeunits (≥ 1).
    pub duration_units: u64,
    /// Extra mean arrivals per affected timeunit (Poisson-distributed).
    pub extra_per_unit: f64,
}

impl InjectedAnomaly {
    /// Creates an injected anomaly.
    pub fn new(node: NodeId, start_unit: u64, duration_units: u64, extra_per_unit: f64) -> Self {
        InjectedAnomaly { node, start_unit, duration_units: duration_units.max(1), extra_per_unit }
    }

    /// `true` iff `unit` falls inside the anomaly's span.
    pub fn covers_unit(&self, unit: u64) -> bool {
        unit >= self.start_unit && unit < self.start_unit + self.duration_units
    }

    /// Last affected timeunit (inclusive).
    pub fn end_unit(&self) -> u64 {
        self.start_unit + self.duration_units - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiresias_hierarchy::Tree;

    #[test]
    fn span_arithmetic() {
        let mut tree = Tree::new("r");
        let n = tree.insert_path(&["a"]);
        let a = InjectedAnomaly::new(n, 10, 3, 50.0);
        assert!(!a.covers_unit(9));
        assert!(a.covers_unit(10));
        assert!(a.covers_unit(12));
        assert!(!a.covers_unit(13));
        assert_eq!(a.end_unit(), 12);
    }

    #[test]
    fn zero_duration_is_clamped_to_one() {
        let mut tree = Tree::new("r");
        let n = tree.insert_path(&["a"]);
        let a = InjectedAnomaly::new(n, 5, 0, 10.0);
        assert_eq!(a.duration_units, 1);
        assert!(a.covers_unit(5));
    }
}
