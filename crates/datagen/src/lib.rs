//! Synthetic operational-data generators for Tiresias.
//!
//! The paper evaluates Tiresias on two proprietary datasets from a Tier-1
//! US broadband provider: customer care call records (**CCD**) and
//! set-top-box crash logs (**SCD**). Those traces are not available, so
//! this crate builds statistically matched substitutes that reproduce
//! every property the paper's algorithms are sensitive to (§II):
//!
//! * **hierarchy shape** — per-level fan-outs from Table II
//!   ([`ccd_trouble_spec`], [`ccd_location_spec`], [`scd_location_spec`]),
//! * **first-level category mix** — Table I's ticket distribution
//!   ([`CCD_TICKET_MIX`]),
//! * **sparsity & heavy tail** — Zipf-distributed leaf popularity, so
//!   low-level nodes are empty most timeunits while localized bursts
//!   occur (Fig. 1),
//! * **volatility & seasonality** — a diurnal rate curve peaking at 4 PM
//!   with a 4 AM trough, a weekly factor damping weekends, and Poisson
//!   arrivals on top ([`ArrivalModel`], Fig. 2),
//! * **anomalies** — injected spikes at chosen nodes/levels with exact
//!   ground truth ([`InjectedAnomaly`]), replacing the ISP's verified
//!   reference set.
//!
//! # Example
//!
//! ```
//! use tiresias_datagen::{ArrivalModel, Workload, WorkloadConfig};
//! use tiresias_hierarchy::HierarchySpec;
//!
//! let tree = HierarchySpec::new("All").level("VHO", 4).level("IO", 3).build()?;
//! let config = WorkloadConfig::default();
//! let mut w = Workload::new(tree, config, 42);
//! let unit = w.generate_unit(0);
//! assert_eq!(unit.len(), w.tree().len());
//! # Ok::<(), tiresias_hierarchy::HierarchyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod inject;
mod rand_util;
mod specs;
mod workload;

pub use arrival::ArrivalModel;
pub use inject::InjectedAnomaly;
pub use rand_util::poisson;
pub use specs::{
    ccd_location_spec, ccd_trouble_spec, ccd_trouble_tree_with_mix, scd_location_spec,
    CCD_TICKET_MIX,
};
pub use workload::{Workload, WorkloadConfig};
