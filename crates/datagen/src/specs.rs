use tiresias_hierarchy::{HierarchySpec, Tree};

/// The paper's Table I: distribution of CCD customer tickets over the
/// first-level trouble categories, in percent.
pub const CCD_TICKET_MIX: [(&str, f64); 7] = [
    ("TV", 39.59),
    ("All Products", 26.71),
    ("Internet", 10.04),
    ("Wireless", 9.26),
    ("Phone", 8.46),
    ("Email", 3.59),
    ("Remote Control", 2.35),
];

/// CCD trouble-description hierarchy (Table II): depth 5 with typical
/// degrees 9 / 6 / 3 / 5 below the root.
///
/// Pass `scale` in `(0, 1]` to shrink the first-level fan-outs for quick
/// tests; `1.0` reproduces the paper's dimensions (≈ 1 000 leaves).
pub fn ccd_trouble_spec(scale: f64) -> HierarchySpec {
    let s = scale.clamp(0.05, 1.0);
    HierarchySpec::new("Trouble")
        .level("Cat", ((9.0 * s).round() as usize).max(2))
        .level("Sub", ((6.0 * s).round() as usize).max(2))
        .level("Symptom", 3)
        .level("Action", 5)
}

/// CCD network-path hierarchy (Table II): depth 5 with typical degrees
/// 61 / 5 / 6 / 24 below the SHO root (≈ 44 000 DSLAM leaves at full
/// scale).
pub fn ccd_location_spec(scale: f64) -> HierarchySpec {
    let s = scale.clamp(0.02, 1.0);
    HierarchySpec::new("SHO")
        .level("VHO", ((61.0 * s).round() as usize).max(2))
        .level("IO", 5)
        .level("CO", 6)
        .level("DSLAM", ((24.0 * s).round() as usize).max(2))
}

/// SCD network-path hierarchy (Table II): depth 4 with typical degrees
/// 2 000 / 30 / 6 below the national root. Full scale yields ≈ 360 000
/// STB leaves; use a smaller `scale` for interactive work.
pub fn scd_location_spec(scale: f64) -> HierarchySpec {
    let s = scale.clamp(0.001, 1.0);
    // Only the huge first-level fan-out scales; deeper degrees keep the
    // paper's shape so per-branch behaviour is unchanged.
    HierarchySpec::new("National")
        .level("CO", ((2000.0 * s).round() as usize).max(2))
        .level("DSLAM", 30)
        .level("STB", 6)
}

/// Builds the CCD trouble tree and the per-leaf popularity mass that
/// reproduces Table I's first-level ticket mix.
///
/// The returned weights are indexed by [`tiresias_hierarchy::NodeId`]
/// (non-leaf slots are zero) and sum to 1. Within a first-level
/// category the mass is spread Zipf-like over its leaves.
pub fn ccd_trouble_tree_with_mix(scale: f64) -> (Tree, Vec<f64>) {
    let tree = ccd_trouble_spec(scale).build().expect("static spec is valid");
    let mut weights = vec![0.0; tree.len()];
    let top: Vec<_> = tree.children(tree.root()).to_vec();
    // Table I covers 7 named categories; remaining top-level nodes share
    // the unnamed residual mass equally.
    let named_total: f64 = CCD_TICKET_MIX.iter().map(|(_, p)| p).sum();
    let residual = (100.0 - named_total).max(0.0);
    let extra = top.len().saturating_sub(CCD_TICKET_MIX.len());
    for (i, &cat) in top.iter().enumerate() {
        let share = if i < CCD_TICKET_MIX.len() {
            CCD_TICKET_MIX[i].1
        } else {
            residual / extra.max(1) as f64
        } / 100.0;
        let leaves: Vec<_> = tree.subtree(cat).filter(|&n| tree.is_leaf(n)).collect();
        let zipf = crate::rand_util::zipf_weights(leaves.len(), 0.8);
        for (&leaf, w) in leaves.iter().zip(zipf.iter()) {
            weights[leaf.index()] = share * w;
        }
    }
    // Normalise (guards the scaled-down case where categories shrank).
    let total: f64 = weights.iter().sum();
    if total > 0.0 {
        weights.iter_mut().for_each(|w| *w /= total);
    }
    (tree, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table_ii() {
        let t = ccd_trouble_spec(1.0).build().unwrap();
        assert_eq!(t.max_depth(), 4);
        assert_eq!(t.typical_degree(0), Some(9.0));
        assert_eq!(t.typical_degree(1), Some(6.0));
        assert_eq!(t.typical_degree(2), Some(3.0));
        assert_eq!(t.typical_degree(3), Some(5.0));

        let loc = ccd_location_spec(1.0).build().unwrap();
        assert_eq!(loc.typical_degree(0), Some(61.0));
        assert_eq!(loc.typical_degree(3), Some(24.0));
    }

    #[test]
    fn scd_spec_shape() {
        let t = scd_location_spec(0.01).build().unwrap();
        assert_eq!(t.max_depth(), 3);
        assert_eq!(t.typical_degree(0), Some(20.0));
        assert_eq!(t.typical_degree(1), Some(30.0)); // paper's 30 kept
    }

    #[test]
    fn scaling_shrinks_but_preserves_depth() {
        let t = ccd_location_spec(0.1).build().unwrap();
        assert_eq!(t.max_depth(), 4);
        assert!(t.len() < ccd_location_spec(1.0).node_count());
    }

    #[test]
    fn ticket_mix_sums_to_100() {
        let total: f64 = CCD_TICKET_MIX.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 0.5, "total {total}");
    }

    #[test]
    fn mix_weights_reproduce_table_i_shares() {
        let (tree, weights) = ccd_trouble_tree_with_mix(1.0);
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Per-category share = sum over its leaves.
        let top = tree.children(tree.root()).to_vec();
        let tv_share: f64 =
            tree.subtree(top[0]).filter(|&n| tree.is_leaf(n)).map(|n| weights[n.index()]).sum();
        assert!((tv_share - 0.3959).abs() < 0.01, "TV share {tv_share}");
        // TV outweighs Remote Control by the Table-I ratio.
        let rc_share: f64 =
            tree.subtree(top[6]).filter(|&n| tree.is_leaf(n)).map(|n| weights[n.index()]).sum();
        assert!(tv_share / rc_share > 10.0);
    }

    #[test]
    fn weights_live_only_on_leaves() {
        let (tree, weights) = ccd_trouble_tree_with_mix(0.5);
        for n in tree.iter() {
            if !tree.is_leaf(n) {
                assert_eq!(weights[n.index()], 0.0);
            }
        }
    }
}
