use rand::Rng;

/// Draws a Poisson-distributed count with mean `lambda`.
///
/// Knuth's product method is used for small means; for `lambda > 30` a
/// normal approximation (`N(λ, λ)`, rounded and clamped at zero) keeps
/// the draw O(1) — the tails that approximation misses are irrelevant at
/// those rates.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = tiresias_datagen::poisson(&mut rng, 4.0);
/// assert!(x < 100);
/// ```
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Box-Muller normal approximation.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let x = lambda + lambda.sqrt() * z;
        return x.round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0f64..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Zipf-like popularity weights for `n` items with exponent `s`,
/// normalised to sum to 1. Item `i` gets weight ∝ `1/(i+1)^s`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "zipf weights need at least one item");
    let raw: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// Draws an index from a discrete distribution given by cumulative
/// weights (must be non-decreasing, last element = total mass).
pub fn sample_cumulative<R: Rng + ?Sized>(rng: &mut R, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("non-empty cumulative weights");
    let x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    cumulative.partition_point(|&c| c <= x).min(cumulative.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_close_for_small_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut rng, 3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_is_close_for_large_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut rng, 120.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 120.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn zipf_weights_sum_to_one_and_decay() {
        let w = zipf_weights(100, 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        // Heavy head: top item much more popular than the tail.
        assert!(w[0] / w[99] > 50.0);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let w = zipf_weights(10, 0.0);
        for x in &w {
            assert!((x - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_cumulative_respects_mass() {
        let mut rng = StdRng::seed_from_u64(4);
        // Mass 0.9 on index 0, 0.1 on index 1.
        let cumulative = [0.9, 1.0];
        let n = 10_000;
        let ones = (0..n).filter(|_| sample_cumulative(&mut rng, &cumulative) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "frac {frac}");
    }
}
