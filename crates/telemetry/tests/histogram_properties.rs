//! Property tests of the lock-free log-linear histogram: quantile
//! estimates bounded by one bucket of the exact nearest-rank
//! percentile, lossless commutative/associative merges, and concurrent
//! recording that drops nothing.

use proptest::prelude::*;

use tiresias_telemetry::{same_bucket, Histogram, HistogramSnapshot};

/// Nanosecond-scale samples spanning sub-µs ring hand-offs to
/// multi-second stalls — the full range the daemons record.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..40_000_000_000, 1..300)
}

/// The exact nearest-rank percentile over a sorted copy — the ground
/// truth the bucketed estimate is measured against.
fn exact_percentile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Quantile ladder + shape probes used to compare snapshots for
/// equality without reaching into the private bucket array.
fn fingerprint(s: &HistogramSnapshot) -> (u64, u64, u64, Vec<u64>, Vec<u64>) {
    let quantiles =
        [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0].iter().map(|&q| s.quantile(q)).collect();
    let bounds: Vec<u64> = (0..40).map(|i| 1u64 << i).collect();
    (s.count(), s.sum(), s.max(), quantiles, s.cumulative_le(&bounds))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The estimate reports the inclusive upper bound of the bucket
    /// holding the nearest-rank sample, clamped to the observed max —
    /// so it lands in the *same bucket* as the exact percentile (a
    /// ≤ 6.25% relative error with 4 sub-bits) and never below it.
    #[test]
    fn quantile_lands_in_the_exact_percentiles_bucket(values in arb_samples()) {
        let s = snapshot_of(&values);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_percentile(&values, q);
            let est = s.quantile(q);
            prop_assert!(est >= exact, "q={q}: estimate {est} under-states exact {exact}");
            prop_assert!(
                same_bucket(est, exact),
                "q={q}: estimate {est} not in exact {exact}'s bucket",
            );
        }
    }

    /// Merging is lossless: per-shard snapshots merged in any order and
    /// grouping are indistinguishable from one histogram that saw
    /// every sample.
    #[test]
    fn merge_is_commutative_associative_and_lossless(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        // (a ⊕ b) ⊕ c
        let mut left = snapshot_of(&a);
        left.merge(&snapshot_of(&b));
        left.merge(&snapshot_of(&c));
        // c ⊕ (b ⊕ a): reversed order and different grouping.
        let mut inner = snapshot_of(&b);
        inner.merge(&snapshot_of(&a));
        let mut right = snapshot_of(&c);
        right.merge(&inner);
        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
        // Both equal the histogram that recorded everything itself.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(fingerprint(&left), fingerprint(&snapshot_of(&all)));
    }
}

/// Wait-free recording from many threads loses no samples: totals and
/// quantiles match a single-threaded histogram fed the same values.
#[test]
fn concurrent_recorders_drop_nothing() {
    const THREADS: u64 = 8;
    const PER: u64 = 20_000;
    let shared = std::sync::Arc::new(Histogram::new());
    let serial = Histogram::new();
    for t in 0..THREADS {
        for i in 0..PER {
            // A deterministic spread over several octaves.
            serial.record((t * PER + i) * 37 % 5_000_000);
        }
    }
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = std::sync::Arc::clone(&shared);
            scope.spawn(move || {
                for i in 0..PER {
                    shared.record((t * PER + i) * 37 % 5_000_000);
                }
            });
        }
    });
    assert_eq!(fingerprint(&shared.snapshot()), fingerprint(&serial.snapshot()));
    assert_eq!(shared.count(), THREADS * PER);
}
