//! Exporter contract tests: the Prometheus text rendering against a
//! golden transcript plus a structural parse, and the `STATS JSON`
//! snapshot round-tripped through the vendored `serde_json` parser.

use serde::Value;
use tiresias_telemetry::Registry;

fn sample_registry() -> Registry {
    let reg = Registry::new();
    reg.counter("t_requests_total", "Requests handled.", &[]).add(41);
    reg.counter("t_requests_total", "Requests handled.", &[("node", "10.0.0.1:7171")]).add(7);
    reg.gauge("t_queue_depth", "Queued records.", &[]).set(12);
    reg.gauge_fn("t_watermark", "Open unit; -1 before anchoring.", &[], || -1.0);
    let h = reg.histogram("t_rpc_seconds", "RPC round-trip latency.", &[]);
    h.record(3_000); // 3 µs
    h.record(900_000); // 0.9 ms
    h.record(2_500_000_000); // 2.5 s
    reg
}

/// Counters and gauges render the exact golden text — family header
/// once, labeled series under it, in first-registration order.
#[test]
fn prometheus_text_matches_golden_for_scalars() {
    let text = sample_registry().render_prometheus();
    let golden = "\
# HELP t_requests_total Requests handled.
# TYPE t_requests_total counter
t_requests_total 41
t_requests_total{node=\"10.0.0.1:7171\"} 7
# HELP t_queue_depth Queued records.
# TYPE t_queue_depth gauge
t_queue_depth 12
# HELP t_watermark Open unit; -1 before anchoring.
# TYPE t_watermark gauge
t_watermark -1
";
    assert!(text.starts_with(golden), "scalar prefix drifted from golden:\n{text}");
}

/// Every line of the full exposition parses: comment lines carry
/// HELP/TYPE exactly once per family, sample lines are
/// `name[{labels}] value`, histogram buckets are cumulative and agree
/// with `_count` / `_sum`.
#[test]
fn prometheus_text_parses_cleanly() {
    let text = sample_registry().render_prometheus();
    let mut helps = 0;
    let mut types = 0;
    let mut bucket_last = 0u64;
    let mut bucket_final = None;
    let mut count = None;
    let mut sum = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.split_whitespace();
            let keyword = words.next().expect("keyword");
            assert!(words.next().is_some(), "comment without metric name: {line}");
            match keyword {
                "HELP" => helps += 1,
                "TYPE" => types += 1,
                other => panic!("unknown comment keyword {other}"),
            }
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().unwrap_or_else(|e| panic!("bad value in {line}: {e}"));
        let name = name_part.split('{').next().expect("name");
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name in {line}",
        );
        if name == "t_rpc_seconds_bucket" {
            let cum = value as u64;
            assert!(cum >= bucket_last, "buckets must be cumulative: {line}");
            bucket_last = cum;
            if name_part.contains("le=\"+Inf\"") {
                bucket_final = Some(cum);
            }
        }
        if name == "t_rpc_seconds_count" {
            count = Some(value as u64);
        }
        if name == "t_rpc_seconds_sum" {
            sum = Some(value);
        }
    }
    // One HELP + TYPE per family: two counters share one family.
    assert_eq!(helps, 4, "{text}");
    assert_eq!(types, 4, "{text}");
    assert_eq!(bucket_final, Some(3), "+Inf bucket must hold every sample:\n{text}");
    assert_eq!(count, Some(3), "{text}");
    let sum = sum.expect("histogram _sum rendered");
    let expected = (3_000u64 + 900_000 + 2_500_000_000) as f64 / 1e9;
    assert!((sum - expected).abs() < 1e-9, "sum {sum} != {expected}");
}

fn field<'a>(v: &'a Value, name: &str) -> &'a Value {
    v.field(name).unwrap_or_else(|e| panic!("missing {name}: {e}"))
}

fn num(v: &Value) -> f64 {
    match v {
        Value::U64(n) => *n as f64,
        Value::I64(n) => *n as f64,
        Value::F64(n) => *n,
        other => panic!("expected number, got {other:?}"),
    }
}

/// The JSON snapshot is one parseable object whose sections mirror the
/// registry exactly — names, label maps, counter/gauge values, and
/// histogram quantile columns.
#[test]
fn stats_json_round_trips_through_serde_json() {
    let reg = sample_registry();
    let line = reg.render_json();
    assert!(!line.contains('\n'), "STATS JSON must be a single line");
    let parsed = serde_json::parse_value(&line).expect("render_json parses");

    let Value::Seq(counters) = field(&parsed, "counters") else { panic!("counters array") };
    assert_eq!(counters.len(), 2);
    assert_eq!(num(field(&counters[0], "value")), 41.0);
    let labeled = &counters[1];
    assert_eq!(field(labeled, "name"), &Value::Str("t_requests_total".to_string()));
    let Value::Map(labels) = field(labeled, "labels") else { panic!("labels map") };
    assert_eq!(labels, &[("node".to_string(), Value::Str("10.0.0.1:7171".to_string()))]);
    assert_eq!(num(field(labeled, "value")), 7.0);

    let Value::Seq(gauges) = field(&parsed, "gauges") else { panic!("gauges array") };
    assert_eq!(num(field(&gauges[0], "value")), 12.0);
    assert_eq!(num(field(&gauges[1], "value")), -1.0);

    let Value::Seq(hists) = field(&parsed, "histograms") else { panic!("histograms array") };
    assert_eq!(hists.len(), 1);
    let h = &hists[0];
    assert_eq!(num(field(h, "count")), 3.0);
    // The p50 sample is 0.9 ms; log-linear quantization stays within
    // one sub-bucket (6.25%) of it.
    let p50 = num(field(h, "p50_ms"));
    assert!((0.9..=0.96).contains(&p50), "p50_ms {p50} outside quantization band");
    let max = num(field(h, "max_ms"));
    assert!((max - 2_500.0).abs() < 1e-6, "max_ms {max}");
    for key in ["mean_ms", "p90_ms", "p99_ms", "p999_ms"] {
        assert!(num(field(h, key)) > 0.0, "{key} missing or zero");
    }
}
