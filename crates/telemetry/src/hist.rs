//! Lock-free log-linear latency histograms (the HDR-histogram bucket
//! scheme, reduced to what a hot path can afford).
//!
//! A [`Histogram`] is a fixed array of `AtomicU64` buckets: recording a
//! value is `&self`, wait-free, and costs one relaxed atomic add on the
//! bucket plus three bookkeeping adds (count, sum, max) — no locks, no
//! allocation, safe from any number of threads concurrently. Values are
//! dimensionless `u64`s; every user in this workspace records
//! **nanoseconds**.
//!
//! # Bucket layout
//!
//! Values below `2^SUB_BITS` get exact unit-width buckets; above that,
//! each power-of-two octave is split into `2^SUB_BITS` equal-width
//! sub-buckets. The relative quantization error is therefore bounded by
//! `1/2^SUB_BITS` (6.25% with the 4 sub-bits used here), and the whole
//! `u64` range maps into [`BUCKETS`] buckets — small enough that a
//! histogram is a few KiB and cheap to snapshot.
//!
//! Readers take a [`HistogramSnapshot`] (a relaxed copy of the bucket
//! array — consistent enough for monitoring, since recording is
//! monotone) and derive quantiles, means and Prometheus cumulative
//! buckets from it. Snapshots [`HistogramSnapshot::merge`] losslessly:
//! bucket arrays add element-wise, which is what makes per-shard or
//! per-node histograms aggregatable.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution bits: each octave splits into `2^SUB_BITS`
/// buckets, bounding relative quantization error by `1/2^SUB_BITS`.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Octave groups above the exact range (`u64` has 64 − `SUB_BITS`
/// octaves whose values are ≥ `2^SUB_BITS`).
const GROUPS: usize = 64 - SUB_BITS as usize;
/// Total bucket count: the exact `[0, 2^SUB_BITS)` range plus `SUB`
/// sub-buckets per octave group.
pub const BUCKETS: usize = SUB + GROUPS * SUB;

/// Bucket index for a recorded value. Total over `u64`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    // Octave group: 1 for values in [2^SUB_BITS, 2^(SUB_BITS+1)), etc.
    let msb = 63 - v.leading_zeros() as usize;
    let group = msb - SUB_BITS as usize + 1;
    let sub = (v >> (group - 1)) as usize - SUB;
    group * SUB + sub
}

/// Largest value mapping into bucket `i` (the bucket's inclusive upper
/// bound) — what quantile readout reports, so estimates never
/// under-state a latency.
fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let group = i / SUB;
    let sub = i % SUB;
    // u128 arithmetic: the top octave's upper bound is exactly 2^64.
    let upper = ((SUB + sub + 1) as u128) << (group - 1);
    u64::try_from(upper - 1).unwrap_or(u64::MAX)
}

/// A lock-free log-linear histogram of `u64` samples (nanoseconds, by
/// convention). See the [module docs](self).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([const { AtomicU64::new(0) }; BUCKETS]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free: four relaxed atomic RMWs, no
    /// branches beyond the bucket-index computation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating at
    /// `u64::MAX` ns ≈ 584 years).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A relaxed point-in-time copy of the distribution. Concurrent
    /// recorders may be mid-update, so `count` can trail the bucket
    /// total by in-flight samples — harmless for monitoring readout.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        // Derive the total from the buckets themselves so quantile
        // ranks are consistent with the copied array even when samples
        // land between the two loops.
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state: quantile readout and
/// lossless merging happen here, off the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity for [`HistogramSnapshot::merge`]).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot { buckets: vec![0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (ns).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (exact, not bucket-quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` ∈ [0, 1]: the inclusive upper bound of
    /// the bucket holding the nearest-rank sample, so the estimate is
    /// within one bucket boundary of (and never below) the exact
    /// sorted-slice percentile. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Nearest-rank: the smallest sample with at least ⌈q·n⌉
        // samples at or below it.
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s samples into `self`. Lossless (bucket arrays add
    /// element-wise), commutative and associative, so per-shard or
    /// per-node histograms aggregate in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Cumulative sample counts at each of the given inclusive upper
    /// boundaries (ns): `result[i]` counts samples whose *bucket* lies
    /// entirely at or below `bounds_ns[i]`. Monotone non-decreasing in
    /// the boundary; a final implicit `+Inf` boundary is the total
    /// [`HistogramSnapshot::count`]. This is exactly the shape a
    /// Prometheus `histogram` exposition needs.
    pub fn cumulative_le(&self, bounds_ns: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(bounds_ns.len());
        for &bound in bounds_ns {
            let mut cum = 0u64;
            for (i, &c) in self.buckets.iter().enumerate() {
                if bucket_upper(i) > bound {
                    break;
                }
                cum += c;
            }
            out.push(cum);
        }
        out
    }
}

/// `true` iff `a` and `b` quantize into the same histogram bucket —
/// the tolerance the quantile accuracy tests assert.
pub fn same_bucket(a: u64, b: u64) -> bool {
    bucket_index(a) == bucket_index(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_total_and_monotone() {
        let mut last = 0usize;
        let mut v = 0u64;
        while v < 1 << 40 {
            let i = bucket_index(v);
            assert!(i >= last, "index monotone at {v}");
            assert!(i < BUCKETS);
            last = i;
            v = v * 2 + 1;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_upper_inverts_bucket_index() {
        for i in 0..BUCKETS {
            let upper = bucket_upper(i);
            assert_eq!(bucket_index(upper), i, "upper bound of bucket {i} maps back");
            if upper < u64::MAX {
                assert!(bucket_index(upper + 1) > i, "upper bound is tight for bucket {i}");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 7, 15] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 15);
        assert_eq!(s.max(), 15);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs … 1ms in 1µs steps
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        // 6.25% relative quantization error bound.
        for (q, exact) in [(0.5, 500_000u64), (0.9, 900_000), (0.99, 990_000)] {
            let est = s.quantile(q);
            assert!(est >= exact, "q{q}: {est} >= {exact}");
            assert!(est as f64 <= exact as f64 * 1.0626, "q{q}: {est} <= {exact} + 6.25%");
        }
    }

    #[test]
    fn cumulative_le_is_monotone_and_totals() {
        let h = Histogram::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let bounds = [64u64, 1024, 16_384, u64::MAX];
        let cum = s.cumulative_le(&bounds);
        assert_eq!(cum.len(), 4);
        for w in cum.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*cum.last().unwrap(), 5);
        assert_eq!(cum[0], 1, "only the 10ns sample fits under 64ns");
    }

    #[test]
    fn merge_is_lossless() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 17);
            all.record(v * 17);
        }
        for v in 0..300u64 {
            b.record(v * 41);
            all.record(v * 41);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}
