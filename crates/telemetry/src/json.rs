//! Minimal JSON fragment helpers for the hand-built snapshot strings
//! (`STATS JSON`, the registry snapshot, the slow-op log). The daemons
//! compose JSON by concatenation — these keep the escaping and number
//! validity rules in one place.

/// Renders `s` as a quoted JSON string with the mandatory escapes
/// (quote, backslash, control characters).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a valid JSON number: shortest round-trip form,
/// with non-finite values mapped to 0 (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` omits a trailing `.0` for integral floats, which is
        // still valid JSON; exponent forms like `1e-7` are too.
        s
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_are_valid_json() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
    }
}
