//! Metric registry: named counters, gauges and histograms with label
//! sets, rendered as Prometheus text or a JSON snapshot.
//!
//! A [`Registry`] is **per instance**, not process-global: every
//! `Server` or `Router` owns one, so tests can run several daemons in
//! one process without name collisions or cross-contamination. The hot
//! path never touches the registry — it holds `Arc`s to the metrics it
//! updates; the registry is only walked on the cold readout paths
//! (`GET /metrics`, `STATS JSON`).
//!
//! Derived metrics register as closures ([`Registry::counter_fn`] /
//! [`Registry::gauge_fn`]) over state the daemon already maintains
//! (atomic totals, queue depths), so exporting them needs no second
//! bookkeeping. Closures must not take locks a render caller could
//! already hold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json;

/// A monotonically increasing counter. Lock-free: `inc`/`add` are one
/// relaxed atomic add.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge. Lock-free.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The value half of a registered metric.
enum Metric {
    Counter(Arc<Counter>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    Gauge(Arc<Gauge>),
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) | Metric::CounterFn(_) => "counter",
            Metric::Gauge(_) | Metric::GaugeFn(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// Inclusive histogram exposition boundaries in nanoseconds: 1 µs to
/// 16 s in powers of four, a ladder wide enough for both sub-µs ring
/// hand-offs and multi-second fsync stalls. (Quantile readout uses the
/// full internal bucket resolution; these only shape the Prometheus
/// `le` series.)
const EXPO_BOUNDS_NS: [u64; 13] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
    16_000_000_000,
];

/// A per-instance metric registry. See the [module docs](self).
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.lock().expect("registry lock never poisoned");
        f.debug_struct("Registry").field("metrics", &entries.len()).finish()
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn push(&self, entry: Entry) {
        self.entries.lock().expect("registry lock never poisoned").push(entry);
    }

    /// Registers and returns a new counter.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register_counter(name, help, labels, Arc::clone(&c));
        c
    }

    /// Registers an existing counter (shared with a hot path).
    pub fn register_counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        counter: Arc<Counter>,
    ) {
        self.push(Entry {
            name,
            help,
            labels: owned_labels(labels),
            metric: Metric::Counter(counter),
        });
    }

    /// Registers a derived counter read from a closure at render time.
    pub fn counter_fn(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.push(Entry {
            name,
            help,
            labels: owned_labels(labels),
            metric: Metric::CounterFn(Box::new(f)),
        });
    }

    /// Registers and returns a new gauge.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(Entry {
            name,
            help,
            labels: owned_labels(labels),
            metric: Metric::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Registers a derived gauge read from a closure at render time.
    pub fn gauge_fn(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.push(Entry {
            name,
            help,
            labels: owned_labels(labels),
            metric: Metric::GaugeFn(Box::new(f)),
        });
    }

    /// Registers and returns a new histogram.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.register_histogram(name, help, labels, Arc::clone(&h));
        h
    }

    /// Registers an existing histogram (shared with a hot path).
    pub fn register_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        hist: Arc<Histogram>,
    ) {
        self.push(Entry {
            name,
            help,
            labels: owned_labels(labels),
            metric: Metric::Histogram(hist),
        });
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` once per family, escaped
    /// label values, histograms as cumulative `_bucket{le=…}` series
    /// (ending at `+Inf`) plus `_sum` (seconds) and `_count`.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("registry lock never poisoned");
        let mut out = String::with_capacity(4096);
        // Families render together in first-registration order.
        let mut families: Vec<&'static str> = Vec::new();
        for e in entries.iter() {
            if !families.contains(&e.name) {
                families.push(e.name);
            }
        }
        for family in families {
            let mut first = true;
            for e in entries.iter().filter(|e| e.name == family) {
                if first {
                    out.push_str(&format!(
                        "# HELP {family} {}\n# TYPE {family} {}\n",
                        escape_help(e.help),
                        e.metric.type_name()
                    ));
                    first = false;
                }
                render_prometheus_entry(&mut out, e);
            }
        }
        out
    }

    /// Renders a JSON snapshot of every metric — the machine-parseable
    /// twin of the Prometheus text (the `STATS JSON` reply is exactly
    /// this line). Histogram latencies are reported in milliseconds.
    pub fn render_json(&self) -> String {
        let entries = self.entries.lock().expect("registry lock never poisoned");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for e in entries.iter() {
            let head = format!(
                "{{\"name\":{},\"labels\":{}",
                json::string(e.name),
                labels_json(&e.labels)
            );
            match &e.metric {
                Metric::Counter(c) => counters.push(format!("{head},\"value\":{}}}", c.get())),
                Metric::CounterFn(f) => counters.push(format!("{head},\"value\":{}}}", f())),
                Metric::Gauge(g) => gauges.push(format!("{head},\"value\":{}}}", g.get())),
                Metric::GaugeFn(f) => {
                    gauges.push(format!("{head},\"value\":{}}}", json::number(f())));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    hists.push(format!(
                        "{head},\"count\":{},\"mean_ms\":{},\"p50_ms\":{},\"p90_ms\":{},\
                         \"p99_ms\":{},\"p999_ms\":{},\"max_ms\":{}}}",
                        s.count(),
                        json::number(s.mean() / 1e6),
                        json::number(ms(&s, 0.50)),
                        json::number(ms(&s, 0.90)),
                        json::number(ms(&s, 0.99)),
                        json::number(ms(&s, 0.999)),
                        json::number(s.max() as f64 / 1e6),
                    ));
                }
            }
        }
        format!(
            "{{\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

fn ms(s: &HistogramSnapshot, q: f64) -> f64 {
    s.quantile(q) as f64 / 1e6
}

fn labels_json(labels: &[(String, String)]) -> String {
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{}:{}", json::string(k), json::string(v))).collect();
    format!("{{{}}}", body.join(","))
}

/// `# HELP` text escaping: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Label *value* escaping: backslash, double quote, newline.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// `{k="v",…}` rendering of a label set, with `extra` appended (for
/// the histogram `le` label); empty when there are no labels.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_prometheus_entry(out: &mut String, e: &Entry) {
    let labels = label_block(&e.labels, None);
    match &e.metric {
        Metric::Counter(c) => out.push_str(&format!("{}{labels} {}\n", e.name, c.get())),
        Metric::CounterFn(f) => out.push_str(&format!("{}{labels} {}\n", e.name, f())),
        Metric::Gauge(g) => out.push_str(&format!("{}{labels} {}\n", e.name, g.get())),
        Metric::GaugeFn(f) => {
            out.push_str(&format!("{}{labels} {}\n", e.name, json::number(f())));
        }
        Metric::Histogram(h) => {
            let s = h.snapshot();
            let cum = s.cumulative_le(&EXPO_BOUNDS_NS);
            for (&bound, &c) in EXPO_BOUNDS_NS.iter().zip(&cum) {
                let le = json::number(bound as f64 / 1e9);
                let lb = label_block(&e.labels, Some(("le", &le)));
                out.push_str(&format!("{}_bucket{lb} {c}\n", e.name));
            }
            let lb = label_block(&e.labels, Some(("le", "+Inf")));
            out.push_str(&format!("{}_bucket{lb} {}\n", e.name, s.count()));
            out.push_str(&format!(
                "{}_sum{labels} {}\n",
                e.name,
                json::number(s.sum() as f64 / 1e9)
            ));
            out.push_str(&format!("{}_count{labels} {}\n", e.name, s.count()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let reg = Registry::new();
        let c = reg.counter("t_ops_total", "Ops so far.", &[]);
        c.add(3);
        let g = reg.gauge("t_depth", "Queue depth.", &[("node", "a:1")]);
        g.set(7);
        reg.gauge_fn("t_derived", "Derived.", &[], || 1.5);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP t_ops_total Ops so far.\n"), "{text}");
        assert!(text.contains("# TYPE t_ops_total counter\n"), "{text}");
        assert!(text.contains("t_ops_total 3\n"), "{text}");
        assert!(text.contains("t_depth{node=\"a:1\"} 7\n"), "{text}");
        assert!(text.contains("t_derived 1.5\n"), "{text}");
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("t_lat_seconds", "Latency.", &[]);
        h.record(2_000); // 2µs
        h.record(2_000_000); // 2ms
        h.record(2_000_000_000); // 2s
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE t_lat_seconds histogram\n"), "{text}");
        assert!(text.contains("t_lat_seconds_bucket{le=\"0.000004\"} 1\n"), "{text}");
        assert!(text.contains("t_lat_seconds_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("t_lat_seconds_count 3\n"), "{text}");
    }

    #[test]
    fn label_values_escape() {
        let reg = Registry::new();
        reg.counter("t_esc_total", "Escapes.", &[("p", "a\"b\\c\nd")]);
        let text = reg.render_prometheus();
        assert!(text.contains("t_esc_total{p=\"a\\\"b\\\\c\\nd\"} 0\n"), "{text}");
    }

    #[test]
    fn json_snapshot_has_all_sections() {
        let reg = Registry::new();
        reg.counter("t_a_total", "A.", &[]).inc();
        reg.gauge("t_b", "B.", &[]).set(2);
        reg.histogram("t_c_seconds", "C.", &[]).record(1_000_000);
        let json = reg.render_json();
        assert!(json.contains("\"counters\":[{\"name\":\"t_a_total\""), "{json}");
        assert!(json.contains("\"value\":1"), "{json}");
        assert!(json.contains("\"histograms\":[{\"name\":\"t_c_seconds\""), "{json}");
        assert!(json.contains("\"p99_ms\":"), "{json}");
    }
}
