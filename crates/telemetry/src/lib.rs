//! Runtime observability for the Tiresias daemons — std-only, no
//! dependencies.
//!
//! The paper's system *is* a telemetry analyzer; this crate is the
//! telemetry of the reproduction itself: per-stage latency
//! distributions (admission, close, WAL fsync, query, route RTT) as
//! first-class, cheap, exported metrics.
//!
//! Four pieces:
//!
//! * [`Histogram`] — lock-free log-linear (HDR-style) latency
//!   histograms: recording is `&self` and one relaxed atomic add on a
//!   fixed bucket array; snapshots support p50/p90/p99/p999/max
//!   readout and lossless [`HistogramSnapshot::merge`].
//! * [`Registry`] + [`Counter`]/[`Gauge`] — a per-instance metric
//!   registry rendered as Prometheus text
//!   ([`Registry::render_prometheus`], served by [`MetricsServer`] on
//!   `GET /metrics`) or a JSON snapshot ([`Registry::render_json`],
//!   embedded in the wire protocol's `STATS JSON` reply).
//! * [`SlowLog`] — a structured NDJSON log of operations that crossed
//!   a latency threshold, with stage timings per record.
//! * [`RateMeter`] — monotonic-clock rate windows for `<x>/sec`
//!   gauges, with the first-call and zero-width-window edges guarded.
//!
//! The hot-path contract throughout: recording never locks, never
//! allocates, and never does I/O; everything expensive happens on the
//! readout side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod http;
pub mod json;
mod rate;
mod registry;
mod slowlog;

pub use hist::{same_bucket, Histogram, HistogramSnapshot, BUCKETS};
pub use http::MetricsServer;
pub use rate::{RateMeter, MIN_WINDOW};
pub use registry::{Counter, Gauge, Registry};
pub use slowlog::{Field, SlowLog};
