//! The `/metrics` HTTP listener: a minimal HTTP/1.0 server on its own
//! thread answering `GET /metrics` with the registry's Prometheus text.
//!
//! Deliberately tiny: one request per connection, connection closed
//! after the response (HTTP/1.0 semantics), no keep-alive, no TLS, no
//! routing beyond `/metrics`. It shares nothing with the wire-protocol
//! listener, so scrapes cannot interfere with ingestion sessions and
//! the endpoint stays up even while the protocol port is saturated.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;

/// Per-connection socket deadline: a stuck scraper cannot wedge the
/// listener thread for long.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running metrics endpoint. Shuts down when dropped or via
/// [`MetricsServer::shutdown`].
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (`host:port`; port 0 picks an ephemeral port) and
    /// starts serving `registry` on a dedicated thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn start(addr: &str, registry: Arc<Registry>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Scrapes are rare and the render is cheap: serving
                    // inline keeps the server single-threaded.
                    let _ = serve_one(stream, &registry);
                }
            })
        };
        Ok(MetricsServer { addr, stop, thread: Some(thread) })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let mut out = stream;
    if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?")) {
        let body = registry.render_prometheus();
        write!(
            out,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )?;
    } else {
        let body = "only GET /metrics is served\n";
        write!(
            out,
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        let registry = Arc::new(Registry::new());
        registry.counter("t_up_total", "Up.", &[]).add(2);
        let mut server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();
        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("t_up_total 2\n"), "{ok}");
        let missing = get(addr, "/other");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        server.shutdown();
        server.shutdown(); // idempotent
    }
}
