//! Monotonic-clock rate windows for `<something>/sec` readouts.
//!
//! [`RateMeter::observe`] turns a monotone total (e.g. records admitted
//! so far) into a rate over the window since the previous observation.
//! The clock is [`std::time::Instant`] — never the wall clock, which
//! steps under NTP — and the edge cases that used to corrupt `STATS
//! rps` are guarded explicitly: the first call has no window and
//! reports 0, a window shorter than [`MIN_WINDOW`] re-reports the last
//! rate instead of amplifying noise (or dividing by zero), and a
//! counter that appears to move backwards (a restarted source) resets
//! the window rather than reporting a negative rate.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Observations closer together than this re-report the previous rate:
/// below ~50 ms the quotient is mostly scheduling jitter.
pub const MIN_WINDOW: Duration = Duration::from_millis(50);

#[derive(Debug, Clone, Copy)]
struct RateState {
    prev_total: u64,
    prev_at: Instant,
    last_rate: f64,
}

/// A thread-safe windowed rate meter. See the [module docs](self).
#[derive(Debug, Default)]
pub struct RateMeter {
    state: Mutex<Option<RateState>>,
}

impl RateMeter {
    /// Creates a meter with no observations yet.
    pub fn new() -> RateMeter {
        RateMeter::default()
    }

    /// Observes the current monotone `total` now and returns the rate
    /// per second over the window since the previous observation.
    pub fn observe(&self, total: u64) -> f64 {
        self.observe_at(total, Instant::now())
    }

    /// [`RateMeter::observe`] with an explicit clock reading, for
    /// tests. `now` readings must be monotone non-decreasing.
    pub fn observe_at(&self, total: u64, now: Instant) -> f64 {
        let mut state = self.state.lock().expect("rate meter lock never poisoned");
        let Some(prev) = *state else {
            // First call: no window exists yet, so there is no rate —
            // not a divide-by-zero.
            *state = Some(RateState { prev_total: total, prev_at: now, last_rate: 0.0 });
            return 0.0;
        };
        if total < prev.prev_total {
            // The source restarted (total regressed): restart the
            // window instead of reporting a negative rate.
            *state = Some(RateState { prev_total: total, prev_at: now, last_rate: 0.0 });
            return 0.0;
        }
        let elapsed = now.saturating_duration_since(prev.prev_at);
        if elapsed < MIN_WINDOW {
            // Too narrow to divide by: keep the previous window open
            // and re-report its rate.
            return prev.last_rate;
        }
        let rate = (total - prev.prev_total) as f64 / elapsed.as_secs_f64();
        *state = Some(RateState { prev_total: total, prev_at: now, last_rate: rate });
        rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_call_reports_zero_not_a_division() {
        let m = RateMeter::new();
        assert_eq!(m.observe_at(1_000_000, Instant::now()), 0.0);
    }

    #[test]
    fn rate_is_delta_over_window() {
        let m = RateMeter::new();
        let t0 = Instant::now();
        m.observe_at(1000, t0);
        let rate = m.observe_at(3000, t0 + Duration::from_secs(2));
        assert!((rate - 1000.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn sub_window_calls_reuse_the_last_rate() {
        let m = RateMeter::new();
        let t0 = Instant::now();
        m.observe_at(0, t0);
        let rate = m.observe_at(500, t0 + Duration::from_secs(1));
        assert!((rate - 500.0).abs() < 1e-9);
        // 1 ms later: far under MIN_WINDOW — the previous rate holds,
        // and the open window is not consumed.
        let again = m.observe_at(501, t0 + Duration::from_secs(1) + Duration::from_millis(1));
        assert_eq!(again, rate);
        // The next full window measures from the last *accepted*
        // observation.
        let later = m.observe_at(700, t0 + Duration::from_secs(2));
        assert!((later - 200.0).abs() < 1e-9, "rate {later}");
    }

    #[test]
    fn identical_instants_do_not_divide_by_zero() {
        let m = RateMeter::new();
        let t0 = Instant::now();
        m.observe_at(10, t0);
        let rate = m.observe_at(20, t0);
        assert_eq!(rate, 0.0, "zero-width window re-reports the last rate");
    }

    #[test]
    fn regressing_totals_reset_instead_of_going_negative() {
        let m = RateMeter::new();
        let t0 = Instant::now();
        m.observe_at(1000, t0);
        let rate = m.observe_at(10, t0 + Duration::from_secs(1));
        assert_eq!(rate, 0.0);
        let next = m.observe_at(510, t0 + Duration::from_secs(2));
        assert!(next > 0.0, "the meter recovers after a reset");
    }
}
