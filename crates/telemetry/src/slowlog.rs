//! Structured NDJSON slow-op log.
//!
//! A [`SlowLog`] appends one JSON object per line for every operation
//! that exceeded its threshold — closes, queries, fsyncs, routed node
//! requests — with the operation's stage timings attached. The log is
//! append-only and line-delimited so `jq`/`grep` work directly and a
//! crashed writer loses at most one partial line.
//!
//! Schema (one object per line):
//!
//! ```json
//! {"ts_ms":1754650000123,"op":"query","ms":12.7,"frames":200,"from":0,"to":96}
//! ```
//!
//! * `ts_ms` — wall-clock Unix milliseconds at which the op *finished*;
//! * `op` — operation kind (`close`, `query`, `fsync`, `node_request`, …);
//! * `ms` — total duration in milliseconds;
//! * remaining fields — per-op stage timings and context, see the
//!   README's observability section for the per-op field reference.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, SystemTime};

use crate::json;

/// A context field attached to a slow-op record.
#[derive(Debug, Clone)]
pub enum Field {
    /// Unsigned integer field.
    U64(u64),
    /// Float field (non-finite values render as 0).
    F64(f64),
    /// String field (escaped).
    Str(String),
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

impl From<Duration> for Field {
    /// Durations render as fractional milliseconds.
    fn from(v: Duration) -> Field {
        Field::F64(v.as_secs_f64() * 1e3)
    }
}

/// The slow-op threshold and sink. Shared via `Arc`; `record` is
/// `&self` and serialised by an internal lock (the slow path only runs
/// for ops that already took milliseconds).
#[derive(Debug)]
pub struct SlowLog {
    threshold: Duration,
    out: Mutex<BufWriter<File>>,
}

impl SlowLog {
    /// Opens (appending) the NDJSON log at `path` with the given
    /// slow-op threshold.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-open error.
    pub fn open(path: &Path, threshold: Duration) -> std::io::Result<SlowLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(SlowLog { threshold, out: Mutex::new(BufWriter::new(file)) })
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// `true` iff `elapsed` crosses the threshold — callers guard with
    /// this so fast ops never pay for field formatting.
    #[inline]
    pub fn is_slow(&self, elapsed: Duration) -> bool {
        elapsed >= self.threshold
    }

    /// Appends one slow-op record (and flushes, so the log survives a
    /// crash) if `elapsed` crosses the threshold. Write errors are
    /// swallowed: observability must never take down the daemon.
    pub fn record(&self, op: &str, elapsed: Duration, fields: &[(&str, Field)]) {
        if !self.is_slow(elapsed) {
            return;
        }
        let ts_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut line = format!(
            "{{\"ts_ms\":{ts_ms},\"op\":{},\"ms\":{}",
            json::string(op),
            json::number(elapsed.as_secs_f64() * 1e3)
        );
        for (key, value) in fields {
            line.push(',');
            line.push_str(&json::string(key));
            line.push(':');
            match value {
                Field::U64(v) => line.push_str(&v.to_string()),
                Field::F64(v) => line.push_str(&json::number(*v)),
                Field::Str(v) => line.push_str(&json::string(v)),
            }
        }
        line.push_str("}\n");
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_over_threshold_and_emits_ndjson() {
        let path = std::env::temp_dir().join(format!("slowlog-test-{}.ndjson", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = SlowLog::open(&path, Duration::from_millis(10)).unwrap();
        log.record("query", Duration::from_millis(5), &[]);
        log.record(
            "query",
            Duration::from_millis(50),
            &[("frames", Field::from(3u64)), ("prefix", Field::from("a/b"))],
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "fast op is not logged: {text}");
        assert!(lines[0].contains("\"op\":\"query\""), "{text}");
        assert!(lines[0].contains("\"frames\":3"), "{text}");
        assert!(lines[0].contains("\"prefix\":\"a/b\""), "{text}");
        assert!(lines[0].starts_with("{\"ts_ms\":"), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
