use serde::{Deserialize, Serialize};

/// The low-pass B3 spline filter `(1/16, 1/4, 3/8, 1/4, 1/16)` used by
/// the à-trous wavelet transform, chosen by the paper (after
/// Papagiannaki et al.) because it introduces no phase shift.
pub const B3_SPLINE: [f64; 5] = [1.0 / 16.0, 1.0 / 4.0, 3.0 / 8.0, 1.0 / 4.0, 1.0 / 16.0];

/// Result of an à-trous decomposition: smoothed approximations and detail
/// signals per scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveletDecomposition {
    /// `approximations[j]` is `c_{j+1}`, the signal smoothed at scale
    /// `2^{j+1}` samples (the input itself, `c_0`, is not stored).
    pub approximations: Vec<Vec<f64>>,
    /// `details[j] = c_j − c_{j+1}`, the fluctuation captured between
    /// consecutive scales.
    pub details: Vec<Vec<f64>>,
}

impl WaveletDecomposition {
    /// Energy of the detail signal at each scale: `Σ_t d_j(t)²`.
    ///
    /// The paper uses these energies to rank timescales by the strength
    /// of their fluctuations and confirm the FFT-detected seasonalities.
    pub fn detail_energies(&self) -> Vec<f64> {
        self.details.iter().map(|d| d.iter().map(|x| x * x).sum()).collect()
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Reconstructs the input as the deepest approximation plus all
    /// details (the à-trous transform is exactly additive).
    pub fn reconstruct(&self) -> Vec<f64> {
        let Some(last) = self.approximations.last() else {
            return Vec::new();
        };
        let mut out = last.clone();
        for d in &self.details {
            for (o, x) in out.iter_mut().zip(d.iter()) {
                *o += *x;
            }
        }
        out
    }
}

/// The à-trous ("with holes") stationary wavelet transform (§VI).
///
/// At scale `j` the signal is convolved with the B3 spline filter whose
/// taps are spaced `2^{j-1}` samples apart (the "holes"); the detail at
/// scale `j` is the difference between consecutive approximations.
/// Unlike the decimated Mallat transform, every scale keeps the original
/// sampling grid, so details align with the input in time — which is why
/// the paper uses it for seasonality analysis.
///
/// Boundaries are handled by mirror extension.
///
/// # Example
///
/// ```
/// use tiresias_spectral::AtrousTransform;
///
/// let signal: Vec<f64> = (0..256)
///     .map(|t| (t as f64 / 32.0 * std::f64::consts::TAU).sin())
///     .collect();
/// let dec = AtrousTransform::new(6).decompose(&signal);
/// let energies = dec.detail_energies();
/// // A period-32 oscillation concentrates energy around scale log2(32/4).
/// let strongest = energies
///     .iter()
///     .enumerate()
///     .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
///     .unwrap()
///     .0;
/// assert!((3..=5).contains(&strongest), "strongest scale {strongest}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtrousTransform {
    levels: usize,
}

impl AtrousTransform {
    /// Creates a transform computing `levels` decomposition scales.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero.
    pub fn new(levels: usize) -> Self {
        assert!(levels > 0, "wavelet decomposition needs at least one level");
        AtrousTransform { levels }
    }

    /// Number of scales computed.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Decomposes `signal` into approximations and details.
    ///
    /// Levels deeper than `log2(len)` contribute no further smoothing and
    /// are truncated, so short inputs yield fewer scales.
    pub fn decompose(&self, signal: &[f64]) -> WaveletDecomposition {
        let mut approximations = Vec::new();
        let mut details = Vec::new();
        if signal.is_empty() {
            return WaveletDecomposition { approximations, details };
        }
        let max_useful = (usize::BITS - signal.len().leading_zeros()) as usize;
        let levels = self.levels.min(max_useful.max(1));
        let mut current = signal.to_vec();
        for j in 0..levels {
            let step = 1usize << j;
            let next = convolve_holes(&current, step);
            let detail: Vec<f64> = current.iter().zip(next.iter()).map(|(c, n)| c - n).collect();
            details.push(detail);
            approximations.push(next.clone());
            current = next;
        }
        WaveletDecomposition { approximations, details }
    }
}

/// Convolution with the B3 spline filter whose taps are `step` apart,
/// with mirror boundary extension.
fn convolve_holes(signal: &[f64], step: usize) -> Vec<f64> {
    let n = signal.len() as isize;
    let reflect = |i: isize| -> usize {
        // Mirror without repeating the edge sample: …2 1 0 | 0 1 2… is
        // avoided in favour of …2 1 | 0 1 2…, standard for à-trous.
        let mut i = i;
        loop {
            if i < 0 {
                i = -i;
            } else if i >= n {
                i = 2 * (n - 1) - i;
            } else {
                return i as usize;
            }
        }
    };
    (0..signal.len())
        .map(|t| {
            B3_SPLINE
                .iter()
                .enumerate()
                .map(|(k, &h)| {
                    let offset = (k as isize - 2) * step as isize;
                    h * signal[reflect(t as isize + offset)]
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_sums_to_one() {
        assert!((B3_SPLINE.iter().sum::<f64>() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn constant_signal_has_zero_details() {
        let dec = AtrousTransform::new(4).decompose(&[7.0; 64]);
        for e in dec.detail_energies() {
            assert!(e < 1e-20);
        }
    }

    #[test]
    fn decomposition_is_additive() {
        let signal: Vec<f64> =
            (0..128).map(|t| ((t * 13) % 29) as f64 + (t as f64 / 10.0).sin()).collect();
        let dec = AtrousTransform::new(5).decompose(&signal);
        let rec = dec.reconstruct();
        for (a, b) in rec.iter().zip(signal.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn oscillation_energy_concentrates_at_matching_scale() {
        // Fast oscillation → energy in shallow scales; slow → deep scales.
        let fast: Vec<f64> =
            (0..256).map(|t| (t as f64 / 4.0 * std::f64::consts::TAU).sin()).collect();
        let slow: Vec<f64> =
            (0..256).map(|t| (t as f64 / 64.0 * std::f64::consts::TAU).sin()).collect();
        let t = AtrousTransform::new(7);
        let ef = t.decompose(&fast).detail_energies();
        let es = t.decompose(&slow).detail_energies();
        let peak_f = ef.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let peak_s = es.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(peak_f < peak_s, "fast peak {peak_f} vs slow peak {peak_s}");
    }

    #[test]
    fn no_phase_shift_for_symmetric_bump() {
        // The B3 spline is symmetric, so a symmetric bump stays centered.
        let mut signal = vec![0.0; 65];
        signal[32] = 1.0;
        let dec = AtrousTransform::new(1).decompose(&signal);
        let approx = &dec.approximations[0];
        let max_idx =
            approx.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 32);
    }

    #[test]
    fn short_or_empty_inputs_are_safe() {
        let dec = AtrousTransform::new(6).decompose(&[]);
        assert_eq!(dec.levels(), 0);
        let dec = AtrousTransform::new(6).decompose(&[1.0, 2.0, 3.0]);
        assert!(dec.levels() >= 1);
        assert_eq!(dec.reconstruct().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = AtrousTransform::new(0);
    }
}
