use crate::complex::Complex;

/// Smallest power of two ≥ `n` (and ≥ 1).
///
/// # Example
///
/// ```
/// use tiresias_spectral::next_power_of_two;
///
/// assert_eq!(next_power_of_two(0), 1);
/// assert_eq!(next_power_of_two(5), 8);
/// assert_eq!(next_power_of_two(8), 8);
/// ```
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 Cooley-Tukey FFT over a power-of-two-length
/// buffer.
fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let theta = sign * std::f64::consts::TAU / len as f64;
        let w_len = Complex::from_polar_unit(theta);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w = w * w_len;
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for z in buf.iter_mut() {
            *z = *z * scale;
        }
    }
}

/// Forward discrete Fourier transform of `input`.
///
/// The input is zero-padded to the next power of two, so the returned
/// spectrum has `next_power_of_two(input.len())` bins; bin `k` corresponds
/// to frequency `k / N` cycles per sample.
///
/// # Example
///
/// ```
/// use tiresias_spectral::{fft, Complex};
///
/// // The DFT of a constant signal concentrates at bin 0.
/// let spectrum = fft(&[Complex::ONE; 4]);
/// assert!((spectrum[0].abs() - 4.0).abs() < 1e-12);
/// assert!(spectrum[1].abs() < 1e-12);
/// ```
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = next_power_of_two(input.len());
    let mut buf = vec![Complex::ZERO; n];
    buf[..input.len()].copy_from_slice(input);
    fft_in_place(&mut buf, false);
    buf
}

/// Inverse discrete Fourier transform of a power-of-two-length spectrum.
///
/// # Panics
///
/// Panics if `spectrum.len()` is not a power of two.
pub fn ifft(spectrum: &[Complex]) -> Vec<Complex> {
    assert!(spectrum.len().is_power_of_two(), "ifft requires a power-of-two-length spectrum");
    let mut buf = spectrum.to_vec();
    fft_in_place(&mut buf, true);
    buf
}

/// Magnitude spectrum of a real signal: `|FFT(x)|` over the first half of
/// the (zero-padded) bins, which is all a real signal carries.
///
/// # Example
///
/// ```
/// use tiresias_spectral::fft_magnitudes;
///
/// let signal: Vec<f64> = (0..64)
///     .map(|t| (t as f64 / 8.0 * std::f64::consts::TAU).cos())
///     .collect();
/// let mags = fft_magnitudes(&signal);
/// // Period 8 samples → bin 64/8 = 8 dominates.
/// let peak = mags
///     .iter()
///     .enumerate()
///     .skip(1)
///     .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
///     .unwrap()
///     .0;
/// assert_eq!(peak, 8);
/// ```
pub fn fft_magnitudes(signal: &[f64]) -> Vec<f64> {
    let input: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    let spectrum = fft(&input);
    spectrum[..spectrum.len() / 2].iter().map(|z| z.abs()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut input = vec![Complex::ZERO; 8];
        input[0] = Complex::ONE;
        let spec = fft(&input);
        for z in spec {
            assert_close(z, Complex::ONE, 1e-12);
        }
    }

    #[test]
    fn matches_naive_dft() {
        let signal: Vec<Complex> =
            (0..16).map(|t| Complex::new((t as f64).sin(), (t as f64 * 0.7).cos())).collect();
        let fast = fft(&signal);
        let n = signal.len();
        for (k, &z) in fast.iter().enumerate() {
            let mut naive = Complex::ZERO;
            for (t, &x) in signal.iter().enumerate() {
                let theta = -std::f64::consts::TAU * (k * t) as f64 / n as f64;
                naive += x * Complex::from_polar_unit(theta);
            }
            assert_close(z, naive, 1e-9);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let signal: Vec<Complex> =
            (0..32).map(|t| Complex::new((t as f64 * 0.3).sin(), 0.0)).collect();
        let back = ifft(&fft(&signal));
        for (a, b) in back.iter().zip(signal.iter()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn zero_padding_preserves_peak_bin_scaling() {
        // 20 samples pad to 32; a constant signal still concentrates at
        // bin 0 with magnitude = number of real samples.
        let signal = vec![Complex::ONE; 20];
        let spec = fft(&signal);
        assert_eq!(spec.len(), 32);
        assert!((spec[0].abs() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let signal: Vec<Complex> =
            (0..64).map(|t| Complex::from_real(((t * t) % 17) as f64 / 17.0)).collect();
        let spec = fft(&signal);
        let time_energy: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / spec.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn linearity_of_transform() {
        let a: Vec<Complex> = (0..16).map(|t| Complex::from_real(t as f64)).collect();
        let b: Vec<Complex> =
            (0..16).map(|t| Complex::from_real(((t % 5) as f64).powi(2))).collect();
        let sum: Vec<Complex> = a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fs = fft(&sum);
        for i in 0..fa.len() {
            assert_close(fs[i], fa[i] + fb[i], 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn ifft_rejects_odd_lengths() {
        let _ = ifft(&[Complex::ONE; 3]);
    }

    #[test]
    fn real_signal_magnitudes_have_half_length() {
        let mags = fft_magnitudes(&[1.0; 10]); // pads to 16
        assert_eq!(mags.len(), 8);
    }
}
