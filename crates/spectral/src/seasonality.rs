use serde::{Deserialize, Serialize};

use crate::periodogram::Periodogram;
use crate::wavelet::AtrousTransform;

/// A seasonal period detected in a series, with the evidence behind it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectedSeason {
    /// Period in sample units (timeunits).
    pub period_units: f64,
    /// Normalised FFT magnitude of the peak.
    pub magnitude: f64,
    /// Linear combination weight for multi-seasonal forecasting — the
    /// paper's ξ scheme: each factor's weight is its FFT magnitude
    /// normalised so the weights sum to 1.
    pub weight: f64,
    /// `true` if the wavelet detail-energy profile also shows elevated
    /// fluctuation strength near this timescale.
    pub wavelet_confirmed: bool,
}

/// Combined FFT + wavelet seasonality analysis (§VI).
///
/// The procedure mirrors the paper: find dominant spectral peaks with the
/// [`Periodogram`], cross-check each against the à-trous
/// detail-energy profile, and derive linear combination weights from the
/// FFT magnitudes (the CCD evaluation's `ξ = 0.76` daily/weekly blend).
///
/// The paper performs this analysis offline on the first time instance
/// because the periodicities of operational data are stable; Tiresias'
/// detector does the same.
///
/// # Example
///
/// ```
/// use tiresias_spectral::SeasonalityAnalysis;
///
/// // 15-minute samples: 96/day, 672/week, four weeks of data.
/// let tau = std::f64::consts::TAU;
/// let series: Vec<f64> = (0..2688)
///     .map(|t| 40.0 + 20.0 * (t as f64 / 96.0 * tau).sin() + 6.0 * (t as f64 / 672.0 * tau).sin())
///     .collect();
/// let analysis = SeasonalityAnalysis::analyze(&series, 2);
/// let seasons = analysis.seasons();
/// assert_eq!(seasons.len(), 2);
/// let daily = seasons[0].period_units.round() as u64;
/// assert!((90..=102).contains(&daily)); // daily (≈96 units) dominates
/// let xi = seasons[0].weight;
/// assert!(xi > 0.5 && xi < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonalityAnalysis {
    seasons: Vec<DetectedSeason>,
    detail_energies: Vec<f64>,
}

impl SeasonalityAnalysis {
    /// Analyses `series`, reporting at most `max_seasons` seasonal
    /// factors, strongest first.
    pub fn analyze(series: &[f64], max_seasons: usize) -> Self {
        let periodogram = Periodogram::compute(series);
        let peaks = periodogram.dominant_periods(max_seasons);

        // Wavelet cross-check: decompose deep enough to cover the longest
        // candidate period.
        let levels = peaks
            .iter()
            .map(|p| (p.period_units.log2().ceil() as usize).max(1))
            .max()
            .unwrap_or(1)
            .min(24);
        let energies = AtrousTransform::new(levels).decompose(series).detail_energies();
        let total_energy: f64 = energies.iter().sum();

        let magnitude_sum: f64 = peaks.iter().map(|p| p.magnitude).sum();
        let seasons = peaks
            .iter()
            .map(|p| {
                // A period of 2^j samples shows up in detail scale ≈ j.
                let scale = (p.period_units.log2().round() as usize).saturating_sub(1);
                let near: f64 = energies.iter().skip(scale.saturating_sub(1)).take(3).sum();
                let confirmed = total_energy > 0.0 && near / total_energy > 0.05;
                DetectedSeason {
                    period_units: p.period_units,
                    magnitude: p.magnitude,
                    weight: if magnitude_sum > 0.0 { p.magnitude / magnitude_sum } else { 0.0 },
                    wavelet_confirmed: confirmed,
                }
            })
            .collect();
        SeasonalityAnalysis { seasons, detail_energies: energies }
    }

    /// Detected seasons, strongest first. Weights sum to 1 when any
    /// season was detected.
    pub fn seasons(&self) -> &[DetectedSeason] {
        &self.seasons
    }

    /// Detail energies per wavelet scale (scale `j` ≈ fluctuations of
    /// `2^{j+1}` samples).
    pub fn detail_energies(&self) -> &[f64] {
        &self.detail_energies
    }

    /// The paper's ξ: the weight of the strongest season relative to the
    /// two strongest combined. `None` if fewer than two seasons were
    /// detected.
    pub fn xi(&self) -> Option<f64> {
        if self.seasons.len() < 2 {
            return None;
        }
        let a = self.seasons[0].magnitude;
        let b = self.seasons[1].magnitude;
        Some(a / (a + b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_season_series(len: usize) -> Vec<f64> {
        let tau = std::f64::consts::TAU;
        (0..len)
            .map(|t| {
                50.0 + 25.0 * (t as f64 / 96.0 * tau).sin() + 8.0 * (t as f64 / 672.0 * tau).sin()
            })
            .collect()
    }

    #[test]
    fn finds_daily_and_weekly_periods() {
        let analysis = SeasonalityAnalysis::analyze(&two_season_series(2688), 2);
        let mut periods: Vec<u64> =
            analysis.seasons().iter().map(|s| s.period_units.round() as u64).collect();
        periods.sort();
        assert_eq!(periods.len(), 2);
        assert!((90..=102).contains(&periods[0]), "daily ≈ 96, got {}", periods[0]);
        assert!((600..=760).contains(&periods[1]), "weekly ≈ 672, got {}", periods[1]);
    }

    #[test]
    fn weights_sum_to_one() {
        let analysis = SeasonalityAnalysis::analyze(&two_season_series(2688), 2);
        let sum: f64 = analysis.seasons().iter().map(|s| s.weight).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn xi_favours_the_dominant_period() {
        let analysis = SeasonalityAnalysis::analyze(&two_season_series(2688), 2);
        let xi = analysis.xi().unwrap();
        assert!(xi > 0.6 && xi < 0.95, "xi = {xi}");
    }

    #[test]
    fn single_season_has_unit_weight_and_no_xi() {
        let tau = std::f64::consts::TAU;
        let series: Vec<f64> =
            (0..512).map(|t| 10.0 + 4.0 * (t as f64 / 32.0 * tau).sin()).collect();
        let analysis = SeasonalityAnalysis::analyze(&series, 1);
        assert_eq!(analysis.seasons().len(), 1);
        assert!((analysis.seasons()[0].weight - 1.0).abs() < 1e-9);
        assert_eq!(analysis.xi(), None);
    }

    #[test]
    fn aperiodic_series_detects_nothing_strong() {
        // White-ish noise from a simple LCG: any detected peaks carry
        // little relative magnitude structure, and none dominates by 10×.
        let mut x = 1u64;
        let series: Vec<f64> = (0..1024)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 40) as f64 / 16777216.0
            })
            .collect();
        let analysis = SeasonalityAnalysis::analyze(&series, 2);
        if analysis.seasons().len() == 2 {
            let ratio = analysis.seasons()[0].magnitude / analysis.seasons()[1].magnitude;
            assert!(ratio < 10.0, "no dominant season in noise, ratio {ratio}");
        }
    }

    #[test]
    fn empty_series_is_safe() {
        let analysis = SeasonalityAnalysis::analyze(&[], 2);
        assert!(analysis.seasons().is_empty());
        assert_eq!(analysis.xi(), None);
    }
}
