use serde::{Deserialize, Serialize};

use crate::fft::fft_magnitudes;

/// One spectral peak: a candidate periodicity of the analysed series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralPeak {
    /// Period in sample units (`N / k` for FFT bin `k`).
    pub period_units: f64,
    /// Magnitude normalised by the largest non-DC magnitude, so the
    /// strongest peak has magnitude 1 (the normalisation of Fig. 11).
    pub magnitude: f64,
    /// FFT bin index the peak came from.
    pub bin: usize,
}

/// Normalised magnitude spectrum of a real-valued series with peak
/// picking — the tool behind the paper's Fig. 11.
///
/// The mean is removed before transforming so the DC component does not
/// mask the seasonal peaks, and magnitudes are normalised by the maximum
/// (the paper plots `FFT` on a log scale normalised the same way).
///
/// # Example
///
/// ```
/// use tiresias_spectral::Periodogram;
///
/// // Hourly samples with daily (24) and weekly (168) components.
/// let series: Vec<f64> = (0..672)
///     .map(|t| {
///         let tau = std::f64::consts::TAU;
///         20.0 + 8.0 * (t as f64 / 24.0 * tau).sin() + 4.0 * (t as f64 / 168.0 * tau).sin()
///     })
///     .collect();
/// let p = Periodogram::compute(&series);
/// let peaks = p.dominant_periods(2);
/// let mut periods: Vec<u64> = peaks.iter().map(|p| p.period_units.round() as u64).collect();
/// periods.sort();
/// // FFT bins quantise the periods slightly (zero-padding to 1024).
/// assert_eq!(periods[0], 24);
/// assert!((160..=180).contains(&periods[1]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Periodogram {
    /// Normalised magnitude per bin (bin 0 = DC, excluded from peaks).
    magnitudes: Vec<f64>,
    /// Padded FFT length, for bin → period conversion.
    fft_len: usize,
    /// Original (unpadded) series length.
    series_len: usize,
}

impl Periodogram {
    /// Computes the periodogram of `series` (mean-removed, zero-padded to
    /// a power of two, magnitudes normalised to max 1).
    pub fn compute(series: &[f64]) -> Self {
        let mean =
            if series.is_empty() { 0.0 } else { series.iter().sum::<f64>() / series.len() as f64 };
        let centered: Vec<f64> = series.iter().map(|x| x - mean).collect();
        let mut mags = fft_magnitudes(&centered);
        let max = mags.iter().skip(1).cloned().fold(0.0, f64::max);
        if max > 0.0 {
            for m in &mut mags {
                *m /= max;
            }
        }
        let fft_len = crate::fft::next_power_of_two(series.len().max(1));
        Periodogram { magnitudes: mags, fft_len, series_len: series.len() }
    }

    /// Normalised magnitude per bin (bin 0 is the residual DC).
    pub fn magnitudes(&self) -> &[f64] {
        &self.magnitudes
    }

    /// The period, in sample units, that FFT bin `k` represents.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero (the DC bin has no period).
    pub fn period_of_bin(&self, k: usize) -> f64 {
        assert!(k > 0, "bin 0 is the DC component and has no period");
        self.fft_len as f64 / k as f64
    }

    /// The bin whose period is closest to `period_units`.
    pub fn bin_of_period(&self, period_units: f64) -> usize {
        let k = (self.fft_len as f64 / period_units).round() as usize;
        k.clamp(1, self.magnitudes.len().saturating_sub(1).max(1))
    }

    /// Normalised magnitude at the bin closest to `period_units` — used
    /// to derive the paper's ξ weight between the daily and weekly
    /// seasonal factors.
    pub fn magnitude_at_period(&self, period_units: f64) -> f64 {
        self.magnitudes.get(self.bin_of_period(period_units)).copied().unwrap_or(0.0)
    }

    /// The `n` strongest local maxima of the spectrum, strongest first.
    ///
    /// Peaks are local maxima over bins `1..N/2`; only periods no longer
    /// than the series itself are reported (a longer period cannot be
    /// observed and is an artifact of padding).
    pub fn dominant_periods(&self, n: usize) -> Vec<SpectralPeak> {
        let mut peaks: Vec<SpectralPeak> = Vec::new();
        let m = &self.magnitudes;
        for k in 1..m.len() {
            let left = if k >= 2 { m[k - 1] } else { 0.0 };
            let right = m.get(k + 1).copied().unwrap_or(0.0);
            if m[k] >= left && m[k] >= right && m[k] > 0.0 {
                let period = self.period_of_bin(k);
                if period <= self.series_len as f64 {
                    peaks.push(SpectralPeak { period_units: period, magnitude: m[k], bin: k });
                }
            }
        }
        peaks.sort_by(|a, b| b.magnitude.partial_cmp(&a.magnitude).expect("no NaN"));
        // Collapse peaks mapping to nearly the same period (padding can
        // smear one physical peak over adjacent bins).
        let mut out: Vec<SpectralPeak> = Vec::new();
        for p in peaks {
            if out.iter().all(|q| (q.period_units / p.period_units).ln().abs() > 0.2) {
                out.push(p);
            }
            if out.len() == n {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(period: f64, amp: f64, len: usize) -> Vec<f64> {
        (0..len).map(|t| amp * (t as f64 / period * std::f64::consts::TAU).sin()).collect()
    }

    #[test]
    fn single_period_is_found() {
        let s: Vec<f64> = sine(32.0, 3.0, 256).iter().map(|x| x + 100.0).collect();
        let p = Periodogram::compute(&s);
        let peaks = p.dominant_periods(1);
        assert_eq!(peaks.len(), 1);
        assert!((peaks[0].period_units - 32.0).abs() < 2.0);
        assert!((peaks[0].magnitude - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_periods_ranked_by_amplitude() {
        let a = sine(16.0, 5.0, 512);
        let b = sine(128.0, 2.0, 512);
        let s: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| x + y + 50.0).collect();
        let p = Periodogram::compute(&s);
        let peaks = p.dominant_periods(2);
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].period_units - 16.0).abs() < 1.0, "strongest first");
        assert!((peaks[1].period_units - 128.0).abs() < 8.0);
        assert!(peaks[0].magnitude > peaks[1].magnitude);
    }

    #[test]
    fn dc_component_is_ignored() {
        // Pure constant: no peaks at all after mean removal.
        let p = Periodogram::compute(&[42.0; 64]);
        assert!(p.dominant_periods(3).is_empty());
    }

    #[test]
    fn magnitude_at_period_reflects_strength() {
        let s: Vec<f64> = sine(24.0, 10.0, 480)
            .iter()
            .zip(sine(168.0, 3.0, 480).iter())
            .map(|(a, b)| a + b + 30.0)
            .collect();
        let p = Periodogram::compute(&s);
        let day = p.magnitude_at_period(24.0);
        let week = p.magnitude_at_period(168.0);
        assert!(day > week, "daily component is stronger: {day} vs {week}");
        assert!(week > 0.05);
    }

    #[test]
    fn periods_longer_than_series_are_suppressed() {
        let s = sine(16.0, 1.0, 64);
        let p = Periodogram::compute(&s);
        for peak in p.dominant_periods(10) {
            assert!(peak.period_units <= 64.0);
        }
    }

    #[test]
    fn empty_series_yields_empty_spectrum() {
        let p = Periodogram::compute(&[]);
        assert!(p.dominant_periods(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "DC component")]
    fn period_of_dc_bin_panics() {
        Periodogram::compute(&[1.0; 16]).period_of_bin(0);
    }
}
