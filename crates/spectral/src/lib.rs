//! Spectral analysis for Tiresias (§VI of the paper).
//!
//! Tiresias selects the seasonal periods of its Holt-Winters forecasters
//! automatically, by looking at the arrival-count series in the frequency
//! domain. This crate implements the two tools the paper uses, from
//! scratch:
//!
//! * [`fft`] — an iterative radix-2 Cooley-Tukey fast Fourier transform
//!   over [`Complex`] samples (with zero-padding for arbitrary lengths),
//! * [`Periodogram`] — normalised magnitude spectrum with peak picking,
//!   reproducing Fig. 11,
//! * [`AtrousTransform`] — the à-trous wavelet multi-resolution analysis
//!   with the low-pass B3 spline filter `(1/16, 1/4, 3/8, 1/4, 1/16)`,
//!   whose per-scale detail energies cross-check the FFT periods,
//! * [`SeasonalityAnalysis`] — the combined §VI procedure: find dominant
//!   periods by FFT, validate against wavelet energies, and derive the
//!   linear combination weights (the paper's ξ) for multi-seasonal
//!   forecasting.
//!
//! # Example
//!
//! ```
//! use tiresias_spectral::Periodogram;
//!
//! // A 24-hour diurnal pattern sampled every hour for two weeks.
//! let series: Vec<f64> = (0..336)
//!     .map(|t| 10.0 + 5.0 * (t as f64 / 24.0 * std::f64::consts::TAU).sin())
//!     .collect();
//! let p = Periodogram::compute(&series);
//! let top = p.dominant_periods(1);
//! assert_eq!(top[0].period_units.round() as u64, 24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod fft;
mod periodogram;
mod seasonality;
mod wavelet;

pub use complex::Complex;
pub use fft::{fft, fft_magnitudes, ifft, next_power_of_two};
pub use periodogram::{Periodogram, SpectralPeak};
pub use seasonality::{DetectedSeason, SeasonalityAnalysis};
pub use wavelet::{AtrousTransform, WaveletDecomposition, B3_SPLINE};
