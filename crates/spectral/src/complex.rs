use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A complex number over `f64`, just enough arithmetic for the FFT.
///
/// # Example
///
/// ```
/// use tiresias_spectral::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// assert_eq!(Complex::new(3.0, 4.0).abs(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);

    /// The multiplicative identity.
    pub const ONE: Complex = Complex::new(1.0, 0.0);

    /// Creates a purely real number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}` — the unit phasor with angle `theta`.
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`, avoiding the square root.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(2.0, -3.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z, Complex::new(-2.0, 3.0));
    }

    #[test]
    fn multiplication_rule() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        // (1+2i)(3−i) = 3 − i + 6i − 2i² = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
    }

    #[test]
    fn polar_unit_lies_on_circle() {
        for k in 0..8 {
            let z = Complex::from_polar_unit(k as f64 * std::f64::consts::FRAC_PI_4);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!((z * z.conj()).re, 25.0);
        assert!((z * z.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
