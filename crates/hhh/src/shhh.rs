use tiresias_hierarchy::{NodeId, Tree};

/// Result of a succinct hierarchical heavy hitter computation
/// (Definition 2 of the paper).
///
/// Also serves as the reusable scratch of [`compute_shhh_into`]: the
/// per-unit trackers keep one instance alive and recycle its three
/// buffers every timeunit instead of reallocating them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShhhResult {
    /// The SHHH set, in bottom-up discovery order.
    pub members: Vec<NodeId>,
    /// Per-node membership flags, indexed by [`NodeId::index`].
    pub is_member: Vec<bool>,
    /// Per-node modified weights `W_n` (after discounting heavy hitter
    /// descendants), indexed by [`NodeId::index`].
    pub modified: Vec<f64>,
}

/// Computes the succinct hierarchical heavy hitter set for one timeunit.
///
/// `direct` holds the raw (pre-aggregation) count of each node — for a
/// well-formed operational stream only leaves carry direct counts, but
/// interior direct counts are handled additively. A single bottom-up
/// sweep evaluates the unique fixed point of Definition 2: each node's
/// modified weight is its direct count plus the modified weights of its
/// non-heavy-hitter children, and the node is a member iff that weight
/// reaches `theta`.
///
/// # Panics
///
/// Panics if `direct.len() < tree.len()`.
pub fn compute_shhh(tree: &Tree, direct: &[f64], theta: f64) -> ShhhResult {
    let mut out = ShhhResult::default();
    compute_shhh_into(tree, direct, theta, &mut out);
    out
}

/// [`compute_shhh`] into a caller-owned buffer, allocation-free once
/// the buffers have grown to the tree's size.
///
/// # Panics
///
/// Panics if `direct.len() < tree.len()`.
pub fn compute_shhh_into(tree: &Tree, direct: &[f64], theta: f64, out: &mut ShhhResult) {
    assert!(direct.len() >= tree.len(), "direct weights must cover every node of the tree");
    out.members.clear();
    out.is_member.clear();
    out.is_member.resize(tree.len(), false);
    out.modified.clear();
    out.modified.resize(tree.len(), 0.0);
    for n in tree.rev_level_order() {
        let mut w = direct[n.index()];
        for &c in tree.children(n) {
            if !out.is_member[c.index()] {
                w += out.modified[c.index()];
            }
        }
        out.modified[n.index()] = w;
        if w >= theta {
            out.is_member[n.index()] = true;
            out.members.push(n);
        }
    }
}

/// Computes the *original* (aggregate) weights `A_n`: each node's direct
/// count plus the sum over its entire subtree.
///
/// # Panics
///
/// Panics if `direct.len() < tree.len()`.
pub fn aggregate_weights(tree: &Tree, direct: &[f64]) -> Vec<f64> {
    let mut agg = Vec::new();
    aggregate_weights_into(tree, direct, &mut agg);
    agg
}

/// [`aggregate_weights`] into a caller-owned buffer, allocation-free
/// once the buffer has grown to the tree's size.
///
/// # Panics
///
/// Panics if `direct.len() < tree.len()`.
pub fn aggregate_weights_into(tree: &Tree, direct: &[f64], agg: &mut Vec<f64>) {
    assert!(direct.len() >= tree.len(), "direct weights must cover every node of the tree");
    agg.clear();
    agg.extend_from_slice(&direct[..tree.len()]);
    for n in tree.rev_level_order() {
        if let Some(p) = tree.parent(n) {
            agg[p.index()] += agg[n.index()];
        }
    }
}

/// Evaluates, for a **fixed** heavy-hitter membership, the time-series
/// value of every node for one timeunit (Definition 3 generalised to cut
/// at *maximal heavy-hitter descendants*, which is the quantity ADA's
/// weight recursion maintains).
///
/// The value of node `n` is its direct count plus the values of its
/// non-member children — i.e. the aggregate count minus everything
/// already claimed by member descendants.
///
/// # Panics
///
/// Panics if `direct` or `is_member` are shorter than the tree.
pub fn series_values(tree: &Tree, direct: &[f64], is_member: &[bool]) -> Vec<f64> {
    assert!(direct.len() >= tree.len() && is_member.len() >= tree.len());
    let mut value = vec![0.0; tree.len()];
    for n in tree.rev_level_order() {
        let mut w = direct[n.index()];
        for &c in tree.children(n) {
            if !is_member[c.index()] {
                w += value[c.index()];
            }
        }
        value[n.index()] = w;
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiresias_hierarchy::Tree;

    /// root → {a → {x, y}, b}
    fn tree() -> Tree {
        let mut t = Tree::new("root");
        t.insert_path(&["a", "x"]);
        t.insert_path(&["a", "y"]);
        t.insert_path(&["b"]);
        t
    }

    fn direct(t: &Tree, pairs: &[(&[&str], f64)]) -> Vec<f64> {
        let mut d = vec![0.0; t.len()];
        for (path, w) in pairs {
            d[t.find(path).unwrap().index()] = *w;
        }
        d
    }

    #[test]
    fn leaf_heavy_hitter_is_discounted_from_ancestors() {
        let t = tree();
        let d = direct(&t, &[(&["a", "x"], 20.0), (&["a", "y"], 3.0), (&["b"], 2.0)]);
        let r = compute_shhh(&t, &d, 10.0);
        let x = t.find(&["a", "x"]).unwrap();
        let a = t.find(&["a"]).unwrap();
        assert!(r.is_member[x.index()]);
        // a's modified weight = 3 (only y), below θ.
        assert_eq!(r.modified[a.index()], 3.0);
        assert!(!r.is_member[a.index()]);
        // root: a's 3 + b's 2 = 5, below θ.
        assert_eq!(r.modified[t.root().index()], 5.0);
        assert_eq!(r.members, vec![x]);
    }

    #[test]
    fn interior_becomes_member_from_residual() {
        let t = tree();
        let d = direct(&t, &[(&["a", "x"], 20.0), (&["a", "y"], 15.0), (&["b"], 1.0)]);
        let r = compute_shhh(&t, &d, 10.0);
        let x = t.find(&["a", "x"]).unwrap();
        let y = t.find(&["a", "y"]).unwrap();
        let a = t.find(&["a"]).unwrap();
        assert!(r.is_member[x.index()] && r.is_member[y.index()]);
        // Both children are members, so a's modified weight is 0.
        assert_eq!(r.modified[a.index()], 0.0);
        assert!(!r.is_member[a.index()]);
        assert_eq!(r.modified[t.root().index()], 1.0);
    }

    #[test]
    fn sparse_mass_aggregates_up_to_root() {
        let t = tree();
        let d = direct(&t, &[(&["a", "x"], 4.0), (&["a", "y"], 4.0), (&["b"], 4.0)]);
        let r = compute_shhh(&t, &d, 10.0);
        // No single node is heavy except the root aggregate (12 ≥ 10).
        assert_eq!(r.members, vec![t.root()]);
        assert_eq!(r.modified[t.root().index()], 12.0);
    }

    #[test]
    fn member_weights_are_at_least_theta_and_nonmembers_below() {
        let t = tree();
        let d = direct(&t, &[(&["a", "x"], 13.0), (&["a", "y"], 9.0), (&["b"], 25.0)]);
        let r = compute_shhh(&t, &d, 10.0);
        for n in t.iter() {
            if r.is_member[n.index()] {
                assert!(r.modified[n.index()] >= 10.0);
            } else {
                assert!(r.modified[n.index()] < 10.0);
            }
        }
    }

    #[test]
    fn definition_fixed_point_is_self_consistent() {
        // Recompute each member's weight from the final membership and
        // check it matches — the uniqueness argument of the paper.
        let t = tree();
        let d = direct(&t, &[(&["a", "x"], 11.0), (&["a", "y"], 6.0), (&["b"], 7.0)]);
        let r = compute_shhh(&t, &d, 10.0);
        let v = series_values(&t, &d, &r.is_member);
        for n in t.iter() {
            assert_eq!(v[n.index()], r.modified[n.index()], "node {n}");
        }
    }

    #[test]
    fn aggregate_weights_sum_subtrees() {
        let t = tree();
        let d = direct(&t, &[(&["a", "x"], 1.0), (&["a", "y"], 2.0), (&["b"], 4.0)]);
        let agg = aggregate_weights(&t, &d);
        assert_eq!(agg[t.find(&["a"]).unwrap().index()], 3.0);
        assert_eq!(agg[t.root().index()], 7.0);
    }

    #[test]
    fn series_values_cut_at_members() {
        let t = tree();
        let d = direct(&t, &[(&["a", "x"], 20.0), (&["a", "y"], 3.0), (&["b"], 2.0)]);
        // Fix membership = {x}: then a's value excludes x.
        let mut is_member = vec![false; t.len()];
        is_member[t.find(&["a", "x"]).unwrap().index()] = true;
        let v = series_values(&t, &d, &is_member);
        assert_eq!(v[t.find(&["a"]).unwrap().index()], 3.0);
        assert_eq!(v[t.root().index()], 5.0);
        // And with empty membership it degenerates to the aggregate.
        let v2 = series_values(&t, &d, &vec![false; t.len()]);
        assert_eq!(v2, aggregate_weights(&t, &d));
    }

    #[test]
    fn zero_threshold_makes_every_nonzero_node_member() {
        let t = tree();
        let d = direct(&t, &[(&["a", "x"], 1.0)]);
        let r = compute_shhh(&t, &d, f64::MIN_POSITIVE);
        let x = t.find(&["a", "x"]).unwrap();
        assert!(r.is_member[x.index()]);
        // Ancestors of x have modified weight 0 after discounting.
        assert!(!r.is_member[t.find(&["a"]).unwrap().index()]);
    }

    #[test]
    #[should_panic(expected = "must cover every node")]
    fn short_direct_vector_panics() {
        let t = tree();
        let _ = compute_shhh(&t, &[0.0], 1.0);
    }
}
